#ifndef GEPC_FAULT_FAULT_H_
#define GEPC_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace gepc {
namespace fault {

/// How an armed failure point behaves when its code path is hit.
///
/// The trigger sequence is deterministic: each point keeps a hit counter,
/// the first `skip` hits pass, the next `count` hits *may* fire, and every
/// candidate hit draws its Bernoulli(probability) decision from a stream
/// keyed on (seed, point name, hit index) — so a run fires the same faults
/// at the same hits regardless of thread interleaving or wall clock.
struct FaultSpec {
  /// Status returned by a firing fault (delay-only points return OK).
  StatusCode code = StatusCode::kUnavailable;
  /// Extra text appended to the injected status message.
  std::string message;
  /// Hits that pass before the fault window opens.
  uint64_t skip = 0;
  /// Size of the fault window; hits after skip+count pass again.
  uint64_t count = UINT64_MAX;
  /// Per-hit firing probability inside the window (1.0 = always).
  double probability = 1.0;
  /// Seed of the per-hit Bernoulli stream (only used when probability<1).
  uint64_t seed = 0;
  /// Sleep this long when the fault fires (0 = no delay). A point armed
  /// with delay_ms but code == kOk delays without failing ("slow", not
  /// "broken").
  int delay_ms = 0;
  /// Point-specific payload. journal.torn_tail reads it as the number of
  /// row bytes that reach disk before the simulated crash; -1 lets the
  /// point derive a value from the hit index.
  int64_t arg = -1;
};

/// Live counters of one failure point, for tests and the serve `faults`
/// command.
struct PointStatus {
  std::string point;
  bool armed = false;
  uint64_t hits = 0;   ///< times the instrumented code path was reached
  uint64_t fired = 0;  ///< hits on which the fault actually triggered
  FaultSpec spec;
};

namespace detail {
/// Global gate read on every instrumented hit. One relaxed atomic load when
/// nothing is armed — the "zero overhead when disabled" contract.
extern std::atomic<int> g_armed_points;
}  // namespace detail

/// Process-wide registry of named failure points. Points are implicit: any
/// string can be armed; instrumented code declares the names it honours
/// (see docs/fault-injection.md for the catalogue).
class Registry {
 public:
  static Registry& Global();

  /// Arms (or re-arms, resetting counters for) `point`.
  void Arm(const std::string& point, FaultSpec spec);

  /// Disarms `point`; its counters survive for inspection.
  void Disarm(const std::string& point);

  /// Disarms everything and forgets all counters. Tests call this in
  /// SetUp/TearDown so armed faults never leak across test cases.
  void Reset();

  /// Deterministic fault decision for one hit of `point`. Returns OK when
  /// the point is disarmed or outside its fault window; sleeps spec.delay_ms
  /// and returns Status(spec.code, ...) when it fires. When firing,
  /// `*arg_out` (if non-null) receives spec.arg and `*fire_index` the
  /// 0-based index of this firing.
  Status Hit(const std::string& point, int64_t* arg_out = nullptr,
             uint64_t* fire_index = nullptr);

  uint64_t HitCount(const std::string& point) const;
  uint64_t FireCount(const std::string& point) const;

  /// Every point ever armed this process, with live counters.
  std::vector<PointStatus> Snapshot() const;

 private:
  Registry() = default;
  struct State;
  State* state_;  // opaque; lives in fault.cc
};

/// True iff any failure point is currently armed — the fast-path gate.
inline bool Enabled() {
  return detail::g_armed_points.load(std::memory_order_relaxed) > 0;
}

/// The instrumentation primitive: returns OK (without touching any lock)
/// when nothing is armed, otherwise asks the registry whether `point`
/// fires. A firing delay-only point (code == kOk) sleeps and returns OK.
inline Status Inject(const char* point) {
  if (!Enabled()) return Status::OK();
  return Registry::Global().Hit(point);
}

/// Inject with the firing fault's payload (see FaultSpec::arg).
inline Status InjectWithArg(const char* point, int64_t* arg_out,
                            uint64_t* fire_index = nullptr) {
  if (!Enabled()) return Status::OK();
  return Registry::Global().Hit(point, arg_out, fire_index);
}

/// Arms points from a compact spec string — the `--faults` flag / the
/// GEPC_FAULTS environment variable:
///
///   point=token[:token...][;point=token[:token...]...]
///
/// where each token is a status-code name (unavailable, internal,
/// invalid_argument, ...) or one of skip=N, count=N, prob=P, seed=N,
/// delay=MS, arg=N, msg=TEXT. Example:
///
///   journal.append=unavailable:skip=2:count=1;shard.slow=ok:delay=5
///
/// Point names are validated against the catalogue of instrumented points;
/// unknown names are a kInvalidArgument (catching typos beats silently
/// injecting nothing).
Status ArmFromSpec(const std::string& spec);

/// Arms from the GEPC_FAULTS environment variable if it is set and
/// non-empty. Returns OK when the variable is absent.
Status ArmFromEnv();

/// The instrumented failure points (terminated by nullptr), for docs/tools.
extern const char* const kKnownPoints[];

}  // namespace fault
}  // namespace gepc

/// Injects `point` in a function returning Status or Result<T>: propagates
/// the injected status when the point fires, otherwise falls through.
#define GEPC_INJECT_FAULT(point) \
  GEPC_RETURN_IF_ERROR(::gepc::fault::Inject(point))

#endif  // GEPC_FAULT_FAULT_H_
