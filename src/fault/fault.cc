#include "fault/fault.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.h"

namespace gepc {
namespace fault {

namespace detail {
std::atomic<int> g_armed_points{0};
}  // namespace detail

const char* const kKnownPoints[] = {
    "journal.append",     // fail before any row byte reaches disk
    "journal.flush",      // fail after the row was written (tail restored)
    "journal.torn_tail",  // crash mid-row: a prefix of the row hits disk
    "journal.rotate",     // compaction aborts before touching the file
    "ckpt.write",         // checkpoint temp write fails (partial .tmp removed)
    "ckpt.fsync",         // checkpoint fsync fails before the rename
    "ckpt.rename",        // checkpoint rename into place fails
    "queue.push",         // backpressure: TryPush reports a full queue
    "shard.solve",        // a shard solve errors (greedy fallback kicks in)
    "shard.slow",         // a shard solve stalls (arm with ok:delay=MS)
    "net.accept",         // a freshly accepted connection is dropped
    "net.read",           // a connection's read path fails (peer reset)
    "net.write",          // a connection's write path fails (peer gone)
    "repl.ship",          // a follower sync/checkpoint ship aborts (ReplError)
    "repl.tail",          // a follower's tail-apply fails; it must resync
    "repl.promote",       // a promotion attempt aborts (retried later)
    "shard.migrate",      // incremental migration degrades to a full rebuild
    "shard.rebalance",    // a rebalance attempt aborts (old partition kept)
    "sched.candidate",    // a candidate schedule is skipped, never evaluated
    "sched.oracle",       // an oracle solve fails (greedy estimate instead)
    nullptr,
};

namespace {

bool IsKnownPoint(const std::string& point) {
  for (const char* const* p = kKnownPoints; *p != nullptr; ++p) {
    if (point == *p) return true;
  }
  return false;
}

/// FNV-1a — stable across platforms so (seed, point, hit) decisions are too.
uint64_t HashPoint(const std::string& point) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

struct Registry::State {
  struct Point {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };
  mutable std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

Registry& Registry::Global() {
  static Registry* instance = [] {
    auto* r = new Registry();
    r->state_ = new State();
    return r;
  }();
  return *instance;
}

void Registry::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(state_->mu);
  State::Point& p = state_->points[point];
  if (!p.armed) detail::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  p.spec = std::move(spec);
  p.armed = true;
  p.hits = 0;
  p.fired = 0;
}

void Registry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->points.find(point);
  if (it == state_->points.end() || !it->second.armed) return;
  it->second.armed = false;
  detail::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(state_->mu);
  int armed = 0;
  for (const auto& [name, p] : state_->points) {
    if (p.armed) ++armed;
  }
  state_->points.clear();
  detail::g_armed_points.fetch_sub(armed, std::memory_order_relaxed);
}

Status Registry::Hit(const std::string& point, int64_t* arg_out,
                     uint64_t* fire_index) {
  FaultSpec spec;
  uint64_t my_fire = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->points.find(point);
    if (it == state_->points.end() || !it->second.armed) return Status::OK();
    State::Point& p = it->second;
    const uint64_t hit = p.hits++;
    if (hit < p.spec.skip) return Status::OK();
    if (hit - p.spec.skip >= p.spec.count) return Status::OK();
    if (p.spec.probability < 1.0) {
      // Keyed on (seed, point, hit index): the decision depends on how many
      // times the point was reached, never on scheduling or wall clock.
      Rng draw(p.spec.seed ^ HashPoint(point) ^ (hit * 0x9E3779B97F4A7C15ULL));
      if (!draw.Bernoulli(p.spec.probability)) return Status::OK();
    }
    my_fire = p.fired++;
    spec = p.spec;
  }
  // Sleep outside the lock so a delay fault never serializes other points.
  if (spec.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
  }
  if (arg_out != nullptr) *arg_out = spec.arg;
  if (fire_index != nullptr) *fire_index = my_fire;
  if (spec.code == StatusCode::kOk) return Status::OK();  // delay-only point
  std::string message = "injected fault at " + point;
  if (!spec.message.empty()) message += ": " + spec.message;
  return Status(spec.code, std::move(message));
}

uint64_t Registry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->points.find(point);
  return it == state_->points.end() ? 0 : it->second.hits;
}

uint64_t Registry::FireCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->points.find(point);
  return it == state_->points.end() ? 0 : it->second.fired;
}

std::vector<PointStatus> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::vector<PointStatus> out;
  out.reserve(state_->points.size());
  for (const auto& [name, p] : state_->points) {
    PointStatus status;
    status.point = name;
    status.armed = p.armed;
    status.hits = p.hits;
    status.fired = p.fired;
    status.spec = p.spec;
    out.push_back(std::move(status));
  }
  return out;
}

namespace {

Status SpecError(const std::string& item, const std::string& what) {
  return Status::InvalidArgument("bad fault spec '" + item + "': " + what);
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseCode(const std::string& name, StatusCode* out) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kInfeasible,   StatusCode::kNotFound,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kInternal,     StatusCode::kUnimplemented,
      StatusCode::kUnavailable,
  };
  for (const StatusCode code : kCodes) {
    if (name == StatusCodeToString(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

Status ArmOne(const std::string& item) {
  const size_t eq = item.find('=');
  if (eq == std::string::npos || eq == 0) {
    return SpecError(item, "expected point=token[:token...]");
  }
  const std::string point = item.substr(0, eq);
  if (!IsKnownPoint(point)) {
    return SpecError(item, "unknown failure point '" + point + "'");
  }
  FaultSpec spec;
  std::string rest = item.substr(eq + 1);
  while (!rest.empty()) {
    const size_t colon = rest.find(':');
    const std::string token = rest.substr(0, colon);
    rest = colon == std::string::npos ? "" : rest.substr(colon + 1);
    if (token.empty()) return SpecError(item, "empty token");
    const size_t teq = token.find('=');
    if (teq == std::string::npos) {
      if (!ParseCode(token, &spec.code)) {
        return SpecError(item, "unknown status code '" + token + "'");
      }
      continue;
    }
    const std::string key = token.substr(0, teq);
    const std::string value = token.substr(teq + 1);
    uint64_t number = 0;
    if (key == "skip") {
      if (!ParseUint(value, &number)) return SpecError(item, "bad skip");
      spec.skip = number;
    } else if (key == "count") {
      if (!ParseUint(value, &number)) return SpecError(item, "bad count");
      spec.count = number;
    } else if (key == "prob") {
      char* end = nullptr;
      spec.probability = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        return SpecError(item, "prob must be in [0, 1]");
      }
    } else if (key == "seed") {
      if (!ParseUint(value, &number)) return SpecError(item, "bad seed");
      spec.seed = number;
    } else if (key == "delay") {
      if (!ParseUint(value, &number) || number > 60000) {
        return SpecError(item, "delay must be 0..60000 ms");
      }
      spec.delay_ms = static_cast<int>(number);
    } else if (key == "arg") {
      if (!ParseUint(value, &number)) return SpecError(item, "bad arg");
      spec.arg = static_cast<int64_t>(number);
    } else if (key == "msg") {
      spec.message = value;
    } else {
      return SpecError(item, "unknown key '" + key + "'");
    }
  }
  Registry::Global().Arm(point, std::move(spec));
  return Status::OK();
}

}  // namespace

Status ArmFromSpec(const std::string& spec) {
  std::string rest = spec;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    const std::string item = rest.substr(0, semi);
    rest = semi == std::string::npos ? "" : rest.substr(semi + 1);
    if (item.empty()) continue;
    GEPC_RETURN_IF_ERROR(ArmOne(item));
  }
  return Status::OK();
}

Status ArmFromEnv() {
  const char* spec = std::getenv("GEPC_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return ArmFromSpec(spec);
}

}  // namespace fault
}  // namespace gepc
