#ifndef GEPC_COMMON_RESULT_H_
#define GEPC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gepc {

/// Holds either a value of type T or a non-OK Status (never both, never
/// neither). The value-or-error idiom used throughout the public API:
///
///   Result<Plan> r = solver.Solve(instance);
///   if (!r.ok()) return r.status();
///   const Plan& plan = *r;
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Preconditions: ok(). Accessors for the held value.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gepc

/// Evaluates `expr` (a Result<T>), propagating its Status on error, otherwise
/// binding the value to `lhs`.
#define GEPC_ASSIGN_OR_RETURN(lhs, expr)             \
  GEPC_ASSIGN_OR_RETURN_IMPL_(                       \
      GEPC_STATUS_CONCAT_(_gepc_result, __LINE__), lhs, expr)

#define GEPC_STATUS_CONCAT_INNER_(x, y) x##y
#define GEPC_STATUS_CONCAT_(x, y) GEPC_STATUS_CONCAT_INNER_(x, y)

#define GEPC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // GEPC_COMMON_RESULT_H_
