#ifndef GEPC_COMMON_TIMER_H_
#define GEPC_COMMON_TIMER_H_

#include <chrono>

namespace gepc {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gepc

#endif  // GEPC_COMMON_TIMER_H_
