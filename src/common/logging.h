#ifndef GEPC_COMMON_LOGGING_H_
#define GEPC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace gepc {

/// Severity levels for GEPC_LOG.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that is emitted; defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
/// When constructed with fatal=true, aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gepc

#define GEPC_LOG(level)                                                   \
  ::gepc::internal::LogMessage(::gepc::LogLevel::k##level, __FILE__, __LINE__)

/// Unconditional invariant check (active in release builds too); logs the
/// failed condition and aborts.
#define GEPC_CHECK(condition)                                             \
  if (!(condition))                                                       \
  ::gepc::internal::LogMessage(::gepc::LogLevel::kError, __FILE__,        \
                               __LINE__, /*fatal=*/true)                  \
      << "Check failed: " #condition " "

#endif  // GEPC_COMMON_LOGGING_H_
