#include "common/status.h"

namespace gepc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gepc
