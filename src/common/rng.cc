#include "common/rng.h"

#include <cmath>

namespace gepc {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(&sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Avoid log(0).
  while (u1 <= 0.0) u1 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace gepc
