// Global operator new/delete overrides that feed MemoryTracker. Compiled into
// the separate `gepc_memhooks` object library so that only binaries wanting
// byte-exact heap accounting (the paper-reproduction benches) pay for it.

#include <cstdlib>
#include <malloc.h>
#include <new>

#include "common/memory_tracker.h"

namespace {

void* TrackedAlloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) return nullptr;
  gepc::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}

void* TrackedAlignedAlloc(std::size_t size, std::size_t alignment) {
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? alignment : size) != 0) {
    return nullptr;
  }
  gepc::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}

void TrackedFree(void* p) {
  if (p == nullptr) return;
  gepc::MemoryTracker::RecordFree(malloc_usable_size(p));
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = TrackedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = TrackedAlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void operator delete(void* p) noexcept { TrackedFree(p); }
void operator delete[](void* p) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { TrackedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { TrackedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
