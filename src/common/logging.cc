#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace gepc {

namespace {

// Atomic so the service's writer thread and concurrent readers can call
// SetLogLevel/GetLogLevel without a data race (TSan-clean).
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

LogLevel GetLogLevel() {
  return g_log_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= GetLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace gepc
