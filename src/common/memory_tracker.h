#ifndef GEPC_COMMON_MEMORY_TRACKER_H_
#define GEPC_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace gepc {

/// Process-wide heap accounting, mirroring the paper's use of "system
/// functions that monitor current memory usage" for the memory-cost columns
/// of Tables VI-IX and Figures 3/5.
///
/// Byte-exact counters are fed by the global operator new/delete overrides in
/// memory_hooks.cc; binaries that want byte-exact tracking (the benches) link
/// the `gepc_memhooks` object library. Without the hooks the counters stay at
/// zero and callers can fall back to CurrentRssBytes().
class MemoryTracker {
 public:
  /// Bytes currently allocated through operator new (0 without hooks).
  static int64_t CurrentBytes();

  /// High-water mark of CurrentBytes() since the last ResetPeak().
  static int64_t PeakBytes();

  /// Resets the high-water mark to the current allocation level.
  static void ResetPeak();

  /// Resident set size of the process read from /proc/self/status (VmRSS),
  /// or -1 if unavailable. Works without the allocation hooks.
  static int64_t CurrentRssBytes();

  // Called by the allocation hooks; not part of the public API.
  static void RecordAlloc(std::size_t bytes);
  static void RecordFree(std::size_t bytes);
};

}  // namespace gepc

#endif  // GEPC_COMMON_MEMORY_TRACKER_H_
