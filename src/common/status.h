#ifndef GEPC_COMMON_STATUS_H_
#define GEPC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace gepc {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (negative budget, bad bounds, ...).
  kInfeasible,        ///< No plan satisfies the constraints.
  kNotFound,          ///< Referenced user/event id does not exist.
  kOutOfRange,        ///< Index outside the instance dimensions.
  kFailedPrecondition,///< API called in the wrong state.
  kInternal,          ///< Invariant violation inside a solver.
  kUnimplemented,     ///< Feature not available.
  kUnavailable,       ///< Transient: queue full, service shutting down.
};

/// Returns the canonical lowercase name of a status code ("ok", "infeasible", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation); follows the RocksDB/Arrow idiom of returning rather than
/// throwing. All public solver entry points return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace gepc

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or Result<T> (Result is implicitly constructible from Status).
#define GEPC_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::gepc::Status _gepc_status = (expr);            \
    if (!_gepc_status.ok()) return _gepc_status;     \
  } while (false)

#endif  // GEPC_COMMON_STATUS_H_
