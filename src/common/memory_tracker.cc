#include "common/memory_tracker.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace gepc {

namespace {

std::atomic<int64_t> g_current_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void UpdatePeak(int64_t current) {
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (current > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, current,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

int64_t MemoryTracker::CurrentBytes() {
  return g_current_bytes.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::PeakBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

void MemoryTracker::ResetPeak() {
  g_peak_bytes.store(g_current_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

int64_t MemoryTracker::CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int64_t rss_kib = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      long long value = 0;
      if (std::sscanf(line + 6, "%lld", &value) == 1) rss_kib = value;
      break;
    }
  }
  std::fclose(f);
  return rss_kib < 0 ? -1 : rss_kib * 1024;
}

void MemoryTracker::RecordAlloc(std::size_t bytes) {
  int64_t current = g_current_bytes.fetch_add(static_cast<int64_t>(bytes),
                                              std::memory_order_relaxed) +
                    static_cast<int64_t>(bytes);
  UpdatePeak(current);
}

void MemoryTracker::RecordFree(std::size_t bytes) {
  g_current_bytes.fetch_sub(static_cast<int64_t>(bytes),
                            std::memory_order_relaxed);
}

}  // namespace gepc
