#ifndef GEPC_COMMON_RNG_H_
#define GEPC_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gepc {

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// SplitMix64). Every stochastic component of the library — the synthetic
/// data generator, the greedy solver's random user order, the benchmark
/// workload picker — takes an explicit Rng so that runs are reproducible
/// from a single seed.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Precondition: bound > 0. Uses rejection
  /// sampling (Lemire) so the distribution is exactly uniform.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (caches the second deviate).
  double Gaussian();

  /// Normal with the given mean / standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    assert(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; lets parallel components share
  /// one master seed without correlating their streams.
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace gepc

#endif  // GEPC_COMMON_RNG_H_
