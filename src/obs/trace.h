#ifndef GEPC_OBS_TRACE_H_
#define GEPC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <string>

#include "common/status.h"

namespace gepc {
namespace obs {

/// Microseconds since the process trace epoch (first use). Monotonic.
double TraceNowMicros();

/// Process-wide recorder of lightweight spans, exportable as
/// chrome://tracing / Perfetto "traceEvents" JSON (complete "X" events).
///
/// Disabled (the default) a span costs one relaxed atomic load. Enabled, a
/// span is two clock reads plus a short mutex push — spans mark coarse
/// solver phases (one per solve phase / shard / service op), not inner
/// loops, so the mutex is uncontended in practice. The buffer is bounded:
/// spans past `capacity` are counted in dropped() instead of growing
/// without bound inside a long-running service.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Clears the buffer and starts recording.
  void Start();
  /// Stops recording; the buffer is kept for export.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one complete span. `name` and `category` must be string
  /// literals (the recorder keeps the pointers, not copies).
  void Record(const char* name, const char* category, double start_us,
              double duration_us);

  size_t span_count() const;
  uint64_t dropped() const;
  void set_capacity(size_t capacity);

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — load in
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string RenderChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  TraceRecorder() = default;
  struct State;
  State* state_;  // opaque; lives in trace.cc

  std::atomic<bool> enabled_{false};
};

/// RAII span: records [construction, destruction) into the global recorder
/// when tracing is on; a single relaxed load otherwise.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "gepc")
      : name_(TraceRecorder::Global().enabled() ? name : nullptr),
        category_(category) {
    if (name_ != nullptr) start_us_ = TraceNowMicros();
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().Record(name_, category_, start_us_,
                                     TraceNowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace gepc

#define GEPC_OBS_CONCAT_INNER_(a, b) a##b
#define GEPC_OBS_CONCAT_(a, b) GEPC_OBS_CONCAT_INNER_(a, b)

/// Declares an anonymous scope span: GEPC_TRACE_SPAN("gepc.topup").
#define GEPC_TRACE_SPAN(...) \
  ::gepc::obs::TraceSpan GEPC_OBS_CONCAT_(gepc_trace_span_, __COUNTER__)( \
      __VA_ARGS__)

#endif  // GEPC_OBS_TRACE_H_
