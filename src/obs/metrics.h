#ifndef GEPC_OBS_METRICS_H_
#define GEPC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace gepc {
namespace obs {

// ---------------------------------------------------------------------------
// Global enable gate
// ---------------------------------------------------------------------------

namespace detail {
/// Read on every time-based instrumentation hit (histogram observations,
/// scoped timers). One relaxed atomic load when observability is off — the
/// "~0 overhead when idle" contract (see bench_obs_overhead). Counters and
/// gauges are NOT gated: a relaxed fetch_add is cheaper than the mutex they
/// replaced, and services rely on them for bookkeeping.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True iff time-based instrumentation (histograms, scoped timers) records.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns time-based instrumentation on (default) or off process-wide.
void SetEnabled(bool enabled);

// ---------------------------------------------------------------------------
// Metric value types (lock-free, usable standalone or via the Registry)
// ---------------------------------------------------------------------------

/// Monotonic event count. Prometheus convention: name it `*_total`.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, bytes, boundary users).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One coherent read of a Histogram, plus derived summaries.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty
  /// Ascending bucket upper bounds; an implicit +Inf bucket follows.
  std::vector<double> bounds;
  /// Per-bucket (NON-cumulative) counts; size bounds.size() + 1.
  std::vector<uint64_t> buckets;
  /// Retained samples, sorted ascending. Covers every observation while the
  /// reservoir has room — then `exact` is true and Quantile is the true
  /// nearest-rank quantile, not a bucket interpolation.
  std::vector<double> samples;
  bool exact = false;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Nearest-rank quantile from the retained samples when `exact`; linear
  /// interpolation inside the owning bucket otherwise. q in [0, 1].
  double Quantile(double q) const;
};

/// Fixed-bucket latency/size histogram with lock-free observation and an
/// exact-sample reservoir: deterministic workloads that fit the reservoir
/// (default 8192 observations) get *exact* quantile summaries; larger
/// streams degrade gracefully to bucket interpolation.
///
/// Observe() is gated on obs::Enabled() — an idle process pays one relaxed
/// load per call. Reset() assumes no concurrent observers (tests/benches).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = {},
                     size_t reservoir_capacity = kDefaultReservoirCapacity);

  void Observe(double value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

  static constexpr size_t kDefaultReservoirCapacity = 8192;
  /// 21 bounds from 1us to 5s — the default for `*_ms` histograms.
  static std::vector<double> DefaultLatencyBucketsMs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  size_t reservoir_capacity_;
  std::unique_ptr<std::atomic<double>[]> reservoir_;
  std::atomic<uint64_t> reservoir_next_{0};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Process-wide name -> metric table with Prometheus text exposition.
///
/// Get* returns the existing metric (creating on first use), so any code
/// path can cheaply cache a pointer:
///
///   static const auto h = obs::Registry::Global().GetHistogram(
///       "gepc_flow_solve_ms", "MinCostFlow::Solve latency");
///   obs::ScopedTimerMs timer(h.get());
///
/// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus grammar);
/// counters should end in `_total`, latency histograms in `_ms`. Asking for
/// an existing name with a different metric type returns a detached
/// instance (and the registry logs a warning) rather than aliasing.
class Registry {
 public:
  static Registry& Global();

  std::shared_ptr<Counter> GetCounter(const std::string& name,
                                      const std::string& help = "");
  std::shared_ptr<Gauge> GetGauge(const std::string& name,
                                  const std::string& help = "");
  std::shared_ptr<Histogram> GetHistogram(const std::string& name,
                                          const std::string& help = "",
                                          std::vector<double> bounds = {});

  /// Prometheus text exposition (# HELP / # TYPE / sample lines) of every
  /// registered metric, in name order.
  std::string RenderPrometheusText() const;

  /// Zeroes every registered metric's value. Registrations (and cached
  /// pointers) survive — tests and benches use this between phases.
  void ResetValues();

  /// Number of registered metrics.
  size_t size() const;

 private:
  Registry() = default;
  struct State;
  State* state_;  // opaque; lives in metrics.cc
};

// ---------------------------------------------------------------------------
// Prometheus text helpers (shared with the service-level exposition)
// ---------------------------------------------------------------------------

/// Shortest %g rendering, with "+Inf"/"-Inf" for infinities.
std::string FormatMetricValue(double value);

/// Appends `# HELP` / `# TYPE histogram` / cumulative `_bucket{le=...}` /
/// `_sum` / `_count` lines for one histogram snapshot.
void AppendHistogramText(const std::string& name, const std::string& help,
                         const HistogramSnapshot& snapshot, std::string* out);

/// Appends a `summary`-typed metric with exact-when-possible quantiles
/// (0.5, 0.9, 0.99) plus `_sum` / `_count`.
void AppendSummaryText(const std::string& name, const std::string& help,
                       const HistogramSnapshot& snapshot, std::string* out);

/// Appends `# HELP` / `# TYPE` / one sample line for a counter or gauge.
void AppendCounterText(const std::string& name, const std::string& help,
                       uint64_t value, std::string* out);
void AppendGaugeText(const std::string& name, const std::string& help,
                     double value, std::string* out);

// ---------------------------------------------------------------------------
// RAII phase timer
// ---------------------------------------------------------------------------

/// Observes the scope's wall time, in milliseconds, into a histogram — the
/// phase-timing primitive. Skips the clock reads entirely (two per scope)
/// when observability is off or the histogram is null.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram* histogram)
      : histogram_(Enabled() ? histogram : nullptr) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimerMs() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          std::chrono::duration<double, std::milli>(Clock::now() - start_)
              .count());
    }
  }

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace obs
}  // namespace gepc

#endif  // GEPC_OBS_METRICS_H_
