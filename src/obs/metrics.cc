#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/logging.h"

namespace gepc {
namespace obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void SetEnabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (exact && !samples.empty()) {
    // Nearest-rank on the sorted retained samples (matches SampleStats).
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    return samples[rank == 0 ? 0 : rank - 1];
  }
  // Bucket interpolation: find the bucket holding the target rank and
  // interpolate linearly inside it (Prometheus histogram_quantile style),
  // clamped to the observed min/max so tails stay sane.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const uint64_t in_bucket = buckets[b];
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    const double lower = b == 0 ? std::min(min, bounds.empty() ? min : bounds[0])
                                : bounds[b - 1];
    const double upper = b < bounds.size() ? bounds[b] : max;
    if (in_bucket == 0) return std::clamp(upper, min, max);
    const double fraction =
        static_cast<double>(target - cumulative) / static_cast<double>(in_bucket);
    return std::clamp(lower + (upper - lower) * fraction, min, max);
  }
  return max;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::vector<double> Histogram::DefaultLatencyBucketsMs() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0, 2.5,
          5.0,   10.0,   25.0,  50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};
}

Histogram::Histogram(std::vector<double> bounds, size_t reservoir_capacity)
    : bounds_(bounds.empty() ? DefaultLatencyBucketsMs() : std::move(bounds)),
      reservoir_capacity_(reservoir_capacity) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  if (reservoir_capacity_ > 0) {
    reservoir_ = std::make_unique<std::atomic<double>[]>(reservoir_capacity_);
  }
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);

  // First bucket whose upper bound holds the value (+Inf bucket otherwise).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);

  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }

  if (reservoir_capacity_ > 0) {
    const uint64_t slot = reservoir_next_.fetch_add(1, std::memory_order_relaxed);
    if (slot < reservoir_capacity_) {
      reservoir_[slot].store(value, std::memory_order_relaxed);
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.bounds = bounds_;
  snapshot.buckets.resize(bounds_.size() + 1);
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    snapshot.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  if (snapshot.count > 0) {
    snapshot.min = min_.load(std::memory_order_relaxed);
    snapshot.max = max_.load(std::memory_order_relaxed);
  }
  const uint64_t observed = reservoir_next_.load(std::memory_order_relaxed);
  const size_t retained =
      static_cast<size_t>(std::min<uint64_t>(observed, reservoir_capacity_));
  snapshot.samples.reserve(retained);
  for (size_t s = 0; s < retained; ++s) {
    snapshot.samples.push_back(reservoir_[s].load(std::memory_order_relaxed));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end());
  snapshot.exact = observed <= reservoir_capacity_ &&
                   snapshot.samples.size() == snapshot.count;
  return snapshot;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  reservoir_next_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::State {
  struct Entry {
    std::string help;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };
  mutable std::mutex mu;
  std::map<std::string, Entry> metrics;  // map: exposition in name order
};

Registry& Registry::Global() {
  // Leaked singleton: metrics outlive every static destructor, so worker
  // threads can record during shutdown.
  static Registry* instance = [] {
    Registry* registry = new Registry();
    registry->state_ = new State();
    return registry;
  }();
  return *instance;
}

std::shared_ptr<Counter> Registry::GetCounter(const std::string& name,
                                              const std::string& help) {
  std::lock_guard<std::mutex> lock(state_->mu);
  State::Entry& entry = state_->metrics[name];
  if (entry.gauge != nullptr || entry.histogram != nullptr) {
    GEPC_LOG(Warning) << "obs metric '" << name
                      << "' re-requested as a counter; returning detached";
    return std::make_shared<Counter>();
  }
  if (entry.counter == nullptr) {
    entry.counter = std::make_shared<Counter>();
    entry.help = help;
  }
  return entry.counter;
}

std::shared_ptr<Gauge> Registry::GetGauge(const std::string& name,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(state_->mu);
  State::Entry& entry = state_->metrics[name];
  if (entry.counter != nullptr || entry.histogram != nullptr) {
    GEPC_LOG(Warning) << "obs metric '" << name
                      << "' re-requested as a gauge; returning detached";
    return std::make_shared<Gauge>();
  }
  if (entry.gauge == nullptr) {
    entry.gauge = std::make_shared<Gauge>();
    entry.help = help;
  }
  return entry.gauge;
}

std::shared_ptr<Histogram> Registry::GetHistogram(const std::string& name,
                                                  const std::string& help,
                                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(state_->mu);
  State::Entry& entry = state_->metrics[name];
  if (entry.counter != nullptr || entry.gauge != nullptr) {
    GEPC_LOG(Warning) << "obs metric '" << name
                      << "' re-requested as a histogram; returning detached";
    return std::make_shared<Histogram>(std::move(bounds));
  }
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_shared<Histogram>(std::move(bounds));
    entry.help = help;
  }
  return entry.histogram;
}

std::string Registry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, entry] : state_->metrics) {
    if (entry.counter != nullptr) {
      AppendCounterText(name, entry.help, entry.counter->value(), &out);
    } else if (entry.gauge != nullptr) {
      AppendGaugeText(name, entry.help,
                      static_cast<double>(entry.gauge->value()), &out);
    } else if (entry.histogram != nullptr) {
      AppendHistogramText(name, entry.help, entry.histogram->Snapshot(), &out);
    }
  }
  return out;
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(state_->mu);
  for (auto& [name, entry] : state_->metrics) {
    (void)name;
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->metrics.size();
}

// ---------------------------------------------------------------------------
// Prometheus text helpers
// ---------------------------------------------------------------------------

std::string FormatMetricValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

namespace {

void AppendHeader(const std::string& name, const std::string& help,
                  const char* type, std::string* out) {
  if (!help.empty()) {
    out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  }
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

}  // namespace

void AppendCounterText(const std::string& name, const std::string& help,
                       uint64_t value, std::string* out) {
  AppendHeader(name, help, "counter", out);
  out->append(name).append(" ").append(std::to_string(value)).append("\n");
}

void AppendGaugeText(const std::string& name, const std::string& help,
                     double value, std::string* out) {
  AppendHeader(name, help, "gauge", out);
  out->append(name).append(" ").append(FormatMetricValue(value)).append("\n");
}

void AppendHistogramText(const std::string& name, const std::string& help,
                         const HistogramSnapshot& snapshot, std::string* out) {
  AppendHeader(name, help, "histogram", out);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < snapshot.bounds.size(); ++b) {
    cumulative += snapshot.buckets[b];
    out->append(name)
        .append("_bucket{le=\"")
        .append(FormatMetricValue(snapshot.bounds[b]))
        .append("\"} ")
        .append(std::to_string(cumulative))
        .append("\n");
  }
  out->append(name)
      .append("_bucket{le=\"+Inf\"} ")
      .append(std::to_string(snapshot.count))
      .append("\n");
  out->append(name).append("_sum ").append(FormatMetricValue(snapshot.sum)).append("\n");
  out->append(name).append("_count ").append(std::to_string(snapshot.count)).append("\n");
}

void AppendSummaryText(const std::string& name, const std::string& help,
                       const HistogramSnapshot& snapshot, std::string* out) {
  AppendHeader(name, help, "summary", out);
  for (const double q : {0.5, 0.9, 0.99}) {
    out->append(name)
        .append("{quantile=\"")
        .append(FormatMetricValue(q))
        .append("\"} ")
        .append(FormatMetricValue(snapshot.Quantile(q)))
        .append("\n");
  }
  out->append(name).append("_sum ").append(FormatMetricValue(snapshot.sum)).append("\n");
  out->append(name).append("_count ").append(std::to_string(snapshot.count)).append("\n");
}

}  // namespace obs
}  // namespace gepc
