#include "obs/trace.h"

#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"  // FormatMetricValue

namespace gepc {
namespace obs {

double TraceNowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

struct TraceRecorder::State {
  struct Span {
    const char* name;
    const char* category;
    double start_us;
    double duration_us;
    int tid;
  };
  mutable std::mutex mu;
  std::vector<Span> spans;
  std::unordered_map<std::thread::id, int> thread_ids;
  size_t capacity = 1 << 20;
  uint64_t dropped = 0;

  int TidLocked() {
    const auto id = std::this_thread::get_id();
    auto it = thread_ids.find(id);
    if (it != thread_ids.end()) return it->second;
    const int tid = static_cast<int>(thread_ids.size()) + 1;
    thread_ids.emplace(id, tid);
    return tid;
  }
};

TraceRecorder& TraceRecorder::Global() {
  // Leaked singleton — see Registry::Global().
  static TraceRecorder* instance = [] {
    TraceRecorder* recorder = new TraceRecorder();
    recorder->state_ = new State();
    return recorder;
  }();
  return *instance;
}

void TraceRecorder::Start() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->spans.clear();
    state_->dropped = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void TraceRecorder::Record(const char* name, const char* category,
                           double start_us, double duration_us) {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->spans.size() >= state_->capacity) {
    ++state_->dropped;
    return;
  }
  state_->spans.push_back(
      State::Span{name, category, start_us, duration_us, state_->TidLocked()});
}

size_t TraceRecorder::span_count() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->spans.size();
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->dropped;
}

void TraceRecorder::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->capacity = capacity;
}

std::string TraceRecorder::RenderChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const State::Span& span : state_->spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += span.name;  // literals: no escaping needed by construction
    out += "\",\"cat\":\"";
    out += span.category;
    out += "\",\"ph\":\"X\",\"ts\":";
    out += FormatMetricValue(span.start_us);
    out += ",\"dur\":";
    out += FormatMetricValue(span.duration_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(span.tid);
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open trace file: " + path);
  out << RenderChromeTraceJson() << "\n";
  out.flush();
  if (!out) return Status::Internal("trace write failed: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace gepc
