#include "sched/schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "common/rng.h"
#include "exec/task_rng.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/sharded_solver.h"

namespace gepc {

namespace {

/// Cached registry handles for the scheduler metrics (docs/observability.md).
struct SchedMetrics {
  std::shared_ptr<obs::Counter> searches;
  std::shared_ptr<obs::Counter> oracle_calls;
  std::shared_ptr<obs::Counter> cache_hits;
  std::shared_ptr<obs::Counter> degraded;
  std::shared_ptr<obs::Counter> skipped;
  std::shared_ptr<obs::Histogram> search_ms;
  std::shared_ptr<obs::Histogram> oracle_ms;

  static const SchedMetrics& Get() {
    static const SchedMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      SchedMetrics m;
      m.searches = registry.GetCounter("gepc_sched_searches_total",
                                       "SolveSchedule invocations");
      m.oracle_calls =
          registry.GetCounter("gepc_sched_oracle_calls_total",
                              "candidate schedules solved by the GEPC oracle");
      m.cache_hits = registry.GetCounter(
          "gepc_sched_cache_hits_total",
          "candidate evaluations served by the fingerprint cache");
      m.degraded = registry.GetCounter(
          "gepc_sched_degraded_total",
          "candidates degraded to the greedy estimate (fault or oracle error)");
      m.skipped =
          registry.GetCounter("gepc_sched_candidates_skipped_total",
                              "candidates skipped by the sched.candidate fault");
      m.search_ms = registry.GetHistogram("gepc_sched_search_ms",
                                          "schedule search end-to-end latency");
      m.oracle_ms = registry.GetHistogram("gepc_sched_oracle_ms",
                                          "single oracle evaluation latency");
      return m;
    }();
    return metrics;
  }
};

/// The oracle always solves plain-mu GEPC with a seed derived from the
/// configuration fingerprint: evaluations depend only on (problem, options,
/// configuration) — never on when or on which thread the search reached
/// them — and cached evals stay lambda-independent.
GepcOptions OracleOptions(const ScheduleOptions& options, uint64_t fingerprint) {
  GepcOptions gepc = options.gepc;
  gepc.greedy.seed = DeriveTaskSeed(options.seed, fingerprint);
  gepc.local_search.affinity = AffinityParams{};
  return gepc;
}

/// score(lambda) derived at lookup time from the lambda-independent eval.
double Score(const ScheduleOptions& options, const ScheduleEval& eval) {
  if (options.affinity.graph == nullptr) return eval.total_utility;
  return eval.total_utility +
         options.affinity.lambda * static_cast<double>(eval.affinity_pairs);
}

/// One candidate evaluation inside a wave.
struct EvalRequest {
  std::vector<int> choice;
  uint64_t fingerprint = 0;
  int tag = -1;  ///< candidate index (search) or batch slot (enumeration)
  bool skipped = false;      ///< sched.candidate fired; never evaluated
  bool needs_oracle = false;
  bool oracle_ok = false;
  bool degraded = false;
  ScheduleEval eval;
};

struct SearchContext {
  const ScheduleProblem& problem;
  const ScheduleOptions& options;
  ThreadPool* pool;
  ScheduleCache* memo;  ///< nullptr when memoization is off
  ScheduleStats* stats;
};

ScheduleEval SolveOracle(const ScheduleProblem& problem,
                         const ScheduleOptions& options,
                         const std::vector<int>& choice, uint64_t fingerprint,
                         bool* oracle_ok) {
  GEPC_TRACE_SPAN("sched.oracle");
  obs::ScopedTimerMs oracle_timer(SchedMetrics::Get().oracle_ms.get());
  const Instance instance = MaterializeSchedule(problem, choice);
  const GepcOptions gepc = OracleOptions(options, fingerprint);
  Result<GepcResult> solved = Status::Internal("unset");
  if (options.oracle_shards > 1) {
    ShardedGepcOptions sharded;
    sharded.shards = options.oracle_shards;
    sharded.threads = 1;  // the search already parallelizes across candidates
    sharded.gepc = gepc;
    solved = SolveSharded(instance, sharded);
  } else {
    solved = SolveGepc(instance, gepc);
  }
  if (!solved.ok()) {
    *oracle_ok = false;
    return EstimateSchedule(problem, choice);
  }
  *oracle_ok = true;
  ScheduleEval eval;
  eval.total_utility = solved->total_utility;
  for (int j = 0; j < instance.num_events(); ++j) {
    eval.attendance += solved->plan.attendance(j);
  }
  if (options.affinity.graph != nullptr) {
    eval.affinity_pairs = AffinityPairs(options.affinity.graph, solved->plan);
  }
  return eval;
}

/// Evaluates a wave of candidate configurations. Fault and cache decisions
/// are taken SEQUENTIALLY in request order before any parallel work — so a
/// run fires the same faults at the same candidates at any thread count,
/// and cache hits never consume a fault injection. Only the oracle solves
/// of the remaining misses run on the pool, each writing its own slot.
void EvaluateWave(const SearchContext& ctx, std::vector<EvalRequest>* requests) {
  const SchedMetrics& om = SchedMetrics::Get();
  std::vector<int> misses;
  for (size_t i = 0; i < requests->size(); ++i) {
    EvalRequest& req = (*requests)[i];
    req.fingerprint = ScheduleFingerprint(req.choice);
    if (!fault::Inject("sched.candidate").ok()) {
      req.skipped = true;
      ++ctx.stats->skipped_candidates;
      om.skipped->Increment();
      continue;
    }
    if (ctx.memo != nullptr && ctx.memo->Lookup(req.fingerprint, &req.eval)) {
      ++ctx.stats->cache_hits;
      om.cache_hits->Increment();
      continue;
    }
    if (!fault::Inject("sched.oracle").ok()) {
      req.eval = EstimateSchedule(ctx.problem, req.choice);
      req.degraded = true;
      ++ctx.stats->degraded_candidates;
      om.degraded->Increment();
      continue;
    }
    req.needs_oracle = true;
    misses.push_back(static_cast<int>(i));
  }
  if (!misses.empty()) {
    ctx.pool->ParallelFor(0, static_cast<int>(misses.size()), [&](int k) {
      EvalRequest& req = (*requests)[static_cast<size_t>(misses[static_cast<size_t>(k)])];
      req.eval = SolveOracle(ctx.problem, ctx.options, req.choice,
                             req.fingerprint, &req.oracle_ok);
    });
  }
  for (const int i : misses) {
    EvalRequest& req = (*requests)[static_cast<size_t>(i)];
    if (req.oracle_ok) {
      ++ctx.stats->oracle_calls;
      om.oracle_calls->Increment();
      // Degraded evals are never cached: a later visit re-solves properly.
      if (ctx.memo != nullptr) ctx.memo->Insert(req.fingerprint, req.eval);
    } else {
      req.degraded = true;
      req.eval.degraded = true;
      ++ctx.stats->degraded_candidates;
      om.degraded->Increment();
    }
  }
}

struct BestCandidate {
  bool found = false;
  int candidate = -1;
  double score = 0.0;
};

/// Evaluates every candidate of draft `d` (except `exclude`) against the
/// rest of `choice` and returns the best by score (ties: lowest candidate
/// index — the sequential evaluation order).
BestCandidate BestCandidateFor(const SearchContext& ctx,
                               const std::vector<int>& choice, int d,
                               int exclude) {
  const DraftEvent& draft = ctx.problem.drafts[static_cast<size_t>(d)];
  std::vector<EvalRequest> wave;
  for (int c = 0; c < static_cast<int>(draft.candidates.size()); ++c) {
    if (c == exclude) continue;
    EvalRequest req;
    req.choice = choice;
    req.choice[static_cast<size_t>(d)] = c;
    req.tag = c;
    wave.push_back(std::move(req));
  }
  EvaluateWave(ctx, &wave);
  BestCandidate best;
  for (const EvalRequest& req : wave) {
    if (req.skipped) continue;
    const double score = Score(ctx.options, req.eval);
    if (!best.found || score > best.score) {
      best.found = true;
      best.candidate = req.tag;
      best.score = score;
    }
  }
  return best;
}

/// Fills result.instance/plan/score for the winning configuration with one
/// final (uninjected) oracle solve — so callers can inspect the attendance
/// plan without re-solving.
Status FinalizeResult(const ScheduleProblem& problem,
                      const ScheduleOptions& options,
                      const std::vector<int>& choice, ScheduleResult* result) {
  result->choice = choice;
  result->instance = MaterializeSchedule(problem, choice);
  const GepcOptions gepc = OracleOptions(options, ScheduleFingerprint(choice));
  Result<GepcResult> solved = Status::Internal("unset");
  if (options.oracle_shards > 1) {
    ShardedGepcOptions sharded;
    sharded.shards = options.oracle_shards;
    sharded.threads = 1;
    sharded.gepc = gepc;
    solved = SolveSharded(result->instance, sharded);
  } else {
    solved = SolveGepc(result->instance, gepc);
  }
  GEPC_RETURN_IF_ERROR(solved.status());
  result->plan = std::move(solved->plan);
  result->total_utility = solved->total_utility;
  result->attendance = 0;
  for (int j = 0; j < result->instance.num_events(); ++j) {
    result->attendance += result->plan.attendance(j);
  }
  ScheduleEval eval;
  eval.total_utility = result->total_utility;
  if (options.affinity.graph != nullptr) {
    eval.affinity_pairs = AffinityPairs(options.affinity.graph, result->plan);
  }
  result->score = Score(options, eval);
  result->affinity_utility = result->score;
  return Status::OK();
}

Status ValidateOptions(const ScheduleProblem& problem,
                       const ScheduleOptions& options) {
  if (options.restarts < 1) {
    return Status::InvalidArgument("restarts must be >= 1");
  }
  if (options.max_passes < 1) {
    return Status::InvalidArgument("max_passes must be >= 1");
  }
  if (options.affinity.graph != nullptr &&
      options.affinity.graph->num_users() !=
          static_cast<int>(problem.users.size())) {
    return Status::InvalidArgument(
        "friendship graph does not cover the problem's users");
  }
  return Status::OK();
}

}  // namespace

Status ScheduleProblem::Validate() const {
  for (size_t d = 0; d < drafts.size(); ++d) {
    const DraftEvent& draft = drafts[d];
    if (draft.interest.size() != users.size()) {
      return Status::InvalidArgument(
          "draft interest vector does not match the user count");
    }
    for (const double mu : draft.interest) {
      if (mu < 0.0 || !std::isfinite(mu)) {
        return Status::InvalidArgument("draft interest must be finite and >= 0");
      }
    }
    if (draft.candidates.empty()) {
      return Status::InvalidArgument("every draft needs at least one candidate");
    }
    if (draft.lower_bound < 0) {
      return Status::InvalidArgument("draft lower_bound must be >= 0");
    }
    for (const ScheduleCandidate& cand : draft.candidates) {
      if (cand.capacity < 0) {
        return Status::InvalidArgument("candidate capacity must be >= 0");
      }
      if (cand.fee < 0.0) {
        return Status::InvalidArgument("candidate fee must be >= 0");
      }
      if (!cand.slot.IsValid()) {
        return Status::InvalidArgument("candidate slot must be a valid interval");
      }
    }
  }
  return Status::OK();
}

bool ScheduleCache::Lookup(uint64_t fingerprint, ScheduleEval* eval) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = evals_.find(fingerprint);
  if (it == evals_.end()) return false;
  *eval = it->second;
  return true;
}

void ScheduleCache::Insert(uint64_t fingerprint, const ScheduleEval& eval) {
  std::lock_guard<std::mutex> lock(mu_);
  evals_.emplace(fingerprint, eval);
}

int64_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(evals_.size());
}

uint64_t ScheduleFingerprint(const std::vector<int>& choice) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (const int c : choice) {
    uint64_t v = static_cast<uint64_t>(static_cast<int64_t>(c));
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFULL;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

Instance MaterializeSchedule(const ScheduleProblem& problem,
                             const std::vector<int>& choice) {
  std::vector<Event> events;
  std::vector<int> scheduled_drafts;
  for (size_t d = 0; d < problem.drafts.size(); ++d) {
    const int c = d < choice.size() ? choice[d] : -1;
    if (c < 0) continue;
    const DraftEvent& draft = problem.drafts[d];
    const ScheduleCandidate& cand = draft.candidates[static_cast<size_t>(c)];
    Event event;
    event.location = cand.venue;
    event.upper_bound = cand.capacity;
    event.lower_bound = std::min(draft.lower_bound, cand.capacity);
    event.time = cand.slot;
    event.fee = cand.fee;
    events.push_back(event);
    scheduled_drafts.push_back(static_cast<int>(d));
  }
  Instance instance(problem.users, std::move(events));
  for (size_t lj = 0; lj < scheduled_drafts.size(); ++lj) {
    const DraftEvent& draft =
        problem.drafts[static_cast<size_t>(scheduled_drafts[lj])];
    for (size_t u = 0; u < problem.users.size(); ++u) {
      if (draft.interest[u] != 0.0) {
        instance.set_utility(static_cast<UserId>(u), static_cast<EventId>(lj),
                             draft.interest[u]);
      }
    }
  }
  return instance;
}

ScheduleEval EstimateSchedule(const ScheduleProblem& problem,
                              const std::vector<int>& choice) {
  ScheduleEval est;
  est.degraded = true;
  std::vector<std::pair<double, int>> takers;
  for (size_t d = 0; d < problem.drafts.size(); ++d) {
    const int c = d < choice.size() ? choice[d] : -1;
    if (c < 0) continue;
    const DraftEvent& draft = problem.drafts[d];
    const ScheduleCandidate& cand = draft.candidates[static_cast<size_t>(c)];
    takers.clear();
    for (size_t u = 0; u < problem.users.size(); ++u) {
      const double mu = draft.interest[u];
      if (mu <= 0.0) continue;
      const User& user = problem.users[u];
      if (2.0 * Distance(user.location, cand.venue) + cand.fee >
          user.budget + 1e-9) {
        continue;
      }
      takers.emplace_back(mu, static_cast<int>(u));
    }
    std::sort(takers.begin(), takers.end(),
              [](const std::pair<double, int>& a,
                 const std::pair<double, int>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t take =
        std::min(takers.size(), static_cast<size_t>(cand.capacity));
    for (size_t k = 0; k < take; ++k) {
      est.total_utility += takers[k].first;
      ++est.attendance;
    }
  }
  return est;
}

Result<ScheduleResult> SolveSchedule(const ScheduleProblem& problem,
                                     const ScheduleOptions& options,
                                     ScheduleCache* cache) {
  GEPC_RETURN_IF_ERROR(problem.Validate());
  GEPC_RETURN_IF_ERROR(ValidateOptions(problem, options));
  const SchedMetrics& om = SchedMetrics::Get();
  om.searches->Increment();
  obs::ScopedTimerMs search_timer(om.search_ms.get());
  GEPC_TRACE_SPAN("sched.search");

  ScheduleResult result;
  const int num_drafts = static_cast<int>(problem.drafts.size());
  ScheduleCache local_cache;
  ScheduleCache* memo =
      options.memoize ? (cache != nullptr ? cache : &local_cache) : nullptr;
  ThreadPool pool(std::max(1, options.threads));
  const SearchContext ctx{problem, options, &pool, memo, &result.stats};

  bool have_best = false;
  std::vector<int> best_choice(static_cast<size_t>(num_drafts), -1);
  double best_score = -std::numeric_limits<double>::infinity();

  for (int r = 0; r < options.restarts; ++r) {
    ++result.stats.restarts;
    std::vector<int> order(static_cast<size_t>(num_drafts));
    std::iota(order.begin(), order.end(), 0);
    if (r > 0) {
      // Restart 0 keeps the natural draft order; later restarts shuffle it
      // from a stream disjoint from the fingerprint-derived oracle seeds.
      Rng rng(DeriveTaskSeed(options.seed ^ 0xC0FFEEULL, static_cast<uint64_t>(r)));
      rng.Shuffle(&order);
    }

    // Greedy construction: place one draft at a time, best candidate given
    // everything placed so far.
    std::vector<int> choice(static_cast<size_t>(num_drafts), -1);
    double current = 0.0;
    for (const int d : order) {
      const BestCandidate best = BestCandidateFor(ctx, choice, d, /*exclude=*/-1);
      if (best.found) {
        choice[static_cast<size_t>(d)] = best.candidate;
        current = best.score;
      }
    }

    // Swap-based hill climbing: per pass, each draft may move to its best
    // alternative candidate if that strictly improves the schedule score.
    bool moved = true;
    int pass = 0;
    while (moved && pass < options.max_passes) {
      moved = false;
      ++pass;
      ++result.stats.passes;
      for (int d = 0; d < num_drafts; ++d) {
        const BestCandidate best = BestCandidateFor(
            ctx, choice, d, choice[static_cast<size_t>(d)]);
        if (best.found && best.score > current + options.min_gain) {
          choice[static_cast<size_t>(d)] = best.candidate;
          current = best.score;
          ++result.stats.swap_moves;
          moved = true;
        }
      }
    }

    if (!have_best || current > best_score ||
        (current == best_score && choice < best_choice)) {
      have_best = true;
      best_score = current;
      best_choice = choice;
    }
  }

  GEPC_RETURN_IF_ERROR(FinalizeResult(problem, options, best_choice, &result));
  return result;
}

Result<ScheduleResult> EnumerateSchedule(const ScheduleProblem& problem,
                                         const ScheduleOptions& options,
                                         ScheduleCache* cache,
                                         int64_t max_configs) {
  GEPC_RETURN_IF_ERROR(problem.Validate());
  GEPC_RETURN_IF_ERROR(ValidateOptions(problem, options));
  const int num_drafts = static_cast<int>(problem.drafts.size());
  int64_t total = 1;
  for (const DraftEvent& draft : problem.drafts) {
    total *= static_cast<int64_t>(draft.candidates.size());
    if (total > max_configs) {
      return Status::InvalidArgument(
          "configuration space exceeds max_configs; use SolveSchedule");
    }
  }

  ScheduleResult result;
  ScheduleCache local_cache;
  ScheduleCache* memo =
      options.memoize ? (cache != nullptr ? cache : &local_cache) : nullptr;
  ThreadPool pool(std::max(1, options.threads));
  const SearchContext ctx{problem, options, &pool, memo, &result.stats};

  bool have_best = false;
  std::vector<int> best_choice(static_cast<size_t>(num_drafts), -1);
  double best_score = -std::numeric_limits<double>::infinity();

  std::vector<int> odometer(static_cast<size_t>(num_drafts), 0);
  const int batch = std::max(16, 4 * std::max(1, options.threads));
  int64_t emitted = 0;
  bool done = false;
  while (!done || emitted == 0) {
    std::vector<EvalRequest> wave;
    while (!done && static_cast<int>(wave.size()) < batch) {
      EvalRequest req;
      req.choice = odometer;
      wave.push_back(std::move(req));
      ++emitted;
      // Advance the odometer (lexicographic order, so the first occurrence
      // of the best score is also the lexicographically smallest).
      int d = num_drafts - 1;
      for (; d >= 0; --d) {
        const int limit = static_cast<int>(
            problem.drafts[static_cast<size_t>(d)].candidates.size());
        if (++odometer[static_cast<size_t>(d)] < limit) break;
        odometer[static_cast<size_t>(d)] = 0;
      }
      if (d < 0) done = true;
    }
    if (wave.empty()) break;
    EvaluateWave(ctx, &wave);
    for (const EvalRequest& req : wave) {
      if (req.skipped) continue;
      const double score = Score(options, req.eval);
      if (!have_best || score > best_score) {
        have_best = true;
        best_score = score;
        best_choice = req.choice;
      }
    }
    if (done) break;
  }

  GEPC_RETURN_IF_ERROR(FinalizeResult(problem, options, best_choice, &result));
  return result;
}

ScheduleProblem GenerateScheduleProblem(const ScheduleGenConfig& config) {
  Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + 0x5C4EDULL);
  const double diagonal = std::sqrt(config.city_width * config.city_width +
                                    config.city_height * config.city_height);
  std::vector<User> users;
  users.reserve(static_cast<size_t>(std::max(0, config.num_users)));
  for (int i = 0; i < config.num_users; ++i) {
    User user;
    user.location = Point{rng.UniformDouble(0.0, config.city_width),
                          rng.UniformDouble(0.0, config.city_height)};
    user.budget =
        rng.UniformDouble(config.budget_lo_frac, config.budget_hi_frac) *
        diagonal;
    users.push_back(user);
  }
  return GenerateScheduleProblemForUsers(std::move(users), config);
}

ScheduleProblem GenerateScheduleProblemForUsers(
    std::vector<User> users, const ScheduleGenConfig& config) {
  ScheduleProblem problem;
  problem.users = std::move(users);
  const int n = static_cast<int>(problem.users.size());

  // Venue candidates scatter over the users' bounding box (the configured
  // city when there are no users to bound).
  double x0 = 0.0, y0 = 0.0;
  double width = config.city_width, height = config.city_height;
  if (n > 0) {
    double x1 = problem.users[0].location.x, y1 = problem.users[0].location.y;
    x0 = x1;
    y0 = y1;
    for (const User& user : problem.users) {
      x0 = std::min(x0, user.location.x);
      y0 = std::min(y0, user.location.y);
      x1 = std::max(x1, user.location.x);
      y1 = std::max(y1, user.location.y);
    }
    width = std::max(1.0, x1 - x0);
    height = std::max(1.0, y1 - y0);
  }

  Rng rng(config.seed * 0xD1B54A32D192ED03ULL + 0xD2AF7ULL);
  for (int d = 0; d < config.num_drafts; ++d) {
    DraftEvent draft;
    draft.interest.resize(static_cast<size_t>(n), 0.0);
    for (int u = 0; u < n; ++u) {
      if (rng.Bernoulli(config.interest_p)) {
        draft.interest[static_cast<size_t>(u)] =
            rng.UniformDouble(config.mu_lo, config.mu_hi);
      }
    }
    draft.lower_bound = std::max(
        0, static_cast<int>(config.lower_bound_frac * config.mean_capacity));
    for (int c = 0; c < config.candidates_per_draft; ++c) {
      ScheduleCandidate cand;
      cand.venue = Point{x0 + rng.UniformDouble(0.0, width),
                         y0 + rng.UniformDouble(0.0, height)};
      cand.capacity = std::max(
          1, static_cast<int>(std::llround(rng.UniformDouble(0.5, 1.5) *
                                           config.mean_capacity)));
      // Day grid: starts on the half hour between 08:00 and 18:00, running
      // 60-180 minutes.
      const Minutes start =
          static_cast<Minutes>(480 + 30 * rng.UniformInt(0, 20));
      const Minutes duration =
          static_cast<Minutes>(60 + 30 * rng.UniformInt(0, 4));
      cand.slot = Interval{start, start + duration};
      cand.fee = 0.0;
      draft.candidates.push_back(cand);
    }
    problem.drafts.push_back(std::move(draft));
  }
  return problem;
}

}  // namespace gepc
