#ifndef GEPC_SCHED_SCHEDULE_H_
#define GEPC_SCHED_SCHEDULE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"
#include "core/user.h"
#include "gepc/affinity.h"
#include "gepc/solver.h"
#include "geom/point.h"
#include "temporal/interval.h"

namespace gepc {

/// Organizer-side event scheduling (Social Event Scheduling, Bikakis et
/// al.): the solver side of the repo answers "who attends which events";
/// this subsystem answers "when and where should the events run". Each
/// draft event comes with candidate (time-slot, venue) pairs; a schedule
/// picks one candidate per draft, and its value is whatever the GEPC solver
/// — used as an attendance oracle — can realize on the materialized
/// instance, optionally plus the social-affinity term of affinity.h.

/// One (time-slot, venue) option for a draft event. The venue carries the
/// capacity (eta) and location the materialized Event will use.
struct ScheduleCandidate {
  Interval slot;
  Point venue;
  int capacity = 0;
  double fee = 0.0;
};

/// An event the organizer wants to run but has not yet placed.
struct DraftEvent {
  /// Per-user interest mu(u, draft); size must equal the problem's user
  /// count. Interest is a property of the event, not of the venue — every
  /// candidate shares it.
  std::vector<double> interest;
  std::vector<ScheduleCandidate> candidates;
  /// Minimum attendance xi for the materialized event (clamped to the
  /// chosen candidate's capacity).
  int lower_bound = 0;
};

/// The scheduling input: a fixed user population and the drafts to place.
struct ScheduleProblem {
  std::vector<User> users;
  std::vector<DraftEvent> drafts;

  Status Validate() const;
};

/// What one schedule configuration is worth. Deliberately
/// lambda-INDEPENDENT: the cache stores total attendance utility and the
/// raw affinity pair count, and the lambda-weighted score is derived at
/// lookup time — so one ScheduleCache serves searches at any lambda (the
/// bench sweeps lambda sharing a single cache).
struct ScheduleEval {
  double total_utility = 0.0;  ///< oracle plan utility, plain mu
  int64_t affinity_pairs = 0;  ///< AffinityPairs of the oracle plan (0 if no graph)
  int attendance = 0;          ///< total attendances across scheduled drafts
  bool degraded = false;       ///< greedy estimate, not an oracle solve
};

/// Memoization table keyed by the canonical schedule fingerprint. Thread-
/// compatible with the search's parallel oracle waves (internal mutex) and
/// shareable across searches — including searches at different lambdas,
/// since evals are lambda-independent. Degraded evals are never inserted.
///
/// Sharing contract: a cache is valid for one (problem, oracle options,
/// friendship graph) triple. Lambda may vary freely between sharers, but
/// the GRAPH may not — pair counts are recorded at evaluation time, so a
/// lambda sweep must arm the same graph in every search (including the
/// lambda = 0 leg, where the recorded pairs simply weigh nothing).
class ScheduleCache {
 public:
  bool Lookup(uint64_t fingerprint, ScheduleEval* eval) const;
  void Insert(uint64_t fingerprint, const ScheduleEval& eval);
  int64_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, ScheduleEval> evals_;
};

/// Canonical fingerprint of a schedule configuration (FNV-1a over the
/// choice vector; choice[d] is the candidate index of draft d, -1 for an
/// unscheduled draft). Identical configurations always collide — that is
/// the memoization key — and the oracle's greedy seed is derived from it,
/// so an evaluation never depends on when the search reached it.
uint64_t ScheduleFingerprint(const std::vector<int>& choice);

/// Builds the Instance a configuration describes: the full user population
/// plus one Event per scheduled draft (venue location/capacity, slot,
/// lower bound clamped to capacity, utilities from the draft's interest).
/// Drafts with choice[d] < 0 are omitted.
Instance MaterializeSchedule(const ScheduleProblem& problem,
                             const std::vector<int>& choice);

/// Oracle-free greedy estimate used when the `sched.oracle` fault (or a
/// real oracle error) degrades a candidate: per scheduled draft, interested
/// users within round-trip budget of the venue, best-interest-first, up to
/// capacity — ignoring conflicts and tour interactions. Always an upper
/// bound on nothing in particular; just a deterministic, cheap stand-in.
ScheduleEval EstimateSchedule(const ScheduleProblem& problem,
                              const std::vector<int>& choice);

/// Search configuration.
struct ScheduleOptions {
  /// Master seed: restart shuffles and per-configuration oracle seeds
  /// derive from it. Same seed => same result at any thread count.
  uint64_t seed = 1;
  /// Worker threads for the parallel oracle waves (clamped to >= 1).
  int threads = 1;
  /// Greedy constructions from independently shuffled draft orders; the
  /// best restart wins (ties: lexicographically smallest choice vector).
  int restarts = 2;
  /// Hill-climbing pass cap per restart.
  int max_passes = 4;
  /// Minimum score gain for a swap to be accepted.
  double min_gain = 1e-9;
  /// Memoize evaluations by fingerprint. Off = the naive re-solve-per-
  /// candidate baseline bench_schedule compares against.
  bool memoize = true;
  /// Inner-oracle configuration. The oracle always solves plain-mu GEPC —
  /// any affinity armed inside gepc.local_search is stripped so cached
  /// evals stay lambda-independent.
  GepcOptions gepc;
  /// > 1 routes the oracle through SolveSharded (sequentially per
  /// candidate; the search already parallelizes across candidates).
  int oracle_shards = 1;
  /// Schedule scoring: score = total_utility + lambda * affinity_pairs.
  AffinityParams affinity;
};

/// What a search did, for tests/benches/metrics.
struct ScheduleStats {
  int64_t oracle_calls = 0;        ///< real SolveGepc/SolveSharded runs
  int64_t cache_hits = 0;          ///< evaluations served by the cache
  int64_t degraded_candidates = 0; ///< sched.oracle fired / oracle errored
  int64_t skipped_candidates = 0;  ///< sched.candidate fired; not evaluated
  int64_t swap_moves = 0;          ///< accepted hill-climbing moves
  int passes = 0;                  ///< hill-climbing passes, all restarts
  int restarts = 0;
};

/// The chosen schedule.
struct ScheduleResult {
  /// Candidate index per draft; -1 only when every candidate of a draft
  /// was fault-skipped.
  std::vector<int> choice;
  /// total_utility + lambda * affinity_pairs of the winning configuration.
  double score = 0.0;
  double total_utility = 0.0;
  /// == score (the affinity-aware utility); == total_utility when no
  /// affinity is armed.
  double affinity_utility = 0.0;
  int attendance = 0;
  /// The winning configuration, materialized, with the oracle's plan — so
  /// callers (CLI, serve) can inspect who attends what without re-solving.
  Instance instance;
  Plan plan;
  ScheduleStats stats;
};

/// Searches schedule configurations for `problem`: greedy one-draft-at-a-
/// time construction (multi-restart, shuffled draft orders) followed by
/// swap-based hill climbing (per pass, each draft may move to its best
/// alternative candidate). Every configuration is scored by the GEPC
/// oracle on the materialized instance; oracle calls within a wave run in
/// parallel on `threads` workers and are memoized by fingerprint in
/// `cache` (a caller-provided cache is reused across calls — pass the same
/// one to amortize across lambda sweeps; nullptr uses a private per-search
/// cache when options.memoize).
///
/// Deterministic per (problem, options.seed, restarts/passes knobs): the
/// oracle seed of a configuration depends only on its fingerprint, fault
/// decisions are taken sequentially at wave-build time, and ties break on
/// candidate index / lexicographic choice order.
Result<ScheduleResult> SolveSchedule(const ScheduleProblem& problem,
                                     const ScheduleOptions& options = {},
                                     ScheduleCache* cache = nullptr);

/// Exhaustively scores every full configuration (product of candidate
/// counts; errors above `max_configs`) and returns the best — the ground
/// truth the differential test holds SolveSchedule against. Shares the
/// evaluation path (oracle seeds, cache, faults) with the search.
Result<ScheduleResult> EnumerateSchedule(const ScheduleProblem& problem,
                                         const ScheduleOptions& options = {},
                                         ScheduleCache* cache = nullptr,
                                         int64_t max_configs = 1 << 20);

/// Seeded synthetic scheduling workloads (paper-style): clustered users,
/// draft interest via the usual Bernoulli(interest_p) * U[mu_lo, mu_hi)
/// model, candidate venues scattered over the city with capacities around
/// mean_capacity and slots drawn from a day grid.
struct ScheduleGenConfig {
  int num_users = 200;
  int num_drafts = 4;
  int candidates_per_draft = 3;
  double city_width = 100.0;
  double city_height = 100.0;
  /// Probability a user is interested in a draft at all.
  double interest_p = 0.4;
  double mu_lo = 0.1;
  double mu_hi = 1.0;
  double mean_capacity = 40.0;
  /// xi as a fraction of the candidate capacity.
  double lower_bound_frac = 0.1;
  /// User budget range as fractions of the city diagonal.
  double budget_lo_frac = 0.35;
  double budget_hi_frac = 1.1;
  uint64_t seed = 42;
};

ScheduleProblem GenerateScheduleProblem(const ScheduleGenConfig& config);

/// Same drafts/candidates model over an existing user population (the
/// serve `schedule` command evaluates against the live snapshot's users).
/// City bounds are taken from the users' bounding box.
ScheduleProblem GenerateScheduleProblemForUsers(std::vector<User> users,
                                                const ScheduleGenConfig& config);

}  // namespace gepc

#endif  // GEPC_SCHED_SCHEDULE_H_
