#ifndef GEPC_SERVICE_DISPATCH_H_
#define GEPC_SERVICE_DISPATCH_H_

#include <atomic>
#include <string>

#include "gepc/solver.h"
#include "service/planning_service.h"

namespace gepc {

/// Whether a protocol command mutates service state (rides the writer
/// queue) or is served entirely from immutable snapshots. Front ends use
/// this to route work: the socket server runs reads on a dedicated worker
/// pool so a saturated op queue never delays snapshot queries.
enum class CommandKind {
  kRead,     ///< query_user, query_event, stats, metrics, faults
  kWrite,    ///< apply, rebuild, checkpoint, save_plan, drain, shutdown
  kUnknown,  ///< not a protocol command; Dispatch will answer with an error
};

CommandKind ClassifyCommand(const std::string& cmd);

/// Cheap routing hint: scans one JSONL request line for its "cmd" string
/// value without a full JSON parse (the worker that executes the request
/// re-parses and validates properly). Returns "" when no cmd is found —
/// callers should then route to the write pool, whose Dispatch will emit
/// the real parse error.
std::string ExtractCmdHint(const std::string& line);

/// What executing one request produced.
struct DispatchOutcome {
  /// One flat JSON object (no trailing newline). For shutdown it is the
  /// acknowledgement — the socket server sends it to the requesting client
  /// before stopping, while the stdio loop discards it in favour of its
  /// post-drain bye line (which reports the final version).
  std::string response;
  /// True when the request asked the hosting front end to stop serving.
  bool shutdown = false;
};

/// Defaults a front end passes through to the `rebuild` command (its
/// per-request JSON fields override them).
struct DispatchDefaults {
  int threads = 1;
  int shards = 1;
  GepcAlgorithm algorithm = GepcAlgorithm::kGreedy;
};

/// Maps a (pre-validated) algorithm name to the enum; unknown names fall
/// back to greedy.
GepcAlgorithm AlgorithmFromName(const std::string& name);

/// Which role this process serves (docs/replication.md), shared between the
/// front end, the dispatcher and a repl::Follower. Promotion flips
/// `follower` to false at runtime, so the dispatcher reads it per request:
/// on a follower, state-mutating commands (`apply`, `rebuild`) answer
/// {"ok":false,"code":"redirect","primary":...} instead of executing.
/// Snapshot reads, `stats`, `metrics`, local `checkpoint`/`save_plan`,
/// `drain` and `shutdown` always run locally.
struct ServeRole {
  std::atomic<bool> follower{false};
  /// "host:port" of the primary this process follows (fixed at startup);
  /// named in write-redirect responses.
  std::string primary;
  /// Whether the socket front end compresses its payloads (--net-compress);
  /// surfaced through `stats` so harnesses stop inferring mode from flags.
  bool net_compress = false;
};

/// Full Prometheus text exposition: the process-global registry (solver
/// phases, journal, net) followed by this service's gepc_service_* block —
/// the payload of the `metrics` command and of gepc_serve's --metrics file.
std::string RenderAllMetricsText(const PlanningService& service);

/// The JSONL command-dispatch layer shared by every gepc_serve front end
/// (stdio and socket speak byte-identical requests and responses; see
/// docs/cli.md for the command set). Thread-safe: Dispatch may be called
/// concurrently from any number of threads — PlanningService serializes
/// writes through its queue and serves reads from immutable snapshots.
///
/// Every response echoes the request's optional "id" field (string or
/// number) as its first member, so clients may pipeline requests over one
/// connection and correlate out-of-order responses.
class CommandDispatcher {
 public:
  /// `role` (optional, not owned, must outlive the dispatcher) makes the
  /// responses role-aware: `stats` reports it and, while it says follower,
  /// write commands redirect to the primary. Null behaves as a primary.
  CommandDispatcher(PlanningService* service, DispatchDefaults defaults,
                    const ServeRole* role = nullptr)
      : service_(service), defaults_(defaults), role_(role) {}

  /// Parses and executes one request line. Protocol errors (bad JSON,
  /// unknown cmd, missing fields) become {"ok":false,"error":...}
  /// responses — they never throw and never kill the session.
  DispatchOutcome Dispatch(const std::string& line) const;

 private:
  PlanningService* service_;
  const DispatchDefaults defaults_;
  const ServeRole* role_;
};

}  // namespace gepc

#endif  // GEPC_SERVICE_DISPATCH_H_
