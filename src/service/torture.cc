#include "service/torture.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "data/generator.h"
#include "data/io.h"
#include "gepc/solver.h"
#include "service/journal.h"
#include "service/planning_service.h"

namespace gepc {

namespace {

namespace fs = std::filesystem;

Status WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Result<std::string> SerializeServiceState(const Instance& instance,
                                          const Plan& plan,
                                          uint64_t version) {
  std::ostringstream out;
  GEPC_RETURN_IF_ERROR(SaveInstance(instance, out));
  GEPC_RETURN_IF_ERROR(SavePlan(plan, out));
  out << "version " << version << "\n";
  return out.str();
}

std::vector<AtomicOp> GenerateTortureOps(IncrementalPlanner* planner,
                                         int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<AtomicOp> ops;
  ops.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Instance& instance = planner->instance();
    const int n = instance.num_users();
    const int m = instance.num_events();
    const EventId e = static_cast<EventId>(rng.UniformUint64(
        static_cast<uint64_t>(m)));
    const UserId u = static_cast<UserId>(rng.UniformUint64(
        static_cast<uint64_t>(n)));
    const Event& event = instance.event(e);
    AtomicOp op = AtomicOp::BudgetChange(u, instance.user(u).budget);
    // One op in eight is deliberately malformed — the service journals it
    // and rejects it, and a replay must reproduce exactly that.
    const bool invalid = rng.Bernoulli(0.125);
    switch (rng.UniformUint64(7)) {
      case 0:
        op = AtomicOp::UpperBoundChange(
            e, invalid ? -1
                       : static_cast<int>(rng.UniformInt(
                             std::max(1, event.lower_bound),
                             event.upper_bound + 3)));
        break;
      case 1:
        op = AtomicOp::LowerBoundChange(
            e, invalid ? event.upper_bound + 5
                       : static_cast<int>(
                             rng.UniformInt(0, event.upper_bound)));
        break;
      case 2: {
        const double shift = rng.UniformDouble(-2.0, 2.0);
        Interval time = event.time;
        time.start += shift;
        time.end += shift;
        if (invalid) time.end = time.start - 1.0;
        op = AtomicOp::TimeChange(e, time);
        break;
      }
      case 3: {
        Point location = event.location;
        location.x += rng.UniformDouble(-5.0, 5.0);
        location.y += rng.UniformDouble(-5.0, 5.0);
        op = AtomicOp::LocationChange(invalid ? m + 7 : e, location);
        break;
      }
      case 4:
        op = AtomicOp::BudgetChange(
            u, invalid ? -1.0
                       : instance.user(u).budget *
                             rng.UniformDouble(0.6, 1.4));
        break;
      case 5:
        op = AtomicOp::UtilityChange(
            invalid ? n + 3 : u, e,
            rng.Bernoulli(0.25) ? 0.0 : rng.UniformDouble());
        break;
      case 6: {
        Event fresh = event;
        fresh.location.x += rng.UniformDouble(-10.0, 10.0);
        fresh.location.y += rng.UniformDouble(-10.0, 10.0);
        fresh.lower_bound = static_cast<int>(rng.UniformInt(0, 2));
        fresh.upper_bound =
            fresh.lower_bound + static_cast<int>(rng.UniformInt(1, 6));
        std::vector<double> utilities(static_cast<size_t>(n), 0.0);
        for (double& mu : utilities) {
          if (rng.Bernoulli(0.3)) mu = rng.UniformDouble();
        }
        if (invalid) fresh.upper_bound = -2;
        op = AtomicOp::NewEvent(fresh, std::move(utilities));
        break;
      }
    }
    planner->Apply(op);  // accepted or rejected: both legal stream entries
    ops.push_back(std::move(op));
  }
  return ops;
}

Result<TortureReport> RunCrashRecoveryTorture(const TortureOptions& options) {
  if (options.workdir.empty()) {
    return Status::InvalidArgument("TortureOptions.workdir is required");
  }
  std::error_code ec;
  if (!fs::is_directory(options.workdir, ec)) {
    return Status::InvalidArgument("workdir is not a directory: " +
                                   options.workdir);
  }

  // 1. Seeded city + base plan.
  GeneratorConfig config;
  config.num_users = options.users;
  config.num_events = options.events;
  config.seed = options.seed;
  GEPC_ASSIGN_OR_RETURN(const Instance base, GenerateInstance(config));
  GEPC_ASSIGN_OR_RETURN(GepcResult solved, SolveGepc(base));
  const Plan base_plan = std::move(solved.plan);

  // 2. Reference run: journal + apply every generated op, recording the
  // committed byte boundary and the serialized state after each one.
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner generator_planner,
      IncrementalPlanner::Create(base, base_plan));
  const std::vector<AtomicOp> ops =
      GenerateTortureOps(&generator_planner, options.ops, options.seed);

  const std::string journal_path = options.workdir + "/torture.gops";
  fs::remove(journal_path, ec);
  GEPC_ASSIGN_OR_RETURN(Journal journal, Journal::Open(journal_path));
  GEPC_ASSIGN_OR_RETURN(IncrementalPlanner planner,
                        IncrementalPlanner::Create(base, base_plan));

  std::vector<int64_t> boundaries;  // journal bytes after op i committed
  std::vector<std::string> states;  // serialized state after i ops
  GEPC_ASSIGN_OR_RETURN(std::string initial,
                        SerializeServiceState(base, base_plan, 0));
  states.push_back(std::move(initial));
  for (const AtomicOp& op : ops) {
    GEPC_RETURN_IF_ERROR(journal.Append(op));
    boundaries.push_back(journal.bytes_written());
    planner.Apply(op);
    GEPC_ASSIGN_OR_RETURN(
        std::string state,
        SerializeServiceState(planner.instance(), planner.plan(),
                              states.size()));
    states.push_back(std::move(state));
  }

  TortureReport report;
  report.ops_journaled = ops.size();
  report.journal_bytes = journal.bytes_written();

  GEPC_ASSIGN_OR_RETURN(const std::string full, ReadBytes(journal_path));
  if (static_cast<int64_t>(full.size()) != report.journal_bytes) {
    return Status::Internal("journal size does not match bytes_written");
  }

  // 3. Crash offsets: every byte, or every record boundary +/- 1 byte.
  std::vector<int64_t> offsets;
  if (options.byte_level) {
    offsets.reserve(full.size() + 1);
    for (int64_t L = 0; L <= report.journal_bytes; ++L) offsets.push_back(L);
  } else {
    offsets = {0, 1, 5, 6, 7};  // around the header
    for (const int64_t b : boundaries) {
      offsets.push_back(b - 1);
      offsets.push_back(b);
      offsets.push_back(b + 1);
    }
    for (int64_t& L : offsets) {
      L = std::clamp<int64_t>(L, 0, report.journal_bytes);
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  }

  auto fail = [&report](std::string what) {
    if (report.failure.empty()) report.failure = std::move(what);
  };
  auto committed_ops = [&boundaries](int64_t L) {
    return static_cast<size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), L) -
        boundaries.begin());
  };

  const std::string crash_path = options.workdir + "/torture.crash.gops";
  for (const int64_t L : offsets) {
    GEPC_RETURN_IF_ERROR(WriteBytes(
        crash_path, full.substr(0, static_cast<size_t>(L))));
    const size_t c = committed_ops(L);
    auto replay = ReplayJournal(base, base_plan, crash_path);
    ++report.truncation_points;
    if (!replay.ok()) {
      fail("offset " + std::to_string(L) +
           ": replay failed: " + replay.status().ToString());
      break;
    }
    if (replay->torn_bytes_discarded > 0) ++report.torn_recoveries;
    if (replay->ops_applied + replay->ops_rejected != c) {
      fail("offset " + std::to_string(L) + ": replayed " +
           std::to_string(replay->ops_applied + replay->ops_rejected) +
           " ops, expected " + std::to_string(c));
      break;
    }
    auto state = SerializeServiceState(replay->instance, replay->plan,
                                       static_cast<uint64_t>(c));
    if (!state.ok()) return state.status();
    if (*state != states[c]) {
      fail("offset " + std::to_string(L) + ": recovered state diverges " +
           "from reference after " + std::to_string(c) + " ops");
      break;
    }
  }

  // 4. Full service recovery at record boundaries: boot, verify the served
  // snapshot, absorb one more op, prove the journal is still append-clean.
  if (options.service_recover && report.failure.empty()) {
    const std::string recover_path = options.workdir + "/torture.recover.gops";
    std::vector<int64_t> recover_offsets = {0};
    recover_offsets.insert(recover_offsets.end(), boundaries.begin(),
                           boundaries.end());
    for (const int64_t b : recover_offsets) {
      GEPC_RETURN_IF_ERROR(WriteBytes(
          recover_path, full.substr(0, static_cast<size_t>(b))));
      const size_t c = committed_ops(b);
      ServiceOptions service_options;
      service_options.journal_path = recover_path;
      auto service = PlanningService::Recover(base, base_plan,
                                              service_options);
      if (!service.ok()) {
        fail("boundary " + std::to_string(b) +
             ": Recover failed: " + service.status().ToString());
        break;
      }
      ++report.service_recoveries;
      const auto snap = (*service)->snapshot();
      if (snap->version != c) {
        fail("boundary " + std::to_string(b) + ": recovered version " +
             std::to_string(snap->version) + ", expected " +
             std::to_string(c));
        break;
      }
      auto state =
          SerializeServiceState(*snap->instance, *snap->plan, snap->version);
      if (!state.ok()) return state.status();
      if (*state != states[c]) {
        fail("boundary " + std::to_string(b) +
             ": recovered service state diverges after " +
             std::to_string(c) + " ops");
        break;
      }
      // The recovered journal must accept appends: absorb one benign op.
      const AtomicOp extra =
          AtomicOp::BudgetChange(0, snap->instance->user(0).budget + 0.25);
      const ApplyOutcome outcome = (*service)->Apply(extra);
      (*service)->Shutdown();
      if (outcome.sequence != c + 1) {
        fail("boundary " + std::to_string(b) +
             ": post-recovery op got sequence " +
             std::to_string(outcome.sequence) + ", expected " +
             std::to_string(c + 1));
        break;
      }
      auto rescan = ScanJournalFile(recover_path);
      if (!rescan.ok()) {
        fail("boundary " + std::to_string(b) +
             ": journal unreadable after recovery: " +
             rescan.status().ToString());
        break;
      }
      if (rescan->ops.size() != c + 1 || rescan->torn_bytes != 0) {
        fail("boundary " + std::to_string(b) +
             ": journal has " + std::to_string(rescan->ops.size()) +
             " ops / " + std::to_string(rescan->torn_bytes) +
             " torn bytes after recovery, expected " +
             std::to_string(c + 1) + " / 0");
        break;
      }
    }
  }

  report.passed = report.failure.empty();
  return report;
}

}  // namespace gepc
