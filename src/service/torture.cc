#include "service/torture.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "data/generator.h"
#include "data/io.h"
#include "gepc/solver.h"
#include "service/journal.h"
#include "service/planning_service.h"
#include "service/recovery.h"

namespace gepc {

namespace {

namespace fs = std::filesystem;

Status WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Result<std::string> SerializeServiceState(const Instance& instance,
                                          const Plan& plan,
                                          uint64_t version) {
  std::ostringstream out;
  GEPC_RETURN_IF_ERROR(SaveInstance(instance, out));
  GEPC_RETURN_IF_ERROR(SavePlan(plan, out));
  out << "version " << version << "\n";
  return out.str();
}

std::vector<AtomicOp> GenerateTortureOps(IncrementalPlanner* planner,
                                         int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<AtomicOp> ops;
  ops.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Instance& instance = planner->instance();
    const int n = instance.num_users();
    const int m = instance.num_events();
    const EventId e = static_cast<EventId>(rng.UniformUint64(
        static_cast<uint64_t>(m)));
    const UserId u = static_cast<UserId>(rng.UniformUint64(
        static_cast<uint64_t>(n)));
    const Event& event = instance.event(e);
    AtomicOp op = AtomicOp::BudgetChange(u, instance.user(u).budget);
    // One op in eight is deliberately malformed — the service journals it
    // and rejects it, and a replay must reproduce exactly that.
    const bool invalid = rng.Bernoulli(0.125);
    switch (rng.UniformUint64(7)) {
      case 0:
        op = AtomicOp::UpperBoundChange(
            e, invalid ? -1
                       : static_cast<int>(rng.UniformInt(
                             std::max(1, event.lower_bound),
                             event.upper_bound + 3)));
        break;
      case 1:
        op = AtomicOp::LowerBoundChange(
            e, invalid ? event.upper_bound + 5
                       : static_cast<int>(
                             rng.UniformInt(0, event.upper_bound)));
        break;
      case 2: {
        const double shift = rng.UniformDouble(-2.0, 2.0);
        Interval time = event.time;
        time.start += shift;
        time.end += shift;
        if (invalid) time.end = time.start - 1.0;
        op = AtomicOp::TimeChange(e, time);
        break;
      }
      case 3: {
        Point location = event.location;
        location.x += rng.UniformDouble(-5.0, 5.0);
        location.y += rng.UniformDouble(-5.0, 5.0);
        op = AtomicOp::LocationChange(invalid ? m + 7 : e, location);
        break;
      }
      case 4:
        op = AtomicOp::BudgetChange(
            u, invalid ? -1.0
                       : instance.user(u).budget *
                             rng.UniformDouble(0.6, 1.4));
        break;
      case 5:
        op = AtomicOp::UtilityChange(
            invalid ? n + 3 : u, e,
            rng.Bernoulli(0.25) ? 0.0 : rng.UniformDouble());
        break;
      case 6: {
        Event fresh = event;
        fresh.location.x += rng.UniformDouble(-10.0, 10.0);
        fresh.location.y += rng.UniformDouble(-10.0, 10.0);
        fresh.lower_bound = static_cast<int>(rng.UniformInt(0, 2));
        fresh.upper_bound =
            fresh.lower_bound + static_cast<int>(rng.UniformInt(1, 6));
        std::vector<double> utilities(static_cast<size_t>(n), 0.0);
        for (double& mu : utilities) {
          if (rng.Bernoulli(0.3)) mu = rng.UniformDouble();
        }
        if (invalid) fresh.upper_bound = -2;
        op = AtomicOp::NewEvent(fresh, std::move(utilities));
        break;
      }
    }
    planner->Apply(op);  // accepted or rejected: both legal stream entries
    ops.push_back(std::move(op));
  }
  return ops;
}

Result<TortureReport> RunCrashRecoveryTorture(const TortureOptions& options) {
  if (options.workdir.empty()) {
    return Status::InvalidArgument("TortureOptions.workdir is required");
  }
  std::error_code ec;
  if (!fs::is_directory(options.workdir, ec)) {
    return Status::InvalidArgument("workdir is not a directory: " +
                                   options.workdir);
  }

  // 1. Seeded city + base plan.
  GeneratorConfig config;
  config.num_users = options.users;
  config.num_events = options.events;
  config.seed = options.seed;
  GEPC_ASSIGN_OR_RETURN(const Instance base, GenerateInstance(config));
  GEPC_ASSIGN_OR_RETURN(GepcResult solved, SolveGepc(base));
  const Plan base_plan = std::move(solved.plan);

  // 2. Reference run: journal + apply every generated op, recording the
  // committed byte boundary and the serialized state after each one.
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner generator_planner,
      IncrementalPlanner::Create(base, base_plan));
  const std::vector<AtomicOp> ops =
      GenerateTortureOps(&generator_planner, options.ops, options.seed);

  const std::string journal_path = options.workdir + "/torture.gops";
  fs::remove(journal_path, ec);
  GEPC_ASSIGN_OR_RETURN(Journal journal, Journal::Open(journal_path));
  GEPC_ASSIGN_OR_RETURN(IncrementalPlanner planner,
                        IncrementalPlanner::Create(base, base_plan));

  std::vector<int64_t> boundaries;  // journal bytes after op i committed
  std::vector<std::string> states;  // serialized state after i ops
  GEPC_ASSIGN_OR_RETURN(std::string initial,
                        SerializeServiceState(base, base_plan, 0));
  states.push_back(std::move(initial));
  for (const AtomicOp& op : ops) {
    GEPC_RETURN_IF_ERROR(journal.Append(op));
    boundaries.push_back(journal.bytes_written());
    planner.Apply(op);
    GEPC_ASSIGN_OR_RETURN(
        std::string state,
        SerializeServiceState(planner.instance(), planner.plan(),
                              states.size()));
    states.push_back(std::move(state));
  }

  TortureReport report;
  report.ops_journaled = ops.size();
  report.journal_bytes = journal.bytes_written();

  GEPC_ASSIGN_OR_RETURN(const std::string full, ReadBytes(journal_path));
  if (static_cast<int64_t>(full.size()) != report.journal_bytes) {
    return Status::Internal("journal size does not match bytes_written");
  }

  // 3. Crash offsets: every byte, or every record boundary +/- 1 byte.
  std::vector<int64_t> offsets;
  if (options.byte_level) {
    offsets.reserve(full.size() + 1);
    for (int64_t L = 0; L <= report.journal_bytes; ++L) offsets.push_back(L);
  } else {
    offsets = {0, 1, 5, 6, 7};  // around the header
    for (const int64_t b : boundaries) {
      offsets.push_back(b - 1);
      offsets.push_back(b);
      offsets.push_back(b + 1);
    }
    for (int64_t& L : offsets) {
      L = std::clamp<int64_t>(L, 0, report.journal_bytes);
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  }

  auto fail = [&report](std::string what) {
    if (report.failure.empty()) report.failure = std::move(what);
  };
  auto committed_ops = [&boundaries](int64_t L) {
    return static_cast<size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), L) -
        boundaries.begin());
  };

  const std::string crash_path = options.workdir + "/torture.crash.gops";
  for (const int64_t L : offsets) {
    GEPC_RETURN_IF_ERROR(WriteBytes(
        crash_path, full.substr(0, static_cast<size_t>(L))));
    const size_t c = committed_ops(L);
    auto replay = ReplayJournal(base, base_plan, crash_path);
    ++report.truncation_points;
    if (!replay.ok()) {
      fail("offset " + std::to_string(L) +
           ": replay failed: " + replay.status().ToString());
      break;
    }
    if (replay->torn_bytes_discarded > 0) ++report.torn_recoveries;
    if (replay->ops_applied + replay->ops_rejected != c) {
      fail("offset " + std::to_string(L) + ": replayed " +
           std::to_string(replay->ops_applied + replay->ops_rejected) +
           " ops, expected " + std::to_string(c));
      break;
    }
    auto state = SerializeServiceState(replay->instance, replay->plan,
                                       static_cast<uint64_t>(c));
    if (!state.ok()) return state.status();
    if (*state != states[c]) {
      fail("offset " + std::to_string(L) + ": recovered state diverges " +
           "from reference after " + std::to_string(c) + " ops");
      break;
    }
  }

  // 4. Full service recovery at record boundaries: boot, verify the served
  // snapshot, absorb one more op, prove the journal is still append-clean.
  if (options.service_recover && report.failure.empty()) {
    const std::string recover_path = options.workdir + "/torture.recover.gops";
    std::vector<int64_t> recover_offsets = {0};
    recover_offsets.insert(recover_offsets.end(), boundaries.begin(),
                           boundaries.end());
    for (const int64_t b : recover_offsets) {
      GEPC_RETURN_IF_ERROR(WriteBytes(
          recover_path, full.substr(0, static_cast<size_t>(b))));
      const size_t c = committed_ops(b);
      ServiceOptions service_options;
      service_options.journal_path = recover_path;
      auto service = PlanningService::Recover(base, base_plan,
                                              service_options);
      if (!service.ok()) {
        fail("boundary " + std::to_string(b) +
             ": Recover failed: " + service.status().ToString());
        break;
      }
      ++report.service_recoveries;
      const auto snap = (*service)->snapshot();
      if (snap->version != c) {
        fail("boundary " + std::to_string(b) + ": recovered version " +
             std::to_string(snap->version) + ", expected " +
             std::to_string(c));
        break;
      }
      auto state =
          SerializeServiceState(*snap->instance, *snap->plan, snap->version);
      if (!state.ok()) return state.status();
      if (*state != states[c]) {
        fail("boundary " + std::to_string(b) +
             ": recovered service state diverges after " +
             std::to_string(c) + " ops");
        break;
      }
      // The recovered journal must accept appends: absorb one benign op.
      const AtomicOp extra =
          AtomicOp::BudgetChange(0, snap->instance->user(0).budget + 0.25);
      const ApplyOutcome outcome = (*service)->Apply(extra);
      (*service)->Shutdown();
      if (outcome.sequence != c + 1) {
        fail("boundary " + std::to_string(b) +
             ": post-recovery op got sequence " +
             std::to_string(outcome.sequence) + ", expected " +
             std::to_string(c + 1));
        break;
      }
      auto rescan = ScanJournalFile(recover_path);
      if (!rescan.ok()) {
        fail("boundary " + std::to_string(b) +
             ": journal unreadable after recovery: " +
             rescan.status().ToString());
        break;
      }
      if (rescan->ops.size() != c + 1 || rescan->torn_bytes != 0) {
        fail("boundary " + std::to_string(b) +
             ": journal has " + std::to_string(rescan->ops.size()) +
             " ops / " + std::to_string(rescan->torn_bytes) +
             " torn bytes after recovery, expected " +
             std::to_string(c + 1) + " / 0");
        break;
      }
    }
  }

  // 5. Checkpoint + compaction torture: the same crash-at-every-offset
  // discipline, now with a GCKP1 checkpoint set next to the journal and
  // with the journal compacted through a checkpoint. The contract under
  // test: recovery always serializes byte-identically to the reference
  // state at max(checkpoint version, committed journal sequence) — no
  // committed op is ever lost, no torn checkpoint is ever trusted.
  if (options.checkpoint_every > 0 && report.failure.empty()) {
    const std::string ckpt_dir = options.workdir + "/torture_ckpt";
    fs::remove_all(ckpt_dir, ec);
    fs::create_directories(ckpt_dir, ec);
    if (ec) {
      return Status::Unavailable("cannot create checkpoint dir: " + ckpt_dir);
    }

    // Re-run the op stream and publish a checkpoint every N applied ops,
    // exactly where the live service's auto-trigger would.
    std::vector<uint64_t> versions;
    {
      GEPC_ASSIGN_OR_RETURN(IncrementalPlanner ckpt_planner,
                            IncrementalPlanner::Create(base, base_plan));
      for (size_t i = 0; i < ops.size(); ++i) {
        ckpt_planner.Apply(ops[i]);
        const uint64_t version = i + 1;
        if (version % static_cast<uint64_t>(options.checkpoint_every) == 0) {
          GEPC_ASSIGN_OR_RETURN(
              std::string path,
              WriteCheckpoint(ckpt_dir, ckpt_planner.instance(),
                              ckpt_planner.plan(), version));
          (void)path;
          versions.push_back(version);
        }
      }
    }
    if (versions.empty()) {
      return Status::InvalidArgument(
          "checkpoint_every exceeds the op count: no checkpoint published");
    }
    report.checkpoints_published = versions.size();
    const uint64_t newest = versions.back();
    const uint64_t oldest = versions.front();

    // Asserts one recovery against the reference states; returns false
    // (and records the failure) on the first divergence.
    auto check_recovery = [&](const std::string& journal,
                              const std::string& dir, uint64_t expected,
                              const std::string& what) {
      auto recovered = RecoverServiceState(base, base_plan, journal, dir);
      if (!recovered.ok()) {
        fail(what + ": recovery failed: " + recovered.status().ToString());
        return false;
      }
      if (!recovered->used_checkpoint ||
          recovered->checkpoint_version != newest) {
        ++report.checkpoint_fallbacks;
      }
      if (recovered->version != expected) {
        fail(what + ": recovered version " +
             std::to_string(recovered->version) + ", expected " +
             std::to_string(expected));
        return false;
      }
      auto state = SerializeServiceState(recovered->instance, recovered->plan,
                                         recovered->version);
      if (!state.ok()) {
        fail(what + ": serialize failed: " + state.status().ToString());
        return false;
      }
      if (*state != states[static_cast<size_t>(expected)]) {
        fail(what + ": recovered state diverges from reference at version " +
             std::to_string(expected));
        return false;
      }
      return true;
    };

    // 5a. Journal truncations again, now with checkpoints present: the
    // newest checkpoint bridges any journal prefix, so the recovered
    // version is max(newest, committed ops in the prefix).
    for (const int64_t L : offsets) {
      GEPC_RETURN_IF_ERROR(
          WriteBytes(crash_path, full.substr(0, static_cast<size_t>(L))));
      const uint64_t expected =
          std::max<uint64_t>(newest, committed_ops(L));
      if (!check_recovery(crash_path, ckpt_dir, expected,
                          "ckpt journal offset " + std::to_string(L))) {
        break;
      }
    }

    // 5b. Truncate the NEWEST checkpoint file at every byte offset (a
    // torn temp that somehow reached the final name, bit-rot truncation —
    // the worst case). The full journal is present, so recovery must land
    // on the final state every time, falling back to an older checkpoint
    // or a plain full replay. A final-name checkpoint is never torn in
    // reality (publication renames a fully-fsynced temp), which is exactly
    // why recovery may never trust one that is.
    if (report.failure.empty()) {
      const std::string newest_name = CheckpointFileName(newest);
      GEPC_ASSIGN_OR_RETURN(const std::string ckpt_bytes,
                            ReadBytes(ckpt_dir + "/" + newest_name));
      const std::string crash_dir = options.workdir + "/torture_ckpt_crash";
      fs::remove_all(crash_dir, ec);
      fs::create_directories(crash_dir, ec);
      if (ec) {
        return Status::Unavailable("cannot create dir: " + crash_dir);
      }
      for (const uint64_t version : versions) {
        if (version == newest) continue;
        const std::string name = CheckpointFileName(version);
        fs::copy_file(ckpt_dir + "/" + name, crash_dir + "/" + name,
                      fs::copy_options::overwrite_existing, ec);
        if (ec) return Status::Unavailable("cannot copy checkpoint " + name);
      }
      const size_t header_len = ckpt_bytes.find('\n') + 1;
      std::vector<size_t> cuts;
      if (options.byte_level) {
        for (size_t k = 0; k <= ckpt_bytes.size(); ++k) cuts.push_back(k);
      } else {
        // The header and every 31st body byte, plus the section seams.
        for (size_t k = 0; k <= header_len + 1; ++k) cuts.push_back(k);
        for (size_t k = header_len; k < ckpt_bytes.size(); k += 31) {
          cuts.push_back(k);
        }
        cuts.push_back(ckpt_bytes.size() - 1);
        cuts.push_back(ckpt_bytes.size());
      }
      const uint64_t final_version = ops.size();
      for (const size_t k : cuts) {
        GEPC_RETURN_IF_ERROR(WriteBytes(crash_dir + "/" + newest_name,
                                        ckpt_bytes.substr(0, k)));
        ++report.checkpoint_truncation_points;
        if (!check_recovery(journal_path, crash_dir,
                            std::max<uint64_t>(final_version, newest),
                            "ckpt truncated at " + std::to_string(k))) {
          break;
        }
      }
    }

    // 5c. Compact the journal through the OLDEST checkpoint, then truncate
    // the rotated journal at every offset. Rows now carry base + i; a
    // prefix that loses even the header must still recover through the
    // newest checkpoint with zero committed-op loss.
    const std::string rotated_path = options.workdir + "/torture.rotated.gops";
    if (report.failure.empty()) {
      GEPC_RETURN_IF_ERROR(WriteBytes(rotated_path, full));
      {
        GEPC_ASSIGN_OR_RETURN(Journal rotated, Journal::Open(rotated_path));
        GEPC_RETURN_IF_ERROR(rotated.Compact(oldest));
      }
      GEPC_ASSIGN_OR_RETURN(const std::string rotated_bytes,
                            ReadBytes(rotated_path));
      const size_t header_len = rotated_bytes.find('\n') + 1;
      std::vector<size_t> row_ends;  // byte offset after row i's newline
      for (size_t p = header_len; p < rotated_bytes.size();) {
        const size_t nl = rotated_bytes.find('\n', p);
        if (nl == std::string::npos) break;
        row_ends.push_back(nl + 1);
        p = nl + 1;
      }
      std::vector<size_t> cuts;
      if (options.byte_level) {
        for (size_t k = 0; k <= rotated_bytes.size(); ++k) cuts.push_back(k);
      } else {
        for (size_t k = 0; k <= header_len + 1; ++k) cuts.push_back(k);
        for (const size_t b : row_ends) {
          cuts.push_back(b - 1);
          cuts.push_back(b);
          cuts.push_back(std::min(b + 1, rotated_bytes.size()));
        }
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      }
      auto rotated_expected = [&](size_t k) {
        if (k < header_len) return newest;  // torn header: checkpoint only
        const uint64_t rows = static_cast<uint64_t>(
            std::upper_bound(row_ends.begin(), row_ends.end(), k) -
            row_ends.begin());
        return std::max<uint64_t>(newest, oldest + rows);
      };
      const std::string rotated_crash =
          options.workdir + "/torture.rotated.crash.gops";
      for (const size_t k : cuts) {
        GEPC_RETURN_IF_ERROR(
            WriteBytes(rotated_crash, rotated_bytes.substr(0, k)));
        ++report.rotated_truncation_points;
        if (!check_recovery(rotated_crash, ckpt_dir, rotated_expected(k),
                            "rotated journal offset " + std::to_string(k))) {
          break;
        }
      }

      // 5d. Full service boots on the rotated crash images at row
      // boundaries: Recover must serve the right state, rebase the journal
      // when the checkpoint outruns it, and keep accepting appends with
      // row i still carrying sequence base + i.
      if (options.service_recover && report.failure.empty()) {
        std::vector<size_t> boots = {header_len};
        boots.insert(boots.end(), row_ends.begin(), row_ends.end());
        for (const size_t b : boots) {
          GEPC_RETURN_IF_ERROR(
              WriteBytes(rotated_crash, rotated_bytes.substr(0, b)));
          const uint64_t expected = rotated_expected(b);
          ServiceOptions service_options;
          service_options.journal_path = rotated_crash;
          service_options.checkpoint_dir = ckpt_dir;
          auto service =
              PlanningService::Recover(base, base_plan, service_options);
          if (!service.ok()) {
            fail("rotated boundary " + std::to_string(b) +
                 ": Recover failed: " + service.status().ToString());
            break;
          }
          ++report.service_recoveries;
          const auto snap = (*service)->snapshot();
          auto state = SerializeServiceState(*snap->instance, *snap->plan,
                                             snap->version);
          if (!state.ok()) return state.status();
          if (snap->version != expected ||
              *state != states[static_cast<size_t>(expected)]) {
            fail("rotated boundary " + std::to_string(b) +
                 ": recovered service at version " +
                 std::to_string(snap->version) + ", expected " +
                 std::to_string(expected));
            break;
          }
          const AtomicOp extra = AtomicOp::BudgetChange(
              0, snap->instance->user(0).budget + 0.25);
          const ApplyOutcome outcome = (*service)->Apply(extra);
          (*service)->Shutdown();
          if (outcome.sequence != expected + 1) {
            fail("rotated boundary " + std::to_string(b) +
                 ": post-recovery op got sequence " +
                 std::to_string(outcome.sequence) + ", expected " +
                 std::to_string(expected + 1));
            break;
          }
          auto rescan = ScanJournalFile(rotated_crash);
          if (!rescan.ok()) {
            fail("rotated boundary " + std::to_string(b) +
                 ": journal unreadable after recovery: " +
                 rescan.status().ToString());
            break;
          }
          if (rescan->base_sequence + rescan->ops.size() != expected + 1 ||
              rescan->torn_bytes != 0) {
            fail("rotated boundary " + std::to_string(b) + ": journal at " +
                 std::to_string(rescan->base_sequence) + "+" +
                 std::to_string(rescan->ops.size()) + " ops / " +
                 std::to_string(rescan->torn_bytes) +
                 " torn bytes after recovery, expected " +
                 std::to_string(expected + 1) + " / 0");
            break;
          }
        }
      }
    }
  }

  report.passed = report.failure.empty();
  return report;
}

}  // namespace gepc
