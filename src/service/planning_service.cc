#include "service/planning_service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "ckpt/checkpoint.h"
#include "common/logging.h"
#include "common/memory_tracker.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/recovery.h"

namespace gepc {

namespace {

ApplyOutcome ShutdownOutcome() {
  ApplyOutcome outcome;
  outcome.applied = false;
  outcome.error = "service is shut down";
  return outcome;
}

bool FileHasContent(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) &&
         std::filesystem::file_size(path, ec) > 0;
}

Status EnsureCheckpointDir(const std::string& dir) {
  if (dir.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create checkpoint dir " + dir + ": " +
                               ec.message());
  }
  return Status::OK();
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PlanningService::PlanningService(IncrementalPlanner planner,
                                 ServiceOptions options,
                                 std::optional<Journal> journal,
                                 uint64_t base_sequence,
                                 RecoveryInfo recovery)
    : options_([&options] {
        if (options.snapshot_every < 1) options.snapshot_every = 1;
        if (options.checkpoint_retain < 1) options.checkpoint_retain = 1;
        return options;
      }()),
      planner_(std::move(planner)),
      journal_(std::move(journal)),
      sequence_(base_sequence),
      recovery_(recovery),
      queue_(options_.queue_capacity) {
  journal_bytes_.store(journal_ ? journal_->bytes_written() : 0,
                       std::memory_order_relaxed);
  journal_base_sequence_.store(journal_ ? journal_->base_sequence() : 0,
                               std::memory_order_relaxed);
  committed_sequence_.store(base_sequence, std::memory_order_release);
  if (recovery_.from_checkpoint) {
    // The checkpoint that booted us is on disk and current as of
    // recovery_.checkpoint_version; surface it so the age gauge does not
    // pretend no checkpoint exists until the next publication.
    last_checkpoint_version_.store(recovery_.checkpoint_version,
                                   std::memory_order_relaxed);
  }
  if (options_.rebalance_shards > 1) {
    // Built before the writer starts, then confined to the writer thread.
    tracker_.emplace(planner_.instance(), options_.rebalance_shards);
    SyncTrackerStats();
  }
  PublishSnapshot();
  writer_ = std::thread(&PlanningService::WriterLoop, this);
}

Result<std::unique_ptr<PlanningService>> PlanningService::Create(
    Instance instance, Plan plan, ServiceOptions options) {
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner planner,
      IncrementalPlanner::Create(std::move(instance), std::move(plan)));
  GEPC_RETURN_IF_ERROR(EnsureCheckpointDir(options.checkpoint_dir));
  std::optional<Journal> journal;
  if (!options.journal_path.empty()) {
    if (FileHasContent(options.journal_path)) {
      return Status::FailedPrecondition(
          "journal " + options.journal_path +
          " already has operations; use Recover (or remove the file)");
    }
    GEPC_ASSIGN_OR_RETURN(Journal opened, Journal::Open(options.journal_path));
    journal = std::move(opened);
  }
  return std::unique_ptr<PlanningService>(new PlanningService(
      std::move(planner), std::move(options), std::move(journal),
      /*base_sequence=*/0, RecoveryInfo{}));
}

Result<std::unique_ptr<PlanningService>> PlanningService::Recover(
    Instance base_instance, Plan base_plan, ServiceOptions options) {
  if (options.journal_path.empty()) {
    return Status::InvalidArgument("Recover needs options.journal_path");
  }
  GEPC_RETURN_IF_ERROR(EnsureCheckpointDir(options.checkpoint_dir));
  Timer timer;
  GEPC_ASSIGN_OR_RETURN(
      RecoveredState recovered,
      RecoverServiceState(std::move(base_instance), std::move(base_plan),
                          options.journal_path, options.checkpoint_dir));
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner planner,
      IncrementalPlanner::Create(std::move(recovered.instance),
                                 std::move(recovered.plan)));
  // The journal was already scanned once; Open reuses that scan. A journal
  // that never existed (checkpoint-only boot) starts at the recovered
  // version so row i keeps carrying sequence base + i.
  GEPC_ASSIGN_OR_RETURN(
      Journal journal,
      Journal::Open(options.journal_path, &recovered.scan,
                    /*base_if_new=*/recovered.version));
  if (recovered.journal_needs_rebase) {
    // The checkpoint is newer than the journal's last committed row (the
    // crash tore the journal tail after the checkpoint was published):
    // rebase the journal to the recovered version so future appends align.
    GEPC_RETURN_IF_ERROR(journal.Compact(recovered.version));
  }
  RecoveryInfo info;
  info.from_checkpoint = recovered.used_checkpoint;
  info.checkpoint_version = recovered.checkpoint_version;
  info.ops_replayed = recovered.ops_replayed + recovered.ops_rejected;
  info.recovery_ms = timer.ElapsedMillis();
  static const auto recoveries = obs::Registry::Global().GetCounter(
      "gepc_service_recoveries_total", "service boots through Recover");
  static const auto ckpt_recoveries = obs::Registry::Global().GetCounter(
      "gepc_service_recoveries_from_checkpoint_total",
      "recoveries bootstrapped by a checkpoint");
  recoveries->Increment();
  if (recovered.used_checkpoint) ckpt_recoveries->Increment();
  GEPC_LOG(Info) << "recovered to sequence " << recovered.version
                 << (recovered.used_checkpoint
                         ? " from checkpoint " + recovered.checkpoint_path +
                               " + "
                         : " by full replay of ") +
                        std::to_string(info.ops_replayed) +
                        " journal ops ("
                 << recovered.ops_rejected << " rejected, "
                 << recovered.checkpoints_skipped << " checkpoints skipped)";
  return std::unique_ptr<PlanningService>(new PlanningService(
      std::move(planner), std::move(options), std::move(journal),
      /*base_sequence=*/recovered.version, info));
}

PlanningService::~PlanningService() { Shutdown(); }

std::future<ApplyOutcome> PlanningService::Submit(AtomicOp op) {
  PendingOp pending;
  pending.op = std::move(op);
  if (obs::Enabled()) pending.enqueue_time = std::chrono::steady_clock::now();
  std::future<ApplyOutcome> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tickets_issued_;
  }
  metrics_.RecordSubmitted();
  if (!queue_.Push(std::move(pending))) {
    // Closed: Push left `pending` untouched, so the promise is still ours.
    metrics_.RecordDropped();
    pending.promise.set_value(ShutdownOutcome());
    FinishOne();
  }
  return future;
}

Result<std::future<ApplyOutcome>> PlanningService::TrySubmit(AtomicOp op) {
  PendingOp pending;
  pending.op = std::move(op);
  if (obs::Enabled()) pending.enqueue_time = std::chrono::steady_clock::now();
  std::future<ApplyOutcome> future = pending.promise.get_future();
  bool full = false;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tickets_issued_;
  }
  if (queue_.TryPush(std::move(pending), &full)) {
    metrics_.RecordSubmitted();
    return future;
  }
  metrics_.RecordDropped();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tickets_finished_;
  }
  drain_cv_.notify_all();
  if (full) return Status::Unavailable("op queue is full");
  return Status::Unavailable("service is shut down");
}

ApplyOutcome PlanningService::Apply(AtomicOp op) {
  return Submit(std::move(op)).get();
}

std::future<RebuildOutcome> PlanningService::SubmitRebuild(
    ShardedGepcOptions options) {
  PendingOp pending;
  pending.is_rebuild = true;
  pending.rebuild_options = std::move(options);
  if (obs::Enabled()) pending.enqueue_time = std::chrono::steady_clock::now();
  std::future<RebuildOutcome> future = pending.rebuild_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tickets_issued_;
  }
  metrics_.RecordSubmitted();
  if (!queue_.Push(std::move(pending))) {
    metrics_.RecordDropped();
    RebuildOutcome outcome;
    outcome.error = "service is shut down";
    pending.rebuild_promise.set_value(std::move(outcome));
    FinishOne();
  }
  return future;
}

RebuildOutcome PlanningService::Rebuild(ShardedGepcOptions options) {
  return SubmitRebuild(std::move(options)).get();
}

std::future<CheckpointOutcome> PlanningService::SubmitCheckpoint() {
  PendingOp pending;
  pending.is_checkpoint = true;
  if (obs::Enabled()) pending.enqueue_time = std::chrono::steady_clock::now();
  std::future<CheckpointOutcome> future =
      pending.checkpoint_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tickets_issued_;
  }
  metrics_.RecordSubmitted();
  if (!queue_.Push(std::move(pending))) {
    metrics_.RecordDropped();
    CheckpointOutcome outcome;
    outcome.error = "service is shut down";
    pending.checkpoint_promise.set_value(std::move(outcome));
    FinishOne();
  }
  return future;
}

CheckpointOutcome PlanningService::Checkpoint() {
  return SubmitCheckpoint().get();
}

std::future<RebalanceOutcome> PlanningService::SubmitRebalance() {
  PendingOp pending;
  pending.is_rebalance = true;
  if (obs::Enabled()) pending.enqueue_time = std::chrono::steady_clock::now();
  std::future<RebalanceOutcome> future = pending.rebalance_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tickets_issued_;
  }
  metrics_.RecordSubmitted();
  if (!queue_.Push(std::move(pending))) {
    metrics_.RecordDropped();
    RebalanceOutcome outcome;
    outcome.error = "service is shut down";
    pending.rebalance_promise.set_value(std::move(outcome));
    FinishOne();
  }
  return future;
}

RebalanceOutcome PlanningService::Rebalance() {
  return SubmitRebalance().get();
}

void PlanningService::SetCommitHook(CommitHook hook) {
  std::lock_guard<std::mutex> lock(commit_hook_mu_);
  commit_hook_ = std::move(hook);
}

void PlanningService::SetRetentionPin(uint64_t pin) {
  retention_pin_.store(pin, std::memory_order_release);
}

uint64_t PlanningService::retention_pin() const {
  return retention_pin_.load(std::memory_order_acquire);
}

std::shared_ptr<const ServiceSnapshot> PlanningService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Result<Itinerary> PlanningService::QueryUser(UserId user) const {
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  if (user < 0 || user >= snap->instance->num_users()) {
    return Status::OutOfRange("user " + std::to_string(user) +
                              " outside [0, " +
                              std::to_string(snap->instance->num_users()) +
                              ")");
  }
  return BuildItinerary(*snap->instance, *snap->plan, user);
}

ServiceStats PlanningService::Stats() const {
  ServiceStats stats;
  metrics_.FillStats(&stats);
  stats.queue_depth = queue_.depth();
  stats.queue_high_water = queue_.high_water();
  stats.queue_capacity = queue_.capacity();
  stats.journal_bytes = journal_bytes_.load(std::memory_order_relaxed);
  stats.journal_base_sequence =
      journal_base_sequence_.load(std::memory_order_relaxed);
  stats.journal_compactions =
      journal_compactions_.load(std::memory_order_relaxed);
  stats.last_checkpoint_version =
      last_checkpoint_version_.load(std::memory_order_relaxed);
  stats.last_checkpoint_bytes =
      last_checkpoint_bytes_.load(std::memory_order_relaxed);
  const int64_t ckpt_at = last_checkpoint_at_ms_.load(std::memory_order_relaxed);
  stats.last_checkpoint_age_seconds =
      ckpt_at > 0 ? static_cast<double>(SteadyNowMs() - ckpt_at) / 1000.0
                  : -1.0;
  stats.recovered_from_checkpoint = recovery_.from_checkpoint;
  stats.recovery_checkpoint_version = recovery_.checkpoint_version;
  stats.recovery_ops_replayed = recovery_.ops_replayed;
  stats.recovery_ms = recovery_.recovery_ms;
  stats.rebalance_shards = tracker_ ? options_.rebalance_shards : 0;
  stats.shard_skew =
      static_cast<double>(shard_skew_milli_.load(std::memory_order_relaxed)) /
      1000.0;
  stats.shard_boundary_users =
      shard_boundary_users_.load(std::memory_order_relaxed);
  stats.rebalances = rebalances_.load(std::memory_order_relaxed);
  stats.rebalance_failures =
      rebalance_failures_.load(std::memory_order_relaxed);
  stats.shard_migrations = shard_migrations_.load(std::memory_order_relaxed);
  stats.shard_users_migrated =
      shard_users_migrated_.load(std::memory_order_relaxed);
  stats.shard_events_migrated =
      shard_events_migrated_.load(std::memory_order_relaxed);
  stats.shard_full_rebuilds =
      shard_full_rebuilds_.load(std::memory_order_relaxed);
  stats.last_rebalance_version =
      last_rebalance_version_.load(std::memory_order_relaxed);
  const std::shared_ptr<const ServiceSnapshot> snap = snapshot();
  stats.snapshot_version = snap->version;
  stats.total_utility = snap->total_utility;
  stats.total_assignments = snap->total_assignments;
  stats.events_below_lower_bound = snap->events_below_lower_bound;
  stats.heap_bytes = MemoryTracker::CurrentBytes();
  stats.peak_heap_bytes = MemoryTracker::PeakBytes();
  stats.rss_bytes = MemoryTracker::CurrentRssBytes();
  return stats;
}

void PlanningService::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  const uint64_t target = tickets_issued_;
  drain_cv_.wait(lock, [&] { return tickets_finished_ >= target; });
}

void PlanningService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_release);
    queue_.Close();
    if (writer_.joinable()) writer_.join();
  });
}

void PlanningService::WriterLoop() {
  PendingOp pending;
  while (queue_.Pop(&pending)) {
    if (pending.enqueue_time != std::chrono::steady_clock::time_point{}) {
      metrics_.RecordQueueWait(std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() -
                                   pending.enqueue_time)
                                   .count());
    }
    if (pending.is_checkpoint) {
      ApplyCheckpoint(&pending);
    } else if (pending.is_rebuild) {
      ApplyRebuild(&pending);
    } else if (pending.is_rebalance) {
      ApplyRebalance(&pending);
    } else {
      ApplyOne(&pending);
    }
  }
  // Queue closed and drained: leave a final snapshot of the end state.
  PublishSnapshot();
}

void PlanningService::ApplyOne(PendingOp* pending) {
  GEPC_TRACE_SPAN("service.apply", "service");
  Timer timer;
  ApplyOutcome outcome;

  Status journaled = Status::OK();
  if (journal_) {
    journaled = journal_->Append(pending->op);
    // Transient append failures (the journal restored its tail, so the
    // file is intact) are retried with capped exponential backoff; anything
    // else — or exhausting the budget — rejects the op without applying it.
    int backoff_ms = options_.journal_backoff_initial_ms;
    for (int retry = 0; !journaled.ok() &&
                        journaled.code() == StatusCode::kUnavailable &&
                        retry < options_.journal_retry_limit;
         ++retry) {
      metrics_.RecordJournalRetry();
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      backoff_ms = std::min(backoff_ms * 2, options_.journal_backoff_max_ms);
      journaled = journal_->Append(pending->op);
    }
    journal_bytes_.store(journal_->bytes_written(),
                         std::memory_order_relaxed);
  }
  if (!journaled.ok()) {
    // If the op cannot be made durable it must not be applied, or a replay
    // would diverge from the served state.
    outcome.applied = false;
    outcome.error = "journal append failed: " + journaled.ToString();
    metrics_.RecordRejected(timer.ElapsedMillis());
  } else {
    const uint64_t sequence = ++sequence_;
    committed_sequence_.store(sequence, std::memory_order_release);
    // Commit point: the row's newline is on disk. Fan it out to followers
    // before applying, so replication latency never includes apply time.
    {
      std::lock_guard<std::mutex> lock(commit_hook_mu_);
      if (commit_hook_) commit_hook_(sequence, pending->op);
    }
    auto step = planner_.Apply(pending->op);
    const double elapsed_ms = timer.ElapsedMillis();
    outcome.sequence = sequence;
    if (step.ok()) {
      outcome.applied = true;
      outcome.negative_impact = step->negative_impact;
      outcome.total_utility = step->total_utility;
      outcome.events_below_lower_bound = step->events_below_lower_bound;
      outcome.added_by_topup = step->added_by_topup;
      metrics_.RecordApplied(elapsed_ms, step->negative_impact);
      if (tracker_) {
        // Route against the pre-migration partition (the cut that did the
        // work), fold the op into the live partition, then charge the cost.
        const std::vector<int> routed =
            tracker_->RouteOp(planner_.instance(), pending->op);
        const Status migrated =
            tracker_->ApplyMigration(planner_.instance(), pending->op);
        if (!migrated.ok()) {
          GEPC_LOG(Warning) << "shard migration failed (partition stale): "
                            << migrated.ToString();
        }
        tracker_->RecordOpCost(routed, elapsed_ms);
        SyncTrackerStats();
        ++ops_since_rebalance_check_;
        if (options_.rebalance_every > 0 &&
            ops_since_rebalance_check_ >=
                static_cast<uint64_t>(options_.rebalance_every)) {
          ops_since_rebalance_check_ = 0;
          if (tracker_->Skew() >= options_.rebalance_skew) {
            // Auto-trigger: like auto-checkpoints, failures only warn — the
            // op itself succeeded and the old partition is still valid.
            const RebalanceOutcome rebalanced = DoRebalance();
            if (!rebalanced.rebalanced) {
              GEPC_LOG(Warning)
                  << "auto rebalance failed: " << rebalanced.error;
            }
          }
        }
      }
    } else {
      outcome.applied = false;
      outcome.error = step.status().ToString();
      metrics_.RecordRejected(elapsed_ms);
    }
    ++applied_since_snapshot_;
    if (applied_since_snapshot_ >=
            static_cast<uint64_t>(options_.snapshot_every) ||
        queue_.depth() == 0) {
      PublishSnapshot();
    }
    ++ops_since_checkpoint_;
    if (options_.checkpoint_every > 0 && !options_.checkpoint_dir.empty() &&
        ops_since_checkpoint_ >=
            static_cast<uint64_t>(options_.checkpoint_every)) {
      // Auto-trigger: failures are surfaced via metrics and the log only —
      // the op itself succeeded and the journal still covers the state.
      const CheckpointOutcome checkpointed = DoCheckpoint();
      if (!checkpointed.published) {
        GEPC_LOG(Warning) << "auto checkpoint failed: " << checkpointed.error;
      }
    }
  }

  // Publish-before-resolve: whoever waits on the future (or on Drain) sees
  // a snapshot that already includes this operation.
  pending->promise.set_value(std::move(outcome));
  FinishOne();
}

void PlanningService::ApplyRebuild(PendingOp* pending) {
  GEPC_TRACE_SPAN("service.rebuild", "service");
  Timer timer;
  RebuildOutcome outcome;
  // Deliberately not journaled: the journal is the log of EBSN changes,
  // and replaying it reconstructs a consistent served state without the
  // rebuild (see SubmitRebuild's contract).
  auto solved = SolveSharded(planner_.instance(), pending->rebuild_options,
                             &outcome.stats);
  if (!solved.ok()) {
    outcome.error = solved.status().ToString();
    metrics_.RecordRejected(timer.ElapsedMillis());
  } else {
    outcome.total_utility = solved->total_utility;
    outcome.events_below_lower_bound = solved->events_below_lower_bound;
    outcome.negative_impact = NegativeImpact(planner_.plan(), solved->plan);
    auto fresh = IncrementalPlanner::Create(planner_.instance(),
                                            std::move(solved->plan));
    if (!fresh.ok()) {
      // SolveSharded's plan is always consistent with its instance; treat
      // a mismatch as a rejected request rather than tearing down.
      outcome.error = fresh.status().ToString();
      metrics_.RecordRejected(timer.ElapsedMillis());
    } else {
      planner_ = *std::move(fresh);
      outcome.rebuilt = true;
      metrics_.RecordApplied(timer.ElapsedMillis(), outcome.negative_impact);
      PublishSnapshot();
    }
  }
  pending->rebuild_promise.set_value(std::move(outcome));
  FinishOne();
}

void PlanningService::ApplyCheckpoint(PendingOp* pending) {
  GEPC_TRACE_SPAN("service.checkpoint", "service");
  pending->checkpoint_promise.set_value(DoCheckpoint());
  FinishOne();
}

void PlanningService::ApplyRebalance(PendingOp* pending) {
  GEPC_TRACE_SPAN("service.rebalance", "service");
  pending->rebalance_promise.set_value(DoRebalance());
  FinishOne();
}

RebalanceOutcome PlanningService::DoRebalance() {
  RebalanceOutcome outcome;
  if (!tracker_) {
    outcome.error =
        "rebalance tracker disabled (options.rebalance_shards <= 1)";
    rebalance_failures_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  }
  outcome.sequence = sequence_;
  // Like rebuilds, deliberately not journaled: the partition is derived
  // state and replaying the op journal reconstructs a valid served state
  // without it.
  auto rebalanced = tracker_->Rebalance(planner_.instance());
  if (!rebalanced.ok()) {
    outcome.error = rebalanced.status().ToString();
    rebalance_failures_.fetch_add(1, std::memory_order_relaxed);
    SyncTrackerStats();
    return outcome;
  }
  outcome.rebalanced = true;
  outcome.report = *rebalanced;
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  last_rebalance_version_.store(sequence_, std::memory_order_relaxed);
  SyncTrackerStats();
  return outcome;
}

void PlanningService::SyncTrackerStats() {
  if (!tracker_) return;
  const ShardTrackerStats& ts = tracker_->stats();
  shard_migrations_.store(ts.migrations, std::memory_order_relaxed);
  shard_users_migrated_.store(ts.users_reclassified,
                              std::memory_order_relaxed);
  shard_events_migrated_.store(ts.events_moved, std::memory_order_relaxed);
  shard_full_rebuilds_.store(ts.full_rebuilds, std::memory_order_relaxed);
  shard_boundary_users_.store(
      static_cast<uint64_t>(tracker_->partition().boundary_users.size()),
      std::memory_order_relaxed);
  shard_skew_milli_.store(static_cast<int64_t>(tracker_->Skew() * 1000.0),
                          std::memory_order_relaxed);
}

CheckpointOutcome PlanningService::DoCheckpoint() {
  CheckpointOutcome outcome;
  outcome.version = sequence_;
  if (options_.checkpoint_dir.empty()) {
    outcome.error = "no checkpoint_dir configured";
    metrics_.RecordCheckpointFailure();
    return outcome;
  }
  // Publication is atomic (temp -> fsync -> rename) and the journal is
  // untouched until it lands, so a crash or failure anywhere in here leaves
  // the previous checkpoint set + full journal — recovery is unaffected.
  auto written = WriteCheckpoint(options_.checkpoint_dir, planner_.instance(),
                                 planner_.plan(), sequence_);
  if (!written.ok()) {
    outcome.error = written.status().ToString();
    metrics_.RecordCheckpointFailure();
    return outcome;
  }
  outcome.published = true;
  outcome.path = *written;
  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(*written, ec);
    outcome.bytes = ec ? 0 : static_cast<int64_t>(size);
  }
  ops_since_checkpoint_ = 0;
  metrics_.RecordCheckpointPublished();
  last_checkpoint_version_.store(sequence_, std::memory_order_relaxed);
  last_checkpoint_bytes_.store(outcome.bytes, std::memory_order_relaxed);
  last_checkpoint_at_ms_.store(SteadyNowMs(), std::memory_order_relaxed);

  // Retention pinning (docs/replication.md): a registered follower's sync
  // floor caps both pruning and compaction so the checkpoint + journal
  // prefix it still needs outlive this publication.
  const uint64_t pin = retention_pin_.load(std::memory_order_acquire);
  auto survivors = PruneCheckpoints(options_.checkpoint_dir,
                                    options_.checkpoint_retain, pin);
  if (!survivors.ok()) {
    GEPC_LOG(Warning) << "checkpoint prune failed: "
                      << survivors.status().ToString();
    return outcome;  // published; pruning/compaction are best-effort
  }
  if (journal_ && !survivors->empty()) {
    // Compact through the OLDEST retained checkpoint so every survivor can
    // still bridge from its version to the journal tail — if the newest
    // file rots, recovery falls back one generation without data loss.
    // Clamped to the retention pin: rows past a follower's floor survive
    // even when no checkpoint anchors there.
    const uint64_t through = std::min(survivors->back().version, pin);
    const Status compacted = journal_->Compact(through);
    if (compacted.ok()) {
      outcome.compacted = true;
      journal_bytes_.store(journal_->bytes_written(),
                           std::memory_order_relaxed);
      journal_base_sequence_.store(journal_->base_sequence(),
                                   std::memory_order_relaxed);
      journal_compactions_.store(journal_->compactions(),
                                 std::memory_order_relaxed);
    } else {
      GEPC_LOG(Warning) << "journal compaction failed (journal intact): "
                        << compacted.ToString();
    }
  }
  return outcome;
}

void PlanningService::PublishSnapshot() {
  std::shared_ptr<const ServiceSnapshot> fresh =
      MakeServiceSnapshot(planner_.instance(), planner_.plan(), sequence_);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
  }
  metrics_.RecordSnapshotPublished();
  applied_since_snapshot_ = 0;
}

void PlanningService::FinishOne() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tickets_finished_;
  }
  drain_cv_.notify_all();
}

}  // namespace gepc
