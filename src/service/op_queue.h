#ifndef GEPC_SERVICE_OP_QUEUE_H_
#define GEPC_SERVICE_OP_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "fault/fault.h"

namespace gepc {

/// Bounded multi-producer single-consumer queue: the hand-off between the
/// PlanningService's front-end threads (producers) and its single writer
/// thread (consumer). Blocking semantics match a production ingest path:
/// producers either wait for room (`Push`) or get immediate backpressure
/// (`TryPush`); the consumer drains remaining items after `Close` so no
/// accepted operation is ever dropped.
///
/// Tracks the depth high-water mark — the service exposes it as a
/// saturation signal ("how close did we come to blocking organizers?").
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item untouched) iff the
  /// queue was closed.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    Enqueue(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false (item untouched) if the queue is full
  /// or closed; `*full` distinguishes the two when non-null. The
  /// `queue.push` failure point simulates overflow: when armed and firing,
  /// the push reports backpressure exactly as if the queue were full.
  bool TryPush(T&& item, bool* full = nullptr) {
    if (!fault::Inject("queue.push").ok()) {
      if (full != nullptr) *full = true;
      return false;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (full != nullptr) *full = !closed_ && items_.size() >= capacity_;
    if (closed_ || items_.size() >= capacity_) return false;
    Enqueue(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns false only when the
  /// queue is closed *and* fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Rejects all future pushes; pending items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

 private:
  void Enqueue(T&& item) {
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace gepc

#endif  // GEPC_SERVICE_OP_QUEUE_H_
