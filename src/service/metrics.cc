#include "service/metrics.h"

namespace gepc {

std::string RenderServiceStatsText(const ServiceStats& stats) {
  std::string out;
  obs::AppendCounterText("gepc_service_ops_submitted_total",
                         "operations accepted into the queue",
                         stats.ops_submitted, &out);
  obs::AppendCounterText("gepc_service_ops_applied_total",
                         "operations journaled and applied", stats.ops_applied,
                         &out);
  obs::AppendCounterText("gepc_service_ops_rejected_total",
                         "operations that failed validation",
                         stats.ops_rejected, &out);
  obs::AppendCounterText("gepc_service_ops_dropped_total",
                         "operations dropped by shutdown or backpressure",
                         stats.ops_dropped, &out);
  obs::AppendCounterText("gepc_service_journal_retries_total",
                         "transient journal-append retries",
                         stats.journal_retries, &out);
  obs::AppendCounterText("gepc_service_snapshots_published_total",
                         "snapshots published", stats.snapshots_published,
                         &out);
  obs::AppendCounterText("gepc_service_checkpoints_published_total",
                         "durable checkpoints published",
                         stats.checkpoints_published, &out);
  obs::AppendCounterText("gepc_service_checkpoint_failures_total",
                         "checkpoint publications that failed",
                         stats.checkpoint_failures, &out);
  obs::AppendCounterText("gepc_service_journal_compactions_total",
                         "journal compactions after checkpoints",
                         stats.journal_compactions, &out);
  obs::AppendGaugeText("gepc_service_negative_impact_total",
                       "summed dif over applied operations",
                       static_cast<double>(stats.negative_impact_total), &out);
  obs::AppendGaugeText("gepc_service_queue_depth", "operations waiting",
                       static_cast<double>(stats.queue_depth), &out);
  obs::AppendGaugeText("gepc_service_queue_high_water",
                       "maximum queue depth observed",
                       static_cast<double>(stats.queue_high_water), &out);
  obs::AppendGaugeText("gepc_service_queue_capacity", "queue bound",
                       static_cast<double>(stats.queue_capacity), &out);
  obs::AppendGaugeText("gepc_service_journal_bytes", "journal file size",
                       static_cast<double>(stats.journal_bytes), &out);
  obs::AppendGaugeText("gepc_service_journal_base_sequence",
                       "ops compacted out of the journal",
                       static_cast<double>(stats.journal_base_sequence), &out);
  obs::AppendGaugeText("gepc_service_last_checkpoint_version",
                       "sequence captured by the newest checkpoint",
                       static_cast<double>(stats.last_checkpoint_version),
                       &out);
  obs::AppendGaugeText("gepc_service_last_checkpoint_bytes",
                       "size of the newest checkpoint file",
                       static_cast<double>(stats.last_checkpoint_bytes), &out);
  obs::AppendGaugeText("gepc_service_last_checkpoint_age_seconds",
                       "seconds since the newest checkpoint (-1 = never)",
                       stats.last_checkpoint_age_seconds, &out);
  obs::AppendGaugeText("gepc_service_recovered_from_checkpoint",
                       "1 when the last boot loaded a checkpoint",
                       stats.recovered_from_checkpoint ? 1.0 : 0.0, &out);
  obs::AppendGaugeText("gepc_service_recovery_ops_replayed",
                       "journal ops replayed at the last boot",
                       static_cast<double>(stats.recovery_ops_replayed), &out);
  obs::AppendGaugeText("gepc_service_recovery_ms",
                       "wall time of the last recovery resolution",
                       stats.recovery_ms, &out);
  obs::AppendGaugeText("gepc_service_snapshot_version",
                       "sequence of the latest snapshot",
                       static_cast<double>(stats.snapshot_version), &out);
  obs::AppendGaugeText("gepc_service_total_utility",
                       "total utility of the served plan", stats.total_utility,
                       &out);
  obs::AppendGaugeText("gepc_service_total_assignments",
                       "assignments in the served plan",
                       static_cast<double>(stats.total_assignments), &out);
  obs::AppendGaugeText("gepc_service_events_below_lower_bound",
                       "events short of xi_j in the served plan",
                       static_cast<double>(stats.events_below_lower_bound),
                       &out);
  obs::AppendGaugeText("gepc_service_rss_bytes", "resident set size",
                       static_cast<double>(stats.rss_bytes), &out);
  obs::AppendGaugeText("gepc_service_rebalance_shards",
                       "shards the live rebalance tracker maintains",
                       static_cast<double>(stats.rebalance_shards), &out);
  obs::AppendGaugeText("gepc_service_shard_skew",
                       "per-shard load skew, max over mean (0 = balanced)",
                       stats.shard_skew, &out);
  obs::AppendGaugeText("gepc_service_shard_boundary_users",
                       "boundary users in the live tracked partition",
                       static_cast<double>(stats.shard_boundary_users), &out);
  obs::AppendCounterText("gepc_service_rebalances_total",
                         "successful shard rebalances", stats.rebalances,
                         &out);
  obs::AppendCounterText("gepc_service_rebalance_failures_total",
                         "failed or aborted shard rebalances",
                         stats.rebalance_failures, &out);
  obs::AppendCounterText("gepc_service_shard_migrations_total",
                         "incremental shard migrations applied",
                         stats.shard_migrations, &out);
  obs::AppendCounterText("gepc_service_shard_users_migrated_total",
                         "user reclassifications during migrations",
                         stats.shard_users_migrated, &out);
  obs::AppendCounterText("gepc_service_shard_events_migrated_total",
                         "events re-homed during migrations",
                         stats.shard_events_migrated, &out);
  obs::AppendCounterText("gepc_service_shard_full_rebuilds_total",
                         "migrations degraded to a full partition rebuild",
                         stats.shard_full_rebuilds, &out);
  obs::AppendGaugeText("gepc_service_last_rebalance_version",
                       "sequence at the last successful rebalance",
                       static_cast<double>(stats.last_rebalance_version),
                       &out);
  obs::AppendHistogramText("gepc_service_apply_ms",
                           "apply latency (journal append included)",
                           stats.apply_ms, &out);
  obs::AppendSummaryText("gepc_service_apply_ms_summary",
                         "apply latency quantiles", stats.apply_ms, &out);
  obs::AppendHistogramText("gepc_service_queue_wait_ms",
                           "queue residency before the writer dequeues",
                           stats.queue_wait_ms, &out);
  obs::AppendSummaryText("gepc_service_queue_wait_ms_summary",
                         "queue-wait quantiles", stats.queue_wait_ms, &out);
  return out;
}

}  // namespace gepc
