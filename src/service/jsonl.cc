#include "service/jsonl.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace gepc {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonObject> ParseObject() {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    JsonObject object;
    SkipSpace();
    if (Consume('}')) return FinishAtEnd(std::move(object));
    while (true) {
      SkipSpace();
      std::string key;
      GEPC_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipSpace();
      JsonValue value;
      GEPC_RETURN_IF_ERROR(ParseValue(&value));
      object[key] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return FinishAtEnd(std::move(object));
      return Error("expected ',' or '}'");
    }
  }

 private:
  Result<JsonObject> FinishAtEnd(JsonObject object) {
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return object;
  }

  Status ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') {
      const std::string word = c == 't' ? "true" : "false";
      if (text_.compare(pos_, word.size(), word) != 0) {
        return Error("bad literal");
      }
      pos_ += word.size();
      out->type = JsonValue::Type::kBool;
      out->bool_value = c == 't';
      return Status::OK();
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return Error("bad literal");
      pos_ += 4;
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    if (c == '{' || c == '[') {
      return Error("nested objects/arrays are not supported");
    }
    // Number.
    char* end = nullptr;
    const double value = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return Error("bad value");
    pos_ = static_cast<size_t>(end - text_.c_str());
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          char* end = nullptr;
          const std::string hex = text_.substr(pos_, 4);
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return Error("bad \\u escape");
          pos_ += 4;
          // ASCII only; anything else is replaced (protocol keys/values
          // are plain identifiers and op specs).
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::InvalidArgument("JSON error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonObject> ParseJsonObject(const std::string& line) {
  Parser parser(line);
  return parser.ParseObject();
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) return shorter;
  }
  return buffer;
}

void JsonWriter::AppendKey(const std::string& key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += EscapeJson(key);
  body_ += "\":";
}

void JsonWriter::Add(const std::string& key, const std::string& value) {
  AppendKey(key);
  body_ += '"';
  body_ += EscapeJson(value);
  body_ += '"';
}

void JsonWriter::Add(const std::string& key, const char* value) {
  Add(key, std::string(value));
}

void JsonWriter::Add(const std::string& key, double value) {
  AppendKey(key);
  body_ += JsonNumber(value);
}

void JsonWriter::Add(const std::string& key, int64_t value) {
  AppendKey(key);
  body_ += std::to_string(value);
}

void JsonWriter::Add(const std::string& key, uint64_t value) {
  AppendKey(key);
  body_ += std::to_string(value);
}

void JsonWriter::Add(const std::string& key, int value) {
  AppendKey(key);
  body_ += std::to_string(value);
}

void JsonWriter::Add(const std::string& key, bool value) {
  AppendKey(key);
  body_ += value ? "true" : "false";
}

void JsonWriter::AddRaw(const std::string& key, const std::string& raw) {
  AppendKey(key);
  body_ += raw;
}

std::string JsonWriter::Finish() const { return "{" + body_ + "}"; }

}  // namespace gepc
