#ifndef GEPC_SERVICE_RECOVERY_H_
#define GEPC_SERVICE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"
#include "service/journal.h"

namespace gepc {

/// Everything `RecoverServiceState` worked out, packaged so the caller
/// (PlanningService::Recover, the torture harness, gepc_cli) can boot a
/// service without reading the journal a second time: `scan` is the one
/// ScanJournalFile result and feeds straight into Journal::Open.
struct RecoveredState {
  Instance instance;
  Plan plan;

  /// Sequence the recovered state corresponds to: every committed op
  /// 1..version is absorbed (max of checkpoint version and journal end).
  uint64_t version = 0;

  /// The single journal scan; pass `&scan` to Journal::Open as prior_scan.
  JournalScan scan;

  /// True when a checkpoint bootstrapped the state (the journal alone was
  /// not replayed from genesis).
  bool used_checkpoint = false;
  uint64_t checkpoint_version = 0;
  std::string checkpoint_path;

  /// Checkpoints passed over because they were corrupt, torn, or could not
  /// bridge to the journal tail (version < journal base).
  uint64_t checkpoints_skipped = 0;

  /// Journal rows replayed on top of the base (checkpoint or genesis) and
  /// rows that failed validation again, exactly as they did live.
  uint64_t ops_replayed = 0;
  uint64_t ops_rejected = 0;

  /// True when `version` is beyond the journal's last committed row — the
  /// checkpoint outlived the journal tail (crash between checkpoint publish
  /// and journal compaction, or a torn journal). The caller must rebase the
  /// journal (Journal::Compact(version)) before appending, so that row i
  /// keeps carrying sequence base + i.
  bool journal_needs_rebase = false;
};

/// Resolves the freshest recoverable state from a checkpoint directory plus
/// a GOPS1 journal, reading the journal exactly once:
///
///  1. Scan the journal tolerantly (a missing file is an empty journal; a
///     torn tail is discarded; interior corruption is a hard error).
///  2. Try checkpoints newest-first. A checkpoint older than the journal's
///     base cannot bridge to the tail and is skipped, as is any checkpoint
///     that fails GCKP1 validation (torn file, bit rot, dimension
///     mismatch). The first usable checkpoint wins: replay only the journal
///     rows past its version.
///  3. With no usable checkpoint and journal base 0, fall back to a full
///     replay from the genesis (base_instance, base_plan).
///  4. With no usable checkpoint and journal base > 0, fail loudly
///     (kFailedPrecondition): the compacted prefix is unrecoverable from
///     the journal alone, and booting from genesis would silently lose
///     committed operations.
///
/// `checkpoint_dir` may be empty (no checkpointing configured): recovery is
/// then a pure journal replay, with the same base-0 guard.
Result<RecoveredState> RecoverServiceState(Instance base_instance,
                                           Plan base_plan,
                                           const std::string& journal_path,
                                           const std::string& checkpoint_dir);

}  // namespace gepc

#endif  // GEPC_SERVICE_RECOVERY_H_
