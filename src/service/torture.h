#ifndef GEPC_SERVICE_TORTURE_H_
#define GEPC_SERVICE_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "iep/planner.h"

namespace gepc {

/// Configuration of the crash-recovery torture run (tools/gepc_torture and
/// torture_test). Everything is seed-driven; two runs with the same options
/// exercise the same crashes and must reach the same verdict.
struct TortureOptions {
  int users = 40;
  int events = 10;
  /// Length of the recorded op stream (a deterministic mix of every
  /// AtomicOp kind, including ops that fail validation).
  int ops = 60;
  uint64_t seed = 1;

  /// true: simulate a crash at EVERY byte offset of the journal — the
  /// exhaustive mode. false: crash at every record boundary plus one byte
  /// before and after it (the interesting torn/clean transitions).
  bool byte_level = false;

  /// Additionally boot a full PlanningService::Recover at every record
  /// boundary and verify it serves the right state, truncates the torn
  /// tail, and accepts one more op afterwards.
  bool service_recover = true;

  /// > 0: also run the checkpoint/compaction torture — publish a GCKP1
  /// checkpoint every N ops alongside the journal, then (a) re-run the
  /// journal truncations with the checkpoint set present, (b) truncate the
  /// newest checkpoint file at every byte offset against the full journal
  /// (recovery must fall back to an older checkpoint or a full replay,
  /// never lose a committed op), and (c) compact the journal through the
  /// oldest checkpoint and truncate the ROTATED journal at every offset.
  /// Recovery must always serialize byte-identically to the reference
  /// state at max(checkpoint version, committed journal sequence).
  int checkpoint_every = 0;
  /// Checkpoints kept on disk by the variant (older ones exist so fallback
  /// paths get exercised).
  int checkpoint_retain = 2;

  /// Scratch directory for the journal and its truncated copies. Must
  /// exist and be writable.
  std::string workdir;
};

/// What the torture run did and whether every recovery matched.
struct TortureReport {
  uint64_t ops_journaled = 0;
  int64_t journal_bytes = 0;
  int truncation_points = 0;  ///< crash offsets exercised
  int torn_recoveries = 0;    ///< offsets where a torn tail was discarded
  int service_recoveries = 0; ///< full PlanningService::Recover boots
  // Checkpoint variant (checkpoint_every > 0).
  uint64_t checkpoints_published = 0;
  int checkpoint_truncation_points = 0;  ///< offsets of the checkpoint file
  int rotated_truncation_points = 0;     ///< offsets of the compacted journal
  /// Recoveries that had to skip a torn/corrupt checkpoint and fall back.
  int checkpoint_fallbacks = 0;
  bool passed = false;
  /// Empty when passed; otherwise describes the first divergence.
  std::string failure;
};

/// Canonical byte serialization of a service state — GEPC1 instance +
/// GPLN1 plan + version line. Two states are "the same" iff these strings
/// are byte-identical; this is the equality the torture harness asserts.
Result<std::string> SerializeServiceState(const Instance& instance,
                                          const Plan& plan, uint64_t version);

/// Deterministically generates `count` atomic operations against the
/// evolving `planner` state (the planner advances as ops are generated, so
/// event ids stay meaningful as `new` ops grow the instance). Roughly one
/// op in eight is deliberately invalid, to exercise the journal's
/// journaled-but-rejected path.
std::vector<AtomicOp> GenerateTortureOps(IncrementalPlanner* planner,
                                         int count, uint64_t seed);

/// The torture harness:
///
///   1. generates an instance (seeded), solves it for the base plan,
///   2. runs the reference: journal + apply each generated op, recording
///      the journal byte offset and serialized state after every op,
///   3. for every chosen truncation offset L, copies the first L journal
///      bytes to a fresh file — the crash image — replays it with
///      ReplayJournal, and asserts the recovered (instance, plan, version)
///      serializes byte-identically to the reference state at the last
///      record boundary <= L,
///   4. at record boundaries (service_recover), additionally boots
///      PlanningService::Recover on the crash image, checks the served
///      snapshot, applies one more op, and re-scans the journal to prove
///      the recovered file is still append-clean.
///
/// Returns the report (passed/failure inside); a non-OK status means the
/// harness itself could not run (bad workdir, generator failure), not that
/// recovery diverged.
Result<TortureReport> RunCrashRecoveryTorture(const TortureOptions& options);

}  // namespace gepc

#endif  // GEPC_SERVICE_TORTURE_H_
