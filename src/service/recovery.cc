#include "service/recovery.h"

#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace gepc {

Result<RecoveredState> RecoverServiceState(Instance base_instance,
                                           Plan base_plan,
                                           const std::string& journal_path,
                                           const std::string& checkpoint_dir) {
  static const auto recovery_ms = obs::Registry::Global().GetHistogram(
      "gepc_recovery_resolve_ms",
      "checkpoint + journal-tail recovery resolution");
  obs::ScopedTimerMs timer(recovery_ms.get());

  RecoveredState state;

  // The one and only journal read. A journal that does not exist yet (first
  // boot, or compacted-to-nothing then lost) is an empty scan, not an
  // error: checkpoints can still carry the state.
  auto scanned = ScanJournalFile(journal_path);
  if (scanned.ok()) {
    state.scan = *std::move(scanned);
  } else if (scanned.status().code() == StatusCode::kNotFound) {
    state.scan = JournalScan{};
  } else {
    return scanned.status();
  }
  const uint64_t scan_end =
      state.scan.base_sequence + state.scan.ops.size();

  std::vector<CheckpointRef> refs;
  if (!checkpoint_dir.empty()) {
    GEPC_ASSIGN_OR_RETURN(refs, ListCheckpoints(checkpoint_dir));
  }

  // Newest checkpoint first; fall back through older ones on any defect.
  for (const CheckpointRef& ref : refs) {
    if (ref.version < state.scan.base_sequence) {
      // The journal no longer carries rows ref.version+1..base — this
      // checkpoint cannot bridge to the tail. Neither can any older one
      // (the list is version-sorted), but count them all as skipped so the
      // operator sees how deep the rot goes.
      GEPC_LOG(Warning) << "checkpoint " << ref.path << " (version "
                        << ref.version << ") predates journal base "
                        << state.scan.base_sequence << "; skipping";
      ++state.checkpoints_skipped;
      continue;
    }
    auto loaded = LoadCheckpoint(ref.path);
    if (!loaded.ok()) {
      GEPC_LOG(Warning) << "checkpoint " << ref.path
                        << " unusable: " << loaded.status().ToString();
      ++state.checkpoints_skipped;
      continue;
    }
    auto replayed = ReplayJournalTail(std::move(loaded->instance),
                                      std::move(loaded->plan), state.scan,
                                      ref.version);
    if (!replayed.ok()) {
      GEPC_LOG(Warning) << "checkpoint " << ref.path << " replay failed: "
                        << replayed.status().ToString();
      ++state.checkpoints_skipped;
      continue;
    }
    state.instance = std::move(replayed->instance);
    state.plan = std::move(replayed->plan);
    state.version = replayed->end_sequence;
    state.used_checkpoint = true;
    state.checkpoint_version = ref.version;
    state.checkpoint_path = ref.path;
    state.ops_replayed = replayed->ops_applied;
    state.ops_rejected = replayed->ops_rejected;
    state.journal_needs_rebase =
        state.scan.committed_bytes > 0 && state.version > scan_end;
    return state;
  }

  if (state.scan.base_sequence > 0) {
    // The journal was compacted on the promise that a checkpoint covers the
    // absorbed prefix; with every checkpoint gone or rotten, replaying from
    // genesis would silently drop committed operations 1..base. Refuse.
    return Status::FailedPrecondition(
        "journal " + journal_path + " is compacted through sequence " +
        std::to_string(state.scan.base_sequence) +
        " but no usable checkpoint covers it (" +
        std::to_string(state.checkpoints_skipped) +
        " skipped); recovery would lose committed operations");
  }

  GEPC_ASSIGN_OR_RETURN(
      ReplayReport replayed,
      ReplayJournalTail(std::move(base_instance), std::move(base_plan),
                        state.scan, /*from_sequence=*/0));
  state.instance = std::move(replayed.instance);
  state.plan = std::move(replayed.plan);
  state.version = replayed.end_sequence;
  state.ops_replayed = replayed.ops_applied;
  state.ops_rejected = replayed.ops_rejected;
  return state;
}

}  // namespace gepc
