#ifndef GEPC_SERVICE_METRICS_H_
#define GEPC_SERVICE_METRICS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace gepc {

/// One coherent read of the service's built-in counters, returned by
/// PlanningService::Stats() and rendered by `gepc_serve`'s `stats` command.
struct ServiceStats {
  // Operation counters.
  uint64_t ops_submitted = 0;  ///< accepted into the queue
  uint64_t ops_applied = 0;    ///< journaled and applied successfully
  uint64_t ops_rejected = 0;   ///< journaled but failed validation
  uint64_t ops_dropped = 0;    ///< submitted after shutdown / backpressure
  int64_t negative_impact_total = 0;  ///< summed dif over applied ops

  /// Journal appends that failed transiently and were retried (each retry
  /// attempt counts once, whether or not it eventually succeeded).
  uint64_t journal_retries = 0;

  // Queue saturation.
  uint64_t queue_depth = 0;
  uint64_t queue_high_water = 0;
  uint64_t queue_capacity = 0;

  // Apply-latency distribution (milliseconds, journal append included).
  // Scalars derived from `apply_ms`, kept for existing callers.
  double apply_ms_mean = 0.0;
  double apply_ms_p50 = 0.0;
  double apply_ms_p90 = 0.0;
  double apply_ms_p99 = 0.0;
  double apply_ms_max = 0.0;

  /// Full apply-latency distribution (exact quantiles while the reservoir
  /// holds every observation — see obs::HistogramSnapshot).
  obs::HistogramSnapshot apply_ms;
  /// Queue residency per op: enqueue (Submit) to dequeue by the writer.
  obs::HistogramSnapshot queue_wait_ms;

  // Journal / snapshot.
  int64_t journal_bytes = 0;
  uint64_t snapshots_published = 0;
  uint64_t snapshot_version = 0;

  // Checkpoint / compaction.
  uint64_t checkpoints_published = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t last_checkpoint_version = 0;  ///< 0 = none this run
  int64_t last_checkpoint_bytes = 0;
  double last_checkpoint_age_seconds = -1.0;  ///< -1 = never published
  uint64_t journal_compactions = 0;
  /// Ops absorbed by checkpoints and compacted out of the journal; the
  /// journal's first row carries sequence journal_base_sequence + 1.
  uint64_t journal_base_sequence = 0;

  // How the service last booted (set by Recover, zeros for Create).
  bool recovered_from_checkpoint = false;
  uint64_t recovery_checkpoint_version = 0;
  uint64_t recovery_ops_replayed = 0;
  double recovery_ms = 0.0;

  // Shard rebalancing (all zero when the tracker is disabled).
  int rebalance_shards = 0;            ///< shards the live tracker maintains
  double shard_skew = 0.0;             ///< load skew max/mean (0 = balanced)
  uint64_t shard_boundary_users = 0;   ///< boundary users in the live cut
  uint64_t rebalances = 0;             ///< successful rebalances
  uint64_t rebalance_failures = 0;     ///< failed/aborted rebalances
  uint64_t shard_migrations = 0;       ///< incremental migrations applied
  uint64_t shard_users_migrated = 0;   ///< user reclassifications
  uint64_t shard_events_migrated = 0;  ///< events re-homed by migrations
  uint64_t shard_full_rebuilds = 0;    ///< migrations degraded to rebuilds
  uint64_t last_rebalance_version = 0; ///< sequence at the last rebalance

  // Plan aggregates (from the latest snapshot).
  double total_utility = 0.0;
  int64_t total_assignments = 0;
  int events_below_lower_bound = 0;

  // Memory (MemoryTracker; heap counters are 0 without the alloc hooks).
  int64_t heap_bytes = 0;
  int64_t peak_heap_bytes = 0;
  int64_t rss_bytes = 0;
};

/// Counter sink shared by the service's producer threads and its writer
/// thread, built on the lock-free obs value types so a Record* call is a
/// handful of relaxed atomic ops. Instances are standalone (NOT in the
/// global obs::Registry): ServiceStats is per-service and a process may run
/// several services; the process-global registry carries the solver-phase
/// and journal metrics instead.
///
/// Latency histograms honor obs::SetEnabled(false) like every other
/// time-based instrument, so the apply_ms/queue_wait_ms fields read empty
/// when observability is off; the counters always record.
class ServiceMetrics {
 public:
  void RecordSubmitted() { submitted_.Increment(); }

  void RecordApplied(double apply_ms, int64_t negative_impact) {
    applied_.Increment();
    negative_impact_.Add(negative_impact);
    apply_ms_.Observe(apply_ms);
  }

  void RecordRejected(double apply_ms) {
    rejected_.Increment();
    apply_ms_.Observe(apply_ms);
  }

  void RecordDropped() { dropped_.Increment(); }

  void RecordJournalRetry() { journal_retries_.Increment(); }

  void RecordSnapshotPublished() { snapshots_.Increment(); }

  void RecordCheckpointPublished() { checkpoints_.Increment(); }

  void RecordCheckpointFailure() { checkpoint_failures_.Increment(); }

  void RecordQueueWait(double wait_ms) { queue_wait_ms_.Observe(wait_ms); }

  /// Fills the counter/latency fields of `stats` (the queue, journal and
  /// snapshot fields are owned by the service).
  void FillStats(ServiceStats* stats) const {
    stats->ops_submitted = submitted_.value();
    stats->ops_applied = applied_.value();
    stats->ops_rejected = rejected_.value();
    stats->ops_dropped = dropped_.value();
    stats->negative_impact_total = negative_impact_.value();
    stats->journal_retries = journal_retries_.value();
    stats->snapshots_published = snapshots_.value();
    stats->checkpoints_published = checkpoints_.value();
    stats->checkpoint_failures = checkpoint_failures_.value();
    stats->apply_ms = apply_ms_.Snapshot();
    stats->queue_wait_ms = queue_wait_ms_.Snapshot();
    stats->apply_ms_mean = stats->apply_ms.Mean();
    stats->apply_ms_p50 = stats->apply_ms.Quantile(0.50);
    stats->apply_ms_p90 = stats->apply_ms.Quantile(0.90);
    stats->apply_ms_p99 = stats->apply_ms.Quantile(0.99);
    stats->apply_ms_max = stats->apply_ms.max;
  }

 private:
  obs::Counter submitted_;
  obs::Counter applied_;
  obs::Counter rejected_;
  obs::Counter dropped_;
  obs::Counter journal_retries_;
  obs::Counter snapshots_;
  obs::Counter checkpoints_;
  obs::Counter checkpoint_failures_;
  obs::Gauge negative_impact_;
  obs::Histogram apply_ms_{obs::Histogram::DefaultLatencyBucketsMs()};
  obs::Histogram queue_wait_ms_{obs::Histogram::DefaultLatencyBucketsMs()};
};

/// Prometheus text exposition of one ServiceStats read (gepc_service_*
/// metrics). `gepc_serve` concatenates this with the global registry's
/// RenderPrometheusText() for its `metrics` command.
std::string RenderServiceStatsText(const ServiceStats& stats);

}  // namespace gepc

#endif  // GEPC_SERVICE_METRICS_H_
