#ifndef GEPC_SERVICE_METRICS_H_
#define GEPC_SERVICE_METRICS_H_

#include <cstdint>
#include <mutex>

#include "benchutil/stats.h"

namespace gepc {

/// One coherent read of the service's built-in counters, returned by
/// PlanningService::Stats() and rendered by `gepc_serve`'s `stats` command.
struct ServiceStats {
  // Operation counters.
  uint64_t ops_submitted = 0;  ///< accepted into the queue
  uint64_t ops_applied = 0;    ///< journaled and applied successfully
  uint64_t ops_rejected = 0;   ///< journaled but failed validation
  uint64_t ops_dropped = 0;    ///< submitted after shutdown / backpressure
  int64_t negative_impact_total = 0;  ///< summed dif over applied ops

  /// Journal appends that failed transiently and were retried (each retry
  /// attempt counts once, whether or not it eventually succeeded).
  uint64_t journal_retries = 0;

  // Queue saturation.
  uint64_t queue_depth = 0;
  uint64_t queue_high_water = 0;
  uint64_t queue_capacity = 0;

  // Apply-latency distribution (milliseconds, journal append included).
  double apply_ms_mean = 0.0;
  double apply_ms_p50 = 0.0;
  double apply_ms_p90 = 0.0;
  double apply_ms_p99 = 0.0;
  double apply_ms_max = 0.0;

  // Journal / snapshot.
  int64_t journal_bytes = 0;
  uint64_t snapshots_published = 0;
  uint64_t snapshot_version = 0;

  // Plan aggregates (from the latest snapshot).
  double total_utility = 0.0;
  int64_t total_assignments = 0;
  int events_below_lower_bound = 0;

  // Memory (MemoryTracker; heap counters are 0 without the alloc hooks).
  int64_t heap_bytes = 0;
  int64_t peak_heap_bytes = 0;
  int64_t rss_bytes = 0;
};

/// Thread-safe counter sink shared by the service's producer threads and
/// its writer thread. A plain mutex is enough: Record* calls are a few
/// nanoseconds and sit next to an Apply that costs microseconds.
class ServiceMetrics {
 public:
  void RecordSubmitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
  }

  void RecordApplied(double apply_ms, int64_t negative_impact) {
    std::lock_guard<std::mutex> lock(mu_);
    ++applied_;
    negative_impact_ += negative_impact;
    apply_ms_.Add(apply_ms);
  }

  void RecordRejected(double apply_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    apply_ms_.Add(apply_ms);
  }

  void RecordDropped() {
    std::lock_guard<std::mutex> lock(mu_);
    ++dropped_;
  }

  void RecordJournalRetry() {
    std::lock_guard<std::mutex> lock(mu_);
    ++journal_retries_;
  }

  void RecordSnapshotPublished() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snapshots_;
  }

  /// Fills the counter/latency fields of `stats` (the queue, journal and
  /// snapshot fields are owned by the service).
  void FillStats(ServiceStats* stats) const {
    std::lock_guard<std::mutex> lock(mu_);
    stats->ops_submitted = submitted_;
    stats->ops_applied = applied_;
    stats->ops_rejected = rejected_;
    stats->ops_dropped = dropped_;
    stats->negative_impact_total = negative_impact_;
    stats->journal_retries = journal_retries_;
    stats->snapshots_published = snapshots_;
    stats->apply_ms_mean = apply_ms_.mean();
    stats->apply_ms_p50 = apply_ms_.percentile(0.50);
    stats->apply_ms_p90 = apply_ms_.percentile(0.90);
    stats->apply_ms_p99 = apply_ms_.percentile(0.99);
    stats->apply_ms_max = apply_ms_.max();
  }

 private:
  mutable std::mutex mu_;
  uint64_t submitted_ = 0;
  uint64_t applied_ = 0;
  uint64_t rejected_ = 0;
  uint64_t dropped_ = 0;
  uint64_t journal_retries_ = 0;
  uint64_t snapshots_ = 0;
  int64_t negative_impact_ = 0;
  SampleStats apply_ms_;
};

}  // namespace gepc

#endif  // GEPC_SERVICE_METRICS_H_
