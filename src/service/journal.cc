#include "service/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "fault/fault.h"
#include "iep/trace.h"
#include "obs/metrics.h"

namespace gepc {

Result<JournalScan> ScanJournalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open journal: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  JournalScan scan;
  bool saw_header = false;
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) break;  // torn tail: newline never hit disk
    const std::string line = content.substr(pos, newline - pos);
    if (line.empty() || line[0] == '#') {
      // committed comment/blank row
    } else if (!saw_header) {
      if (line.rfind("GOPS1", 0) != 0) {
        return Status::InvalidArgument("journal " + path +
                                       ": expected GOPS1 header");
      }
      // `GOPS1 <base>` after a compaction; bare `GOPS1` means base 0.
      if (line.size() > 5) {
        const std::string base_text = line.substr(6);
        if (line[5] != ' ' || base_text.empty() ||
            base_text.find_first_not_of("0123456789") != std::string::npos) {
          return Status::InvalidArgument(
              "journal " + path + ": malformed GOPS1 header '" + line + "'");
        }
        scan.base_sequence = std::strtoull(base_text.c_str(), nullptr, 10);
      }
      saw_header = true;
    } else {
      auto op = ParseOpRow(line);
      if (!op.ok()) {
        // A complete line that does not parse is interior corruption, not a
        // crash artifact — refuse rather than replay a partial history.
        return Status::InvalidArgument(
            "journal " + path + " is corrupt at byte " + std::to_string(pos) +
            ": " + op.status().message());
      }
      scan.ops.push_back(*std::move(op));
    }
    pos = newline + 1;
    scan.committed_bytes = static_cast<int64_t>(pos);
  }
  scan.torn_bytes =
      static_cast<int64_t>(content.size()) - scan.committed_bytes;
  return scan;
}

namespace {

std::string JournalHeader(uint64_t base_sequence) {
  return base_sequence == 0 ? "GOPS1\n"
                            : "GOPS1 " + std::to_string(base_sequence) + "\n";
}

}  // namespace

Result<Journal> Journal::Open(const std::string& path,
                              const JournalScan* prior_scan,
                              uint64_t base_if_new) {
  uint64_t preexisting = 0;
  int64_t committed = 0;
  uint64_t base = base_if_new;
  std::error_code ec;
  std::optional<JournalScan> own_scan;
  const JournalScan* scan = prior_scan;
  if (scan == nullptr && std::filesystem::exists(path, ec)) {
    auto scanned = ScanJournalFile(path);
    if (!scanned.ok()) return scanned.status();
    own_scan = *std::move(scanned);
    scan = &*own_scan;
  }
  if (scan != nullptr) {
    preexisting = scan->ops.size();
    committed = scan->committed_bytes;
    if (committed > 0) base = scan->base_sequence;
    if (scan->torn_bytes > 0) {
      // Crash artifact: drop the torn tail so appends extend a well-formed
      // file. The discarded op was never applied (write-ahead ordering).
      std::error_code resize_ec;
      std::filesystem::resize_file(path, static_cast<uintmax_t>(committed),
                                   resize_ec);
      if (resize_ec) {
        return Status::Internal("cannot truncate torn journal tail: " + path +
                                ": " + resize_ec.message());
      }
      GEPC_LOG(Warning) << "journal " << path << ": discarded "
                        << scan->torn_bytes << " torn tail byte(s)";
    }
  }

  Journal journal;
  journal.path_ = path;
  journal.out_ = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*journal.out_) {
    return Status::NotFound("cannot open journal for appending: " + path);
  }
  if (committed == 0) {
    const std::string header = JournalHeader(base);
    *journal.out_ << header;
    journal.out_->flush();
    if (!*journal.out_) return Status::Internal("journal header write failed");
    committed = static_cast<int64_t>(header.size());
  }
  journal.bytes_written_ = committed;
  journal.preexisting_ops_ = preexisting;
  journal.base_sequence_ = base;
  return journal;
}

Status Journal::RestoreTail(int64_t size) {
  out_->close();
  std::error_code ec;
  std::filesystem::resize_file(path_, static_cast<uintmax_t>(size), ec);
  if (ec) {
    out_.reset();  // journal unusable: better closed than silently corrupt
    return Status::Internal("cannot restore journal tail: " + path_ + ": " +
                            ec.message());
  }
  out_ = std::make_unique<std::ofstream>(path_, std::ios::app);
  if (!*out_) {
    out_.reset();
    return Status::Internal("cannot reopen journal: " + path_);
  }
  return Status::OK();
}

Status Journal::Append(const AtomicOp& op) {
  static const auto append_ms = obs::Registry::Global().GetHistogram(
      "gepc_journal_append_ms", "journal append latency (serialize + flush)");
  obs::ScopedTimerMs append_timer(append_ms.get());
  if (out_ == nullptr || !*out_) {
    return Status::FailedPrecondition("journal is not open");
  }
  // Serialize first: a row either reaches the stream whole or not at all,
  // and its exact length is known for the bytes accounting.
  std::ostringstream buffer;
  GEPC_RETURN_IF_ERROR(SaveOp(op, buffer));
  const std::string row = buffer.str();

  // Fails before any byte reaches disk (transient IO error).
  GEPC_INJECT_FAULT("journal.append");

  int64_t torn_arg = -1;
  uint64_t torn_fire = 0;
  const Status torn =
      fault::InjectWithArg("journal.torn_tail", &torn_arg, &torn_fire);
  if (!torn.ok()) {
    // Simulated crash mid-write: a strict prefix of the row hits disk,
    // then the append "fails". Restore the committed tail so the journal
    // stays well-formed and the append is retryable.
    const size_t cut =
        torn_arg >= 0
            ? std::min(static_cast<size_t>(torn_arg), row.size() - 1)
            : torn_fire % row.size();
    out_->write(row.data(), static_cast<std::streamsize>(cut));
    out_->flush();
    GEPC_RETURN_IF_ERROR(RestoreTail(bytes_written_));
    return torn;
  }

  out_->write(row.data(), static_cast<std::streamsize>(row.size()));
  const Status flush_fault = fault::Inject("journal.flush");
  {
    static const auto flush_ms = obs::Registry::Global().GetHistogram(
        "gepc_journal_flush_ms", "journal stream flush latency");
    obs::ScopedTimerMs flush_timer(flush_ms.get());
    out_->flush();
  }
  if (!flush_fault.ok() || !*out_) {
    GEPC_RETURN_IF_ERROR(RestoreTail(bytes_written_));
    if (!flush_fault.ok()) return flush_fault;
    return Status::Unavailable("journal append failed: " + path_);
  }
  bytes_written_ += static_cast<int64_t>(row.size());
  return Status::OK();
}

Status Journal::Compact(uint64_t through_sequence) {
  if (out_ == nullptr || !*out_) {
    return Status::FailedPrecondition("journal is not open");
  }
  if (through_sequence <= base_sequence_) return Status::OK();

  // Injected abort happens before any filesystem mutation, so a firing
  // fault leaves the journal byte-identical (just uncompacted).
  GEPC_INJECT_FAULT("journal.rotate");

  static const auto compact_ms = obs::Registry::Global().GetHistogram(
      "gepc_journal_compact_ms", "journal compaction (rewrite + rename)");
  obs::ScopedTimerMs timer(compact_ms.get());

  // Re-read the committed file and locate the byte offset after the last
  // row being dropped. The live file has no torn tail (appends restore it).
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::NotFound("cannot reopen journal: " + path_);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  uint64_t dropped = 0;
  const uint64_t to_drop =
      through_sequence - base_sequence_;  // rows to cut (may exceed rows)
  size_t cut = 0;
  bool saw_header = false;
  size_t pos = 0;
  while (pos < content.size() && dropped < to_drop) {
    const size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) break;
    const std::string line = content.substr(pos, newline - pos);
    pos = newline + 1;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      saw_header = true;
    } else {
      ++dropped;
    }
    cut = pos;  // comments between dropped rows go with them
  }
  const uint64_t new_base = base_sequence_ + dropped < through_sequence
                                ? through_sequence  // rebase past the tail
                                : base_sequence_ + dropped;
  if (dropped < to_drop) cut = content.size();

  const std::string rotated = JournalHeader(new_base) + content.substr(cut);
  const std::string tmp_path = path_ + ".rotate.tmp";
  {
    std::ofstream tmp(tmp_path, std::ios::binary | std::ios::trunc);
    if (!tmp) {
      return Status::Unavailable("cannot open rotate temp: " + tmp_path);
    }
    tmp.write(rotated.data(), static_cast<std::streamsize>(rotated.size()));
    tmp.flush();
    if (!tmp) {
      std::error_code remove_ec;
      std::filesystem::remove(tmp_path, remove_ec);
      return Status::Unavailable("journal rotate write failed: " + tmp_path);
    }
  }
  {
    const int fd = ::open(tmp_path.c_str(), O_RDONLY);
    const int rc = fd >= 0 ? ::fsync(fd) : -1;
    if (fd >= 0) ::close(fd);
    if (rc != 0) {
      std::error_code remove_ec;
      std::filesystem::remove(tmp_path, remove_ec);
      return Status::Unavailable("journal rotate fsync failed: " + tmp_path);
    }
  }
  // Close the append stream before the rename so no buffered write can land
  // on the old inode, then atomically swap the rotated file in.
  out_->close();
  std::error_code rename_ec;
  std::filesystem::rename(tmp_path, path_, rename_ec);
  if (rename_ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp_path, remove_ec);
    // The old journal is still in place and intact; reopen and carry on.
    out_ = std::make_unique<std::ofstream>(path_, std::ios::app);
    if (!*out_) {
      out_.reset();
      return Status::Internal("cannot reopen journal after failed rotate: " +
                              path_);
    }
    return Status::Unavailable("journal rotate rename failed: " + path_ +
                               ": " + rename_ec.message());
  }
  out_ = std::make_unique<std::ofstream>(path_, std::ios::app);
  if (!*out_) {
    out_.reset();
    return Status::Internal("cannot reopen compacted journal: " + path_);
  }
  bytes_written_ = static_cast<int64_t>(rotated.size());
  preexisting_ops_ = preexisting_ops_ > dropped ? preexisting_ops_ - dropped
                                                : 0;
  base_sequence_ = new_base;
  ++compactions_;
  return Status::OK();
}

Result<ReplayReport> ReplayJournalTail(Instance base_instance, Plan base_plan,
                                       const JournalScan& scan,
                                       uint64_t from_sequence) {
  if (from_sequence < scan.base_sequence) {
    return Status::InvalidArgument(
        "cannot replay from sequence " + std::to_string(from_sequence) +
        ": journal is compacted through " +
        std::to_string(scan.base_sequence));
  }
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner planner,
      IncrementalPlanner::Create(std::move(base_instance),
                                 std::move(base_plan)));
  ReplayReport report;
  report.torn_bytes_discarded = scan.torn_bytes;
  report.committed_bytes = scan.committed_bytes;
  report.base_sequence = scan.base_sequence;
  const uint64_t skip = from_sequence - scan.base_sequence;
  for (size_t i = static_cast<size_t>(std::min<uint64_t>(skip,
                                                         scan.ops.size()));
       i < scan.ops.size(); ++i) {
    auto step = planner.Apply(scan.ops[i]);
    if (step.ok()) {
      ++report.ops_applied;
    } else {
      // The live service journaled this op before discovering it was
      // invalid; it must fail here too for the states to line up.
      ++report.ops_rejected;
    }
  }
  const uint64_t scan_end = scan.base_sequence + scan.ops.size();
  report.end_sequence = std::max(from_sequence, scan_end);
  report.instance = planner.instance();
  report.plan = planner.plan();
  report.total_utility = report.plan.TotalUtility(report.instance);
  return report;
}

Result<ReplayReport> ReplayJournal(Instance base_instance, Plan base_plan,
                                   const std::string& path) {
  GEPC_ASSIGN_OR_RETURN(JournalScan scan, ScanJournalFile(path));
  return ReplayJournalTail(std::move(base_instance), std::move(base_plan),
                           scan, scan.base_sequence);
}

}  // namespace gepc
