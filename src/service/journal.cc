#include "service/journal.h"

#include <filesystem>
#include <utility>

#include "iep/trace.h"

namespace gepc {

Result<Journal> Journal::Open(const std::string& path) {
  uint64_t preexisting = 0;
  int64_t existing_bytes = 0;
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    // Count the ops already journaled (also validates the header/rows, so
    // corruption surfaces at open time, not at replay time).
    std::ifstream in(path);
    if (in && in.peek() != std::ifstream::traits_type::eof()) {
      auto existing = LoadOps(in);
      if (!existing.ok()) {
        return Status::InvalidArgument("journal " + path + " is corrupt: " +
                                       existing.status().message());
      }
      preexisting = existing->size();
      existing_bytes =
          static_cast<int64_t>(std::filesystem::file_size(path, ec));
    }
  }

  Journal journal;
  journal.path_ = path;
  journal.out_ = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*journal.out_) {
    return Status::NotFound("cannot open journal for appending: " + path);
  }
  if (preexisting == 0 && existing_bytes == 0) {
    *journal.out_ << "GOPS1\n";
    journal.out_->flush();
    if (!*journal.out_) return Status::Internal("journal header write failed");
  }
  std::error_code size_ec;
  const auto size = std::filesystem::file_size(path, size_ec);
  journal.bytes_written_ =
      size_ec ? existing_bytes : static_cast<int64_t>(size);
  journal.preexisting_ops_ = preexisting;
  return journal;
}

Status Journal::Append(const AtomicOp& op) {
  if (out_ == nullptr || !*out_) {
    return Status::FailedPrecondition("journal is not open");
  }
  const auto before = out_->tellp();
  GEPC_RETURN_IF_ERROR(SaveOp(op, *out_));
  out_->flush();
  if (!*out_) return Status::Internal("journal append failed: " + path_);
  bytes_written_ += static_cast<int64_t>(out_->tellp() - before);
  return Status::OK();
}

Result<ReplayReport> ReplayJournal(Instance base_instance, Plan base_plan,
                                   const std::string& path) {
  GEPC_ASSIGN_OR_RETURN(const std::vector<AtomicOp> ops,
                        LoadOpsFromFile(path));
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner planner,
      IncrementalPlanner::Create(std::move(base_instance),
                                 std::move(base_plan)));
  ReplayReport report;
  for (const AtomicOp& op : ops) {
    auto step = planner.Apply(op);
    if (step.ok()) {
      ++report.ops_applied;
    } else {
      // The live service journaled this op before discovering it was
      // invalid; it must fail here too for the states to line up.
      ++report.ops_rejected;
    }
  }
  report.instance = planner.instance();
  report.plan = planner.plan();
  report.total_utility = report.plan.TotalUtility(report.instance);
  return report;
}

}  // namespace gepc
