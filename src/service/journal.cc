#include "service/journal.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "fault/fault.h"
#include "iep/trace.h"
#include "obs/metrics.h"

namespace gepc {

Result<JournalScan> ScanJournalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open journal: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  JournalScan scan;
  bool saw_header = false;
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) break;  // torn tail: newline never hit disk
    const std::string line = content.substr(pos, newline - pos);
    if (line.empty() || line[0] == '#') {
      // committed comment/blank row
    } else if (!saw_header) {
      if (line.rfind("GOPS1", 0) != 0) {
        return Status::InvalidArgument("journal " + path +
                                       ": expected GOPS1 header");
      }
      saw_header = true;
    } else {
      auto op = ParseOpRow(line);
      if (!op.ok()) {
        // A complete line that does not parse is interior corruption, not a
        // crash artifact — refuse rather than replay a partial history.
        return Status::InvalidArgument(
            "journal " + path + " is corrupt at byte " + std::to_string(pos) +
            ": " + op.status().message());
      }
      scan.ops.push_back(*std::move(op));
    }
    pos = newline + 1;
    scan.committed_bytes = static_cast<int64_t>(pos);
  }
  scan.torn_bytes =
      static_cast<int64_t>(content.size()) - scan.committed_bytes;
  return scan;
}

Result<Journal> Journal::Open(const std::string& path) {
  uint64_t preexisting = 0;
  int64_t committed = 0;
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    auto scan = ScanJournalFile(path);
    if (!scan.ok()) return scan.status();
    preexisting = scan->ops.size();
    committed = scan->committed_bytes;
    if (scan->torn_bytes > 0) {
      // Crash artifact: drop the torn tail so appends extend a well-formed
      // file. The discarded op was never applied (write-ahead ordering).
      std::error_code resize_ec;
      std::filesystem::resize_file(path, static_cast<uintmax_t>(committed),
                                   resize_ec);
      if (resize_ec) {
        return Status::Internal("cannot truncate torn journal tail: " + path +
                                ": " + resize_ec.message());
      }
      GEPC_LOG(Warning) << "journal " << path << ": discarded "
                        << scan->torn_bytes << " torn tail byte(s)";
    }
  }

  Journal journal;
  journal.path_ = path;
  journal.out_ = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*journal.out_) {
    return Status::NotFound("cannot open journal for appending: " + path);
  }
  if (committed == 0) {
    *journal.out_ << "GOPS1\n";
    journal.out_->flush();
    if (!*journal.out_) return Status::Internal("journal header write failed");
    committed = 6;  // strlen("GOPS1\n")
  }
  journal.bytes_written_ = committed;
  journal.preexisting_ops_ = preexisting;
  return journal;
}

Status Journal::RestoreTail(int64_t size) {
  out_->close();
  std::error_code ec;
  std::filesystem::resize_file(path_, static_cast<uintmax_t>(size), ec);
  if (ec) {
    out_.reset();  // journal unusable: better closed than silently corrupt
    return Status::Internal("cannot restore journal tail: " + path_ + ": " +
                            ec.message());
  }
  out_ = std::make_unique<std::ofstream>(path_, std::ios::app);
  if (!*out_) {
    out_.reset();
    return Status::Internal("cannot reopen journal: " + path_);
  }
  return Status::OK();
}

Status Journal::Append(const AtomicOp& op) {
  static const auto append_ms = obs::Registry::Global().GetHistogram(
      "gepc_journal_append_ms", "journal append latency (serialize + flush)");
  obs::ScopedTimerMs append_timer(append_ms.get());
  if (out_ == nullptr || !*out_) {
    return Status::FailedPrecondition("journal is not open");
  }
  // Serialize first: a row either reaches the stream whole or not at all,
  // and its exact length is known for the bytes accounting.
  std::ostringstream buffer;
  GEPC_RETURN_IF_ERROR(SaveOp(op, buffer));
  const std::string row = buffer.str();

  // Fails before any byte reaches disk (transient IO error).
  GEPC_INJECT_FAULT("journal.append");

  int64_t torn_arg = -1;
  uint64_t torn_fire = 0;
  const Status torn =
      fault::InjectWithArg("journal.torn_tail", &torn_arg, &torn_fire);
  if (!torn.ok()) {
    // Simulated crash mid-write: a strict prefix of the row hits disk,
    // then the append "fails". Restore the committed tail so the journal
    // stays well-formed and the append is retryable.
    const size_t cut =
        torn_arg >= 0
            ? std::min(static_cast<size_t>(torn_arg), row.size() - 1)
            : torn_fire % row.size();
    out_->write(row.data(), static_cast<std::streamsize>(cut));
    out_->flush();
    GEPC_RETURN_IF_ERROR(RestoreTail(bytes_written_));
    return torn;
  }

  out_->write(row.data(), static_cast<std::streamsize>(row.size()));
  const Status flush_fault = fault::Inject("journal.flush");
  {
    static const auto flush_ms = obs::Registry::Global().GetHistogram(
        "gepc_journal_flush_ms", "journal stream flush latency");
    obs::ScopedTimerMs flush_timer(flush_ms.get());
    out_->flush();
  }
  if (!flush_fault.ok() || !*out_) {
    GEPC_RETURN_IF_ERROR(RestoreTail(bytes_written_));
    if (!flush_fault.ok()) return flush_fault;
    return Status::Unavailable("journal append failed: " + path_);
  }
  bytes_written_ += static_cast<int64_t>(row.size());
  return Status::OK();
}

Result<ReplayReport> ReplayJournal(Instance base_instance, Plan base_plan,
                                   const std::string& path) {
  GEPC_ASSIGN_OR_RETURN(JournalScan scan, ScanJournalFile(path));
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner planner,
      IncrementalPlanner::Create(std::move(base_instance),
                                 std::move(base_plan)));
  ReplayReport report;
  report.torn_bytes_discarded = scan.torn_bytes;
  report.committed_bytes = scan.committed_bytes;
  for (const AtomicOp& op : scan.ops) {
    auto step = planner.Apply(op);
    if (step.ok()) {
      ++report.ops_applied;
    } else {
      // The live service journaled this op before discovering it was
      // invalid; it must fail here too for the states to line up.
      ++report.ops_rejected;
    }
  }
  report.instance = planner.instance();
  report.plan = planner.plan();
  report.total_utility = report.plan.TotalUtility(report.instance);
  return report;
}

}  // namespace gepc
