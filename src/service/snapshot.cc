#include "service/snapshot.h"

namespace gepc {

int CountEventsBelowLowerBound(const Instance& instance, const Plan& plan) {
  int below = 0;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (plan.attendance(j) < instance.event(j).lower_bound) ++below;
  }
  return below;
}

std::shared_ptr<const ServiceSnapshot> MakeServiceSnapshot(
    const Instance& instance, const Plan& plan, uint64_t version) {
  auto snapshot = std::make_shared<ServiceSnapshot>();
  snapshot->version = version;
  snapshot->instance = std::make_shared<const Instance>(instance);
  // The conflict graph is a lazily built cache behind a const accessor;
  // many reader threads share this instance, so force the build here on
  // the single writer thread (publishing the snapshot pointer gives the
  // happens-before edge) instead of letting readers race to initialize it.
  snapshot->instance->conflicts();
  snapshot->plan = std::make_shared<const Plan>(plan);
  snapshot->total_utility = plan.TotalUtility(instance);
  snapshot->total_assignments = plan.TotalAssignments();
  snapshot->events_below_lower_bound =
      CountEventsBelowLowerBound(instance, plan);
  return snapshot;
}

}  // namespace gepc
