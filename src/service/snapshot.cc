#include "service/snapshot.h"

namespace gepc {

int CountEventsBelowLowerBound(const Instance& instance, const Plan& plan) {
  int below = 0;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (plan.attendance(j) < instance.event(j).lower_bound) ++below;
  }
  return below;
}

std::shared_ptr<const ServiceSnapshot> MakeServiceSnapshot(
    const Instance& instance, const Plan& plan, uint64_t version) {
  auto snapshot = std::make_shared<ServiceSnapshot>();
  snapshot->version = version;
  snapshot->instance = std::make_shared<const Instance>(instance);
  snapshot->plan = std::make_shared<const Plan>(plan);
  snapshot->total_utility = plan.TotalUtility(instance);
  snapshot->total_assignments = plan.TotalAssignments();
  snapshot->events_below_lower_bound =
      CountEventsBelowLowerBound(instance, plan);
  return snapshot;
}

}  // namespace gepc
