#ifndef GEPC_SERVICE_JOURNAL_H_
#define GEPC_SERVICE_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"
#include "iep/planner.h"

namespace gepc {

/// Append-only operation journal in the GOPS1 trace format (iep/trace.h).
/// The service appends every *accepted* operation before applying it, so
/// `ReplayJournal(base, journal)` deterministically reconstructs the exact
/// service state after a crash — operations that fail validation are in the
/// journal too and fail identically on replay (Apply is a pure function of
/// the accumulated state).
class Journal {
 public:
  /// Opens `path` for appending. Writes the GOPS1 header iff the file is
  /// new or empty; an existing journal (recovery) is extended in place.
  static Result<Journal> Open(const std::string& path);

  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;

  /// Appends one op row and flushes, so a crash between append and apply
  /// loses at most the un-applied tail (replay simply re-applies it).
  Status Append(const AtomicOp& op);

  /// Bytes appended through this handle plus any pre-existing content.
  int64_t bytes_written() const { return bytes_written_; }

  /// Operations already in the file when it was opened (0 for a new file).
  uint64_t preexisting_ops() const { return preexisting_ops_; }

  const std::string& path() const { return path_; }

 private:
  Journal() = default;

  std::string path_;
  std::unique_ptr<std::ofstream> out_;  // unique_ptr keeps Journal movable
  int64_t bytes_written_ = 0;
  uint64_t preexisting_ops_ = 0;
};

/// Outcome of replaying a journal on top of a base (instance, plan).
struct ReplayReport {
  Instance instance;
  Plan plan;
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;  ///< journaled ops that failed validation again
  double total_utility = 0.0;
};

/// Replays every operation of the GOPS1 file at `path` against the base
/// state, skipping (and counting) the ones that fail validation — the same
/// accept/reject sequence the live service produced. Returns kNotFound if
/// the journal does not exist, kInvalidArgument if base plan/instance are
/// inconsistent or the journal is malformed.
Result<ReplayReport> ReplayJournal(Instance base_instance, Plan base_plan,
                                   const std::string& path);

}  // namespace gepc

#endif  // GEPC_SERVICE_JOURNAL_H_
