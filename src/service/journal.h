#ifndef GEPC_SERVICE_JOURNAL_H_
#define GEPC_SERVICE_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"
#include "iep/planner.h"

namespace gepc {

/// Crash-tolerant scan of a GOPS1 journal file. A journal record is
/// *committed* iff its terminating newline reached disk; a trailing chunk
/// without one — what a crash mid-append leaves behind — is a torn tail
/// and is discarded, never an error. A complete line that fails to parse
/// (bit rot, truncation in the middle of the file) IS an error: the data
/// before it cannot be trusted to be the full accepted-op history.
struct JournalScan {
  std::vector<AtomicOp> ops;
  /// Byte length of the committed prefix (header + complete rows). The
  /// file is safe to extend after truncating to this length.
  int64_t committed_bytes = 0;
  /// Trailing bytes after the committed prefix (0 = clean shutdown).
  int64_t torn_bytes = 0;
  /// Operations absorbed by a checkpoint and compacted away: the header is
  /// `GOPS1 <base>` after a compaction (`GOPS1` alone means base 0), and
  /// row i (1-based) of the file carries sequence base + i.
  uint64_t base_sequence = 0;
};

/// Scans `path` tolerantly (see JournalScan). An empty or header-torn file
/// yields 0 ops — the crash-before-first-commit case. Returns kNotFound if
/// the file cannot be opened, kInvalidArgument on interior corruption.
Result<JournalScan> ScanJournalFile(const std::string& path);

/// Append-only operation journal in the GOPS1 trace format (iep/trace.h).
/// The service appends every *accepted* operation before applying it, so
/// `ReplayJournal(base, journal)` deterministically reconstructs the exact
/// service state after a crash — operations that fail validation are in the
/// journal too and fail identically on replay (Apply is a pure function of
/// the accumulated state).
class Journal {
 public:
  /// Opens `path` for appending. Writes the GOPS1 header iff the file is
  /// new or empty; an existing journal (recovery) is extended in place
  /// after truncating away any torn tail a crash left behind.
  ///
  /// `prior_scan`, when non-null, must be a fresh ScanJournalFile result
  /// for `path`; Open then trusts it instead of re-reading the file, so a
  /// recovery that already scanned the journal pays for exactly one read.
  /// `base_if_new` is the base sequence written into the header of a new or
  /// empty file (a service booting from a checkpoint with no journal rows
  /// starts its journal at the checkpoint's version).
  static Result<Journal> Open(const std::string& path,
                              const JournalScan* prior_scan = nullptr,
                              uint64_t base_if_new = 0);

  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;

  /// Appends one op row and flushes, so a crash between append and apply
  /// loses at most the un-applied tail (replay simply re-applies it).
  /// On an IO failure — real or injected (journal.append / journal.flush /
  /// journal.torn_tail) — the file is restored to its pre-append length, so
  /// a failed append never corrupts the committed tail; kUnavailable means
  /// the append is safe to retry.
  Status Append(const AtomicOp& op);

  /// Compaction: drops every row with sequence <= through_sequence and
  /// rewrites the header as `GOPS1 <through_sequence>`, so the journal only
  /// carries the tail a recovery still needs after the checkpoint at
  /// `through_sequence`. Atomic (write temp -> flush -> fsync -> rename):
  /// the committed-iff-newline contract survives a crash at any point —
  /// the old journal stays intact until the rename lands. A
  /// `through_sequence` beyond the last row rebases the journal to an
  /// empty tail (recovery found a checkpoint newer than the journal).
  /// No-op when through_sequence <= base_sequence(). The `journal.rotate`
  /// failure point aborts before any filesystem mutation.
  Status Compact(uint64_t through_sequence);

  /// Bytes appended through this handle plus any pre-existing content.
  int64_t bytes_written() const { return bytes_written_; }

  /// Operations already in the file when it was opened (0 for a new file).
  uint64_t preexisting_ops() const { return preexisting_ops_; }

  /// Sequence of the last op compacted away; row i carries base + i.
  uint64_t base_sequence() const { return base_sequence_; }

  /// Journal rewrites (Compact) that landed through this handle.
  uint64_t compactions() const { return compactions_; }

  const std::string& path() const { return path_; }

 private:
  Journal() = default;

  /// After a failed/torn write: truncate the file back to `size` and
  /// reopen the append stream. Leaves the journal usable on success.
  Status RestoreTail(int64_t size);

  std::string path_;
  std::unique_ptr<std::ofstream> out_;  // unique_ptr keeps Journal movable
  int64_t bytes_written_ = 0;
  uint64_t preexisting_ops_ = 0;
  uint64_t base_sequence_ = 0;
  uint64_t compactions_ = 0;
};

/// Outcome of replaying a journal on top of a base (instance, plan).
struct ReplayReport {
  Instance instance;
  Plan plan;
  uint64_t ops_applied = 0;
  uint64_t ops_rejected = 0;  ///< journaled ops that failed validation again
  double total_utility = 0.0;
  /// Torn-tail bytes the crash-tolerant scan discarded (0 = clean file).
  int64_t torn_bytes_discarded = 0;
  /// Length of the committed journal prefix that was replayed.
  int64_t committed_bytes = 0;
  /// Journal base (ops compacted away before the first row).
  uint64_t base_sequence = 0;
  /// Sequence after the last replayed row: the version the recovered
  /// state corresponds to (>= from_sequence for tail replays).
  uint64_t end_sequence = 0;
};

/// Replays the tail of an already-scanned journal on top of a state that
/// has absorbed ops 1..from_sequence (normally a checkpoint): rows with
/// sequence <= from_sequence are skipped, the rest apply in order. A
/// from_sequence beyond the scan's last row replays nothing and reports
/// end_sequence = from_sequence — the checkpoint is newer than the journal
/// (the journal lost its tail in a crash), and the checkpoint wins.
/// from_sequence < scan.base_sequence is kInvalidArgument: the ops needed
/// to bridge the gap were compacted away.
Result<ReplayReport> ReplayJournalTail(Instance base_instance, Plan base_plan,
                                       const JournalScan& scan,
                                       uint64_t from_sequence);

/// Replays every committed operation of the GOPS1 file at `path` against
/// the base state, skipping (and counting) the ones that fail validation —
/// the same accept/reject sequence the live service produced. A torn tail
/// (crash mid-append) is discarded and reported, matching the write-ahead
/// contract: an op whose newline never hit disk was never applied either.
/// Returns kNotFound if the journal does not exist, kInvalidArgument if
/// base plan/instance are inconsistent or the journal is corrupt in the
/// middle.
Result<ReplayReport> ReplayJournal(Instance base_instance, Plan base_plan,
                                   const std::string& path);

}  // namespace gepc

#endif  // GEPC_SERVICE_JOURNAL_H_
