#ifndef GEPC_SERVICE_PLANNING_SERVICE_H_
#define GEPC_SERVICE_PLANNING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/result.h"
#include "core/instance.h"
#include "core/itinerary.h"
#include "core/plan.h"
#include "iep/planner.h"
#include "service/journal.h"
#include "service/metrics.h"
#include "service/op_queue.h"
#include "service/snapshot.h"
#include "shard/rebalance.h"
#include "shard/sharded_solver.h"

namespace gepc {

struct ServiceOptions {
  /// Bound of the submission queue; producers beyond it block (Submit) or
  /// get backpressure (TrySubmit).
  size_t queue_capacity = 1024;

  /// Journal file (GOPS1). Empty disables journaling (tests, throwaway
  /// what-if services). `Create` refuses a pre-existing non-empty journal —
  /// use `Recover` to resume from one.
  std::string journal_path;

  /// Publish a fresh snapshot every N applied operations. The writer also
  /// publishes whenever its queue runs empty, so idle services are always
  /// fresh; raising N batches the O(instance) snapshot copy under load.
  int snapshot_every = 1;

  /// Transient journal-append failures (kUnavailable: disk hiccup, injected
  /// fault) are retried up to this many times before the op is rejected.
  /// Non-transient failures reject immediately. The journal restores its
  /// tail on every failed append, so retries never see a corrupt file.
  int journal_retry_limit = 3;

  /// Exponential backoff between journal retries: first wait, then doubled
  /// per attempt, capped. Zero disables the sleep (tests).
  int journal_backoff_initial_ms = 1;
  int journal_backoff_max_ms = 50;

  /// Directory for GCKP1 checkpoint files. Empty disables checkpointing;
  /// the directory is created on startup when set. Recover scans it for the
  /// newest usable checkpoint and replays only the journal tail past it.
  std::string checkpoint_dir;

  /// Auto-publish a checkpoint every N *applied* operations (0 = only on
  /// demand via Checkpoint/SubmitCheckpoint). Requires checkpoint_dir.
  int checkpoint_every = 0;

  /// Checkpoints kept after each successful publication; older files are
  /// pruned and the journal is compacted through the OLDEST survivor's
  /// version, so every retained checkpoint can still bridge to the journal
  /// tail. Clamped to >= 1. The default keeps one fallback generation in
  /// case the newest file rots.
  int checkpoint_retain = 2;

  /// Shards the live rebalance tracker (ShardTracker) maintains. <= 1
  /// disables the tracker entirely: no routing, no skew accounting, and
  /// rebalance requests fail with kFailedPrecondition.
  int rebalance_shards = 0;

  /// Load-skew threshold (max/mean shard load) past which the writer
  /// triggers an automatic rebalance at the next cadence check. 0.0 fires
  /// on every check (deterministic tests); values below 1.0 behave like
  /// 0.0 since skew never drops under 1 once load exists.
  double rebalance_skew = 2.0;

  /// Check the skew every N applied operations (0 = never auto-rebalance;
  /// explicit Rebalance/SubmitRebalance still work).
  int rebalance_every = 0;
};

/// What happened to one submitted operation, delivered via the future that
/// Submit/TrySubmit return (Apply returns it directly).
struct ApplyOutcome {
  /// 1-based position in the apply/journal order; 0 when never applied.
  uint64_t sequence = 0;
  /// False when the op failed validation (state unchanged) or the service
  /// shut down before reaching it; `error` says which.
  bool applied = false;
  std::string error;
  int64_t negative_impact = 0;
  double total_utility = 0.0;
  int events_below_lower_bound = 0;
  int added_by_topup = 0;
};

/// What a full plan rebuild did, delivered via SubmitRebuild's future.
struct RebuildOutcome {
  /// False when the solve failed (state unchanged) or the service shut
  /// down before reaching the request; `error` says which.
  bool rebuilt = false;
  std::string error;
  double total_utility = 0.0;
  int events_below_lower_bound = 0;
  /// dif(old plan, new plan): attendances the rebuild took away.
  int64_t negative_impact = 0;
  ShardedGepcStats stats;
};

/// What a shard rebalance did, delivered via SubmitRebalance's future.
struct RebalanceOutcome {
  /// False when the tracker is disabled, the rebalance aborted (injected
  /// shard.rebalance fault) or the service shut down first; `error` says
  /// which. The partition is untouched on failure.
  bool rebalanced = false;
  std::string error;
  /// Sequence at which the rebalance ran (0 when it never ran).
  uint64_t sequence = 0;
  RebalanceReport report;
};

/// What a checkpoint request did, delivered via SubmitCheckpoint's future.
struct CheckpointOutcome {
  /// False when the checkpoint could not be published (state and journal
  /// unchanged) or the service shut down first; `error` says which.
  bool published = false;
  std::string error;
  /// Sequence the checkpoint captures: ops 1..version are absorbed by it.
  uint64_t version = 0;
  std::string path;
  int64_t bytes = 0;
  /// True when the journal was compacted after the publication (it is
  /// skipped — with a warning, not an error — when compaction fails; the
  /// journal stays valid, merely longer than necessary).
  bool compacted = false;
};

/// Long-running online planning core (the paper's IEP loop turned into a
/// service): owns an Instance + Plan behind a single writer thread that
/// drains a bounded MPSC queue of atomic operations, journals every
/// accepted op *before* applying it (crash recovery = ReplayJournal), and
/// publishes immutable ServiceSnapshots so any number of reader threads can
/// query plans, itineraries and stats without ever blocking the writer.
///
/// Thread-safety: every public method may be called from any thread.
/// Ordering: operations are applied in queue (FIFO) order, which is exactly
/// the journal order, so a replay reconstructs the identical state.
class PlanningService {
 public:
  /// Validates (instance, plan) — normally a SolveGepc output — opens the
  /// journal (if configured), publishes the initial snapshot, and starts
  /// the writer thread.
  static Result<std::unique_ptr<PlanningService>> Create(
      Instance instance, Plan plan, ServiceOptions options = {});

  /// Crash recovery: loads the newest usable checkpoint from
  /// options.checkpoint_dir (when set) and replays only the journal tail
  /// past its version — bounded by ops-since-last-checkpoint instead of the
  /// full history — falling back to older checkpoints when the newest is
  /// torn or corrupt, and to a full journal replay on top of the base state
  /// when no checkpoint is usable. The journal is read exactly once. The
  /// recovered service is byte-for-byte the one that crashed.
  static Result<std::unique_ptr<PlanningService>> Recover(
      Instance base_instance, Plan base_plan, ServiceOptions options);

  ~PlanningService();

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  /// Enqueues `op`; blocks while the queue is full. The future resolves
  /// when the writer thread has journaled + applied (or rejected) the op.
  /// After Shutdown the future resolves immediately with applied=false.
  std::future<ApplyOutcome> Submit(AtomicOp op);

  /// Non-blocking Submit; kUnavailable when the queue is full or the
  /// service is shut down.
  Result<std::future<ApplyOutcome>> TrySubmit(AtomicOp op);

  /// Submit + wait: the synchronous convenience the CLI front end uses.
  ApplyOutcome Apply(AtomicOp op);

  /// Enqueues a full plan rebuild: when the writer thread reaches it, the
  /// current instance is re-solved from scratch with the sharded engine
  /// (SolveSharded) and the service's plan replaced by the result. Rides
  /// the same FIFO queue as atomic ops, so it serializes cleanly between
  /// them. NOT journaled — the journal records externally-observed EBSN
  /// changes only, and replaying them reconstructs a valid served state;
  /// re-issue the rebuild after recovery if the rebuilt plan is wanted.
  std::future<RebuildOutcome> SubmitRebuild(ShardedGepcOptions options = {});

  /// SubmitRebuild + wait.
  RebuildOutcome Rebuild(ShardedGepcOptions options = {});

  /// Enqueues a shard rebalance: when the writer thread reaches it, the
  /// tracker's Voronoi sites are re-centered with a Lloyd run warm-started
  /// from the current sites and the live partition rebuilt. Rides the FIFO
  /// queue, so it sees exactly the ops ahead of it. Like rebuilds, NOT
  /// journaled — the partition is derived state that replay reconstructs.
  /// Fails with kFailedPrecondition when options.rebalance_shards <= 1.
  std::future<RebalanceOutcome> SubmitRebalance();

  /// SubmitRebalance + wait.
  RebalanceOutcome Rebalance();

  /// Enqueues a durable checkpoint: when the writer thread reaches it, the
  /// current (instance, plan, sequence) is written as a GCKP1 file and
  /// published atomically (temp -> fsync -> rename), older checkpoints
  /// beyond options.checkpoint_retain are pruned, and the journal is
  /// compacted through the oldest surviving checkpoint's version. Rides the
  /// FIFO queue, so it captures exactly the ops ahead of it.
  std::future<CheckpointOutcome> SubmitCheckpoint();

  /// SubmitCheckpoint + wait.
  CheckpointOutcome Checkpoint();

  /// Called by the writer thread immediately after an op's journal row is
  /// committed (its newline reached disk) and its sequence assigned —
  /// before the op is applied or its future resolved. Replication fans the
  /// row out to followers from here. The hook must be fast and must not
  /// call back into the service's write path.
  using CommitHook = std::function<void(uint64_t sequence, const AtomicOp& op)>;

  /// Installs (or clears, with nullptr) the commit hook. Thread-safe; ops
  /// committed before the hook is set are only visible through the journal.
  void SetCommitHook(CommitHook hook);

  /// Replication retention floor: checkpoint pruning keeps the newest
  /// checkpoint at or below `pin` and journal compaction never advances the
  /// base past it, so a follower synced at `pin` can still bridge to the
  /// live tail. kNoRetentionPin (the default) releases the floor.
  void SetRetentionPin(uint64_t pin);
  uint64_t retention_pin() const;

  /// Sequence of the last committed (journaled) op; ops beyond it are still
  /// queued. Equals the snapshot version once the writer goes idle.
  uint64_t committed_sequence() const {
    return committed_sequence_.load(std::memory_order_acquire);
  }

  /// Latest published snapshot; never null. Hold it as long as you like.
  std::shared_ptr<const ServiceSnapshot> snapshot() const;

  /// Renders `user`'s current itinerary from the latest snapshot.
  Result<Itinerary> QueryUser(UserId user) const;

  /// One coherent read of all built-in counters.
  ServiceStats Stats() const;

  /// Blocks until every operation submitted before this call has been
  /// applied or rejected. The writer publishes each op's snapshot before
  /// resolving it, so after Drain the snapshot covers all drained ops.
  void Drain();

  /// Stops accepting, drains the queue, joins the writer thread, closes
  /// the journal. Idempotent; the destructor calls it.
  void Shutdown();

  /// False once Shutdown has begun.
  bool accepting() const { return accepting_.load(std::memory_order_acquire); }

 private:
  struct PendingOp {
    AtomicOp op;
    std::promise<ApplyOutcome> promise;
    /// Set at enqueue when observability is on; feeds the queue-wait
    /// histogram when the writer dequeues. Epoch (zero) when off.
    std::chrono::steady_clock::time_point enqueue_time{};
    /// Full-rebuild request: `op`/`promise` are ignored, the rebuild
    /// fields below are used instead.
    bool is_rebuild = false;
    ShardedGepcOptions rebuild_options;
    std::promise<RebuildOutcome> rebuild_promise;
    /// Checkpoint request: only `checkpoint_promise` is used.
    bool is_checkpoint = false;
    std::promise<CheckpointOutcome> checkpoint_promise;
    /// Rebalance request: only `rebalance_promise` is used.
    bool is_rebalance = false;
    std::promise<RebalanceOutcome> rebalance_promise;
  };

  /// How the service came to be (filled by Recover, defaults for Create);
  /// surfaced verbatim through Stats so operators can see whether the last
  /// boot paid a full replay or a checkpoint + tail.
  struct RecoveryInfo {
    bool from_checkpoint = false;
    uint64_t checkpoint_version = 0;
    uint64_t ops_replayed = 0;
    double recovery_ms = 0.0;
  };

  PlanningService(IncrementalPlanner planner, ServiceOptions options,
                  std::optional<Journal> journal, uint64_t base_sequence,
                  RecoveryInfo recovery);

  void WriterLoop();
  void ApplyOne(PendingOp* pending);
  void ApplyRebuild(PendingOp* pending);
  void ApplyCheckpoint(PendingOp* pending);
  void ApplyRebalance(PendingOp* pending);
  /// Writes + publishes the checkpoint, prunes, compacts the journal.
  /// Writer thread only. Returns the outcome (never throws the service).
  CheckpointOutcome DoCheckpoint();
  /// Runs the tracker rebalance and mirrors its stats. Writer thread only.
  RebalanceOutcome DoRebalance();
  /// Copies the tracker's counters into the lock-free Stats() mirrors.
  /// Writer thread only; no-op when the tracker is disabled.
  void SyncTrackerStats();
  void PublishSnapshot();
  void FinishOne();  // bookkeeping for Drain()

  const ServiceOptions options_;
  IncrementalPlanner planner_;  // touched only by the writer thread
  std::optional<Journal> journal_;
  uint64_t sequence_;  // ops journaled so far (incl. recovered ones)
  uint64_t applied_since_snapshot_ = 0;
  uint64_t ops_since_checkpoint_ = 0;  // writer thread only
  // Live shard-rebalance tracker (writer thread only once the writer has
  // started; constructed before it). nullopt when rebalance_shards <= 1.
  std::optional<ShardTracker> tracker_;
  uint64_t ops_since_rebalance_check_ = 0;  // writer thread only
  // Tracker mirrors for lock-free Stats().
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> rebalance_failures_{0};
  std::atomic<uint64_t> shard_migrations_{0};
  std::atomic<uint64_t> shard_users_migrated_{0};
  std::atomic<uint64_t> shard_events_migrated_{0};
  std::atomic<uint64_t> shard_full_rebuilds_{0};
  std::atomic<uint64_t> shard_boundary_users_{0};
  std::atomic<uint64_t> last_rebalance_version_{0};
  std::atomic<int64_t> shard_skew_milli_{0};
  const RecoveryInfo recovery_;
  std::atomic<int64_t> journal_bytes_{0};  // mirrored for lock-free Stats()
  // Checkpoint/compaction mirrors, updated by the writer after each
  // publication so Stats() stays lock-free. last_checkpoint_at_ms_ is a
  // steady-clock reading (0 = never) from which Stats derives the age.
  std::atomic<uint64_t> last_checkpoint_version_{0};
  std::atomic<int64_t> last_checkpoint_bytes_{0};
  std::atomic<int64_t> last_checkpoint_at_ms_{0};
  std::atomic<uint64_t> journal_base_sequence_{0};
  std::atomic<uint64_t> journal_compactions_{0};
  std::atomic<uint64_t> committed_sequence_{0};
  // Replication hooks (src/repl/): retention floor consulted by
  // DoCheckpoint, and the per-commit fan-out callback.
  std::atomic<uint64_t> retention_pin_{UINT64_MAX};
  mutable std::mutex commit_hook_mu_;
  CommitHook commit_hook_;

  BoundedQueue<PendingOp> queue_;
  ServiceMetrics metrics_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ServiceSnapshot> snapshot_;

  // Drain accounting: ticket = ops accepted into the queue, finished = ops
  // the writer fully resolved.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  uint64_t tickets_issued_ = 0;
  uint64_t tickets_finished_ = 0;

  std::atomic<bool> accepting_{true};
  std::once_flag shutdown_once_;
  std::thread writer_;
};

}  // namespace gepc

#endif  // GEPC_SERVICE_PLANNING_SERVICE_H_
