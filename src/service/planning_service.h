#ifndef GEPC_SERVICE_PLANNING_SERVICE_H_
#define GEPC_SERVICE_PLANNING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/result.h"
#include "core/instance.h"
#include "core/itinerary.h"
#include "core/plan.h"
#include "iep/planner.h"
#include "service/journal.h"
#include "service/metrics.h"
#include "service/op_queue.h"
#include "service/snapshot.h"
#include "shard/sharded_solver.h"

namespace gepc {

struct ServiceOptions {
  /// Bound of the submission queue; producers beyond it block (Submit) or
  /// get backpressure (TrySubmit).
  size_t queue_capacity = 1024;

  /// Journal file (GOPS1). Empty disables journaling (tests, throwaway
  /// what-if services). `Create` refuses a pre-existing non-empty journal —
  /// use `Recover` to resume from one.
  std::string journal_path;

  /// Publish a fresh snapshot every N applied operations. The writer also
  /// publishes whenever its queue runs empty, so idle services are always
  /// fresh; raising N batches the O(instance) snapshot copy under load.
  int snapshot_every = 1;

  /// Transient journal-append failures (kUnavailable: disk hiccup, injected
  /// fault) are retried up to this many times before the op is rejected.
  /// Non-transient failures reject immediately. The journal restores its
  /// tail on every failed append, so retries never see a corrupt file.
  int journal_retry_limit = 3;

  /// Exponential backoff between journal retries: first wait, then doubled
  /// per attempt, capped. Zero disables the sleep (tests).
  int journal_backoff_initial_ms = 1;
  int journal_backoff_max_ms = 50;
};

/// What happened to one submitted operation, delivered via the future that
/// Submit/TrySubmit return (Apply returns it directly).
struct ApplyOutcome {
  /// 1-based position in the apply/journal order; 0 when never applied.
  uint64_t sequence = 0;
  /// False when the op failed validation (state unchanged) or the service
  /// shut down before reaching it; `error` says which.
  bool applied = false;
  std::string error;
  int64_t negative_impact = 0;
  double total_utility = 0.0;
  int events_below_lower_bound = 0;
  int added_by_topup = 0;
};

/// What a full plan rebuild did, delivered via SubmitRebuild's future.
struct RebuildOutcome {
  /// False when the solve failed (state unchanged) or the service shut
  /// down before reaching the request; `error` says which.
  bool rebuilt = false;
  std::string error;
  double total_utility = 0.0;
  int events_below_lower_bound = 0;
  /// dif(old plan, new plan): attendances the rebuild took away.
  int64_t negative_impact = 0;
  ShardedGepcStats stats;
};

/// Long-running online planning core (the paper's IEP loop turned into a
/// service): owns an Instance + Plan behind a single writer thread that
/// drains a bounded MPSC queue of atomic operations, journals every
/// accepted op *before* applying it (crash recovery = ReplayJournal), and
/// publishes immutable ServiceSnapshots so any number of reader threads can
/// query plans, itineraries and stats without ever blocking the writer.
///
/// Thread-safety: every public method may be called from any thread.
/// Ordering: operations are applied in queue (FIFO) order, which is exactly
/// the journal order, so a replay reconstructs the identical state.
class PlanningService {
 public:
  /// Validates (instance, plan) — normally a SolveGepc output — opens the
  /// journal (if configured), publishes the initial snapshot, and starts
  /// the writer thread.
  static Result<std::unique_ptr<PlanningService>> Create(
      Instance instance, Plan plan, ServiceOptions options = {});

  /// Crash recovery: replays options.journal_path (which must exist) on top
  /// of the base state, then serves with the journal extended in place.
  /// The recovered service is byte-for-byte the one that crashed.
  static Result<std::unique_ptr<PlanningService>> Recover(
      Instance base_instance, Plan base_plan, ServiceOptions options);

  ~PlanningService();

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  /// Enqueues `op`; blocks while the queue is full. The future resolves
  /// when the writer thread has journaled + applied (or rejected) the op.
  /// After Shutdown the future resolves immediately with applied=false.
  std::future<ApplyOutcome> Submit(AtomicOp op);

  /// Non-blocking Submit; kUnavailable when the queue is full or the
  /// service is shut down.
  Result<std::future<ApplyOutcome>> TrySubmit(AtomicOp op);

  /// Submit + wait: the synchronous convenience the CLI front end uses.
  ApplyOutcome Apply(AtomicOp op);

  /// Enqueues a full plan rebuild: when the writer thread reaches it, the
  /// current instance is re-solved from scratch with the sharded engine
  /// (SolveSharded) and the service's plan replaced by the result. Rides
  /// the same FIFO queue as atomic ops, so it serializes cleanly between
  /// them. NOT journaled — the journal records externally-observed EBSN
  /// changes only, and replaying them reconstructs a valid served state;
  /// re-issue the rebuild after recovery if the rebuilt plan is wanted.
  std::future<RebuildOutcome> SubmitRebuild(ShardedGepcOptions options = {});

  /// SubmitRebuild + wait.
  RebuildOutcome Rebuild(ShardedGepcOptions options = {});

  /// Latest published snapshot; never null. Hold it as long as you like.
  std::shared_ptr<const ServiceSnapshot> snapshot() const;

  /// Renders `user`'s current itinerary from the latest snapshot.
  Result<Itinerary> QueryUser(UserId user) const;

  /// One coherent read of all built-in counters.
  ServiceStats Stats() const;

  /// Blocks until every operation submitted before this call has been
  /// applied or rejected. The writer publishes each op's snapshot before
  /// resolving it, so after Drain the snapshot covers all drained ops.
  void Drain();

  /// Stops accepting, drains the queue, joins the writer thread, closes
  /// the journal. Idempotent; the destructor calls it.
  void Shutdown();

  /// False once Shutdown has begun.
  bool accepting() const { return accepting_.load(std::memory_order_acquire); }

 private:
  struct PendingOp {
    AtomicOp op;
    std::promise<ApplyOutcome> promise;
    /// Set at enqueue when observability is on; feeds the queue-wait
    /// histogram when the writer dequeues. Epoch (zero) when off.
    std::chrono::steady_clock::time_point enqueue_time{};
    /// Full-rebuild request: `op`/`promise` are ignored, the rebuild
    /// fields below are used instead.
    bool is_rebuild = false;
    ShardedGepcOptions rebuild_options;
    std::promise<RebuildOutcome> rebuild_promise;
  };

  PlanningService(IncrementalPlanner planner, ServiceOptions options,
                  std::optional<Journal> journal, uint64_t base_sequence);

  void WriterLoop();
  void ApplyOne(PendingOp* pending);
  void ApplyRebuild(PendingOp* pending);
  void PublishSnapshot();
  void FinishOne();  // bookkeeping for Drain()

  const ServiceOptions options_;
  IncrementalPlanner planner_;  // touched only by the writer thread
  std::optional<Journal> journal_;
  uint64_t sequence_;  // ops journaled so far (incl. recovered ones)
  uint64_t applied_since_snapshot_ = 0;
  std::atomic<int64_t> journal_bytes_{0};  // mirrored for lock-free Stats()

  BoundedQueue<PendingOp> queue_;
  ServiceMetrics metrics_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ServiceSnapshot> snapshot_;

  // Drain accounting: ticket = ops accepted into the queue, finished = ops
  // the writer fully resolved.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  uint64_t tickets_issued_ = 0;
  uint64_t tickets_finished_ = 0;

  std::atomic<bool> accepting_{true};
  std::once_flag shutdown_once_;
  std::thread writer_;
};

}  // namespace gepc

#endif  // GEPC_SERVICE_PLANNING_SERVICE_H_
