#ifndef GEPC_SERVICE_JSONL_H_
#define GEPC_SERVICE_JSONL_H_

#include <map>
#include <string>

#include "common/result.h"

namespace gepc {

/// Minimal JSON support for the `gepc_serve` line protocol: one flat JSON
/// object per line, values restricted to strings, numbers, booleans and
/// null. Deliberately tiny — the protocol needs nothing nested on the
/// request side, and responses are built with JsonWriter (which can embed
/// pre-rendered arrays via AddRaw). Not a general-purpose JSON library.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString };
  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parses one `{"key": value, ...}` line. Returns kInvalidArgument on
/// malformed input or nested objects/arrays.
Result<JsonObject> ParseJsonObject(const std::string& line);

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string EscapeJson(const std::string& text);

/// Builds one flat JSON object, rendered in insertion order:
///
///   JsonWriter w;
///   w.Add("ok", true); w.Add("seq", 12); w.Add("utility", 88.25);
///   out << w.Finish() << "\n";
class JsonWriter {
 public:
  void Add(const std::string& key, const std::string& value);
  void Add(const std::string& key, const char* value);
  void Add(const std::string& key, double value);
  void Add(const std::string& key, int64_t value);
  void Add(const std::string& key, uint64_t value);
  void Add(const std::string& key, int value);
  void Add(const std::string& key, bool value);
  /// Embeds `raw` verbatim (caller-supplied valid JSON, e.g. an array).
  void AddRaw(const std::string& key, const std::string& raw);

  /// "{...}" with the fields added so far.
  std::string Finish() const;

 private:
  void AppendKey(const std::string& key);
  std::string body_;
};

/// Renders a double the way the protocol expects: shortest form that
/// round-trips (17 significant digits, %g).
std::string JsonNumber(double value);

}  // namespace gepc

#endif  // GEPC_SERVICE_JSONL_H_
