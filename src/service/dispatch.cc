#include "service/dispatch.h"

#include <string>
#include <utility>

#include "common/status.h"
#include "core/itinerary.h"
#include "data/friendship.h"
#include "data/io.h"
#include "fault/fault.h"
#include "iep/op_spec.h"
#include "obs/metrics.h"
#include "sched/schedule.h"
#include "service/jsonl.h"
#include "service/metrics.h"

namespace gepc {
namespace {

/// Copies the request's optional "id" correlation field (string or number)
/// into the response, first so it is cheap for clients to find.
void EchoRequestId(const JsonObject& request, JsonWriter* writer) {
  auto it = request.find("id");
  if (it == request.end()) return;
  if (it->second.type == JsonValue::Type::kString) {
    writer->Add("id", it->second.string_value);
  } else if (it->second.type == JsonValue::Type::kNumber) {
    writer->Add("id", it->second.number_value);
  }
}

void FillError(JsonWriter* writer, const std::string& message) {
  writer->Add("ok", false);
  writer->Add("error", message);
}

/// Fetches a required non-negative integer field.
bool GetIntField(const JsonObject& request, const std::string& key, int* out,
                 std::string* error) {
  auto it = request.find(key);
  if (it == request.end() || it->second.type != JsonValue::Type::kNumber) {
    *error = "'" + key + "' (number) is required";
    return false;
  }
  *out = static_cast<int>(it->second.number_value);
  return true;
}

bool GetStringField(const JsonObject& request, const std::string& key,
                    std::string* out, std::string* error) {
  auto it = request.find(key);
  if (it == request.end() || it->second.type != JsonValue::Type::kString) {
    *error = "'" + key + "' (string) is required";
    return false;
  }
  *out = it->second.string_value;
  return true;
}

void HandleApply(PlanningService* service, const JsonObject& request,
                 JsonWriter* writer) {
  std::string spec;
  std::string error;
  if (!GetStringField(request, "op", &spec, &error)) {
    FillError(writer, error);
    return;
  }
  auto op = ParseOpSpec(spec);
  if (!op.ok()) {
    FillError(writer, op.status().ToString());
    return;
  }
  auto wait_it = request.find("wait");
  const bool wait = wait_it == request.end() ||
                    wait_it->second.type != JsonValue::Type::kBool ||
                    wait_it->second.bool_value;
  if (!wait) {
    auto submitted = service->TrySubmit(*std::move(op));
    if (submitted.ok()) {
      writer->Add("ok", true);
      writer->Add("queued", true);
    } else {
      FillError(writer, submitted.status().ToString());
    }
    return;
  }
  const ApplyOutcome outcome = service->Apply(*std::move(op));
  writer->Add("ok", true);
  writer->Add("seq", outcome.sequence);
  writer->Add("applied", outcome.applied);
  if (outcome.applied) {
    writer->Add("dif", outcome.negative_impact);
    writer->Add("utility", outcome.total_utility);
    writer->Add("below_xi", outcome.events_below_lower_bound);
    if (outcome.added_by_topup > 0) {
      writer->Add("added_by_topup", outcome.added_by_topup);
    }
  } else {
    writer->Add("error", outcome.error);
  }
}

void HandleQueryUser(const PlanningService& service, const JsonObject& request,
                     JsonWriter* writer) {
  int user = -1;
  std::string error;
  if (!GetIntField(request, "user", &user, &error)) {
    FillError(writer, error);
    return;
  }
  auto itinerary = service.QueryUser(user);
  if (!itinerary.ok()) {
    FillError(writer, itinerary.status().ToString());
    return;
  }
  std::string stops = "[";
  for (size_t k = 0; k < itinerary->stops.size(); ++k) {
    const ItineraryStop& stop = itinerary->stops[k];
    JsonWriter item;
    item.Add("event", stop.event);
    item.Add("start", stop.time.start);
    item.Add("end", stop.time.end);
    item.Add("travel", stop.travel_from_previous);
    item.Add("fee", stop.fee);
    item.Add("utility", stop.utility);
    if (k > 0) stops += ",";
    stops += item.Finish();
  }
  stops += "]";

  writer->Add("ok", true);
  writer->Add("user", itinerary->user);
  writer->Add("budget", itinerary->budget);
  writer->Add("utility", itinerary->total_utility);
  writer->Add("travel", itinerary->total_travel);
  writer->Add("fees", itinerary->total_fees);
  writer->Add("cost", itinerary->total_cost);
  writer->Add("within_budget", itinerary->within_budget);
  writer->Add("conflict_free", itinerary->conflict_free);
  writer->AddRaw("stops", stops);
}

void HandleQueryEvent(const PlanningService& service,
                      const JsonObject& request, JsonWriter* writer) {
  int event = -1;
  std::string error;
  if (!GetIntField(request, "event", &event, &error)) {
    FillError(writer, error);
    return;
  }
  const auto snap = service.snapshot();
  if (event < 0 || event >= snap->instance->num_events()) {
    FillError(writer, "event " + std::to_string(event) + " outside [0, " +
                          std::to_string(snap->instance->num_events()) + ")");
    return;
  }
  const Event& meta = snap->instance->event(event);
  std::string attendees = "[";
  bool first = true;
  for (const UserId user : snap->plan->attendees_of(event)) {
    if (!first) attendees += ",";
    attendees += std::to_string(user);
    first = false;
  }
  attendees += "]";

  writer->Add("ok", true);
  writer->Add("event", event);
  writer->Add("attendance", snap->plan->attendance(event));
  writer->Add("xi", meta.lower_bound);
  writer->Add("eta", meta.upper_bound);
  writer->Add("start", meta.time.start);
  writer->Add("end", meta.time.end);
  writer->Add("fee", meta.fee);
  writer->AddRaw("attendees", attendees);
}

void HandleStats(const PlanningService& service, const ServeRole* role,
                 JsonWriter* writer) {
  const ServiceStats stats = service.Stats();
  const auto snap = service.snapshot();
  writer->Add("ok", true);
  // Role surface (docs/replication.md): harnesses read the mode here
  // instead of inferring it from command-line flags.
  const bool follower =
      role != nullptr && role->follower.load(std::memory_order_acquire);
  writer->Add("role", follower ? "follower" : "primary");
  writer->Add("net_compress", role != nullptr && role->net_compress);
  if (follower) writer->Add("primary", role->primary);
  writer->Add("users", snap->instance->num_users());
  writer->Add("events", snap->instance->num_events());
  writer->Add("ops_submitted", stats.ops_submitted);
  writer->Add("ops_applied", stats.ops_applied);
  writer->Add("ops_rejected", stats.ops_rejected);
  writer->Add("ops_dropped", stats.ops_dropped);
  writer->Add("negative_impact_total", stats.negative_impact_total);
  writer->Add("queue_depth", stats.queue_depth);
  writer->Add("queue_high_water", stats.queue_high_water);
  writer->Add("queue_capacity", stats.queue_capacity);
  writer->Add("apply_ms_mean", stats.apply_ms_mean);
  writer->Add("apply_ms_p50", stats.apply_ms_p50);
  writer->Add("apply_ms_p90", stats.apply_ms_p90);
  writer->Add("apply_ms_p99", stats.apply_ms_p99);
  writer->Add("apply_ms_max", stats.apply_ms_max);
  writer->Add("apply_ms_count", stats.apply_ms.count);
  writer->Add("apply_ms_exact", stats.apply_ms.exact);
  writer->Add("queue_wait_ms_mean", stats.queue_wait_ms.Mean());
  writer->Add("queue_wait_ms_p50", stats.queue_wait_ms.Quantile(0.50));
  writer->Add("queue_wait_ms_p90", stats.queue_wait_ms.Quantile(0.90));
  writer->Add("queue_wait_ms_p99", stats.queue_wait_ms.Quantile(0.99));
  writer->Add("queue_wait_ms_max", stats.queue_wait_ms.max);
  writer->Add("journal_retries", stats.journal_retries);
  writer->Add("journal_bytes", stats.journal_bytes);
  writer->Add("journal_base", stats.journal_base_sequence);
  writer->Add("journal_compactions", stats.journal_compactions);
  writer->Add("snapshots_published", stats.snapshots_published);
  writer->Add("checkpoints_published", stats.checkpoints_published);
  writer->Add("checkpoint_failures", stats.checkpoint_failures);
  writer->Add("last_checkpoint_version", stats.last_checkpoint_version);
  writer->Add("last_checkpoint_bytes", stats.last_checkpoint_bytes);
  writer->Add("last_checkpoint_age_s", stats.last_checkpoint_age_seconds);
  writer->Add("recovered_from_checkpoint", stats.recovered_from_checkpoint);
  writer->Add("recovery_ops_replayed", stats.recovery_ops_replayed);
  writer->Add("recovery_ms", stats.recovery_ms);
  writer->Add("version", stats.snapshot_version);
  writer->Add("utility", stats.total_utility);
  writer->Add("assignments", stats.total_assignments);
  writer->Add("below_xi", stats.events_below_lower_bound);
  writer->Add("heap_bytes", stats.heap_bytes);
  writer->Add("peak_heap_bytes", stats.peak_heap_bytes);
  writer->Add("rss_bytes", stats.rss_bytes);
  writer->Add("rebalance_shards", stats.rebalance_shards);
  if (stats.rebalance_shards > 0) {
    writer->Add("shard_skew", stats.shard_skew);
    writer->Add("shard_boundary_users", stats.shard_boundary_users);
    writer->Add("rebalances", stats.rebalances);
    writer->Add("rebalance_failures", stats.rebalance_failures);
    writer->Add("shard_migrations", stats.shard_migrations);
    writer->Add("last_rebalance_version", stats.last_rebalance_version);
  }
}

void HandleMetrics(const PlanningService& service, JsonWriter* writer) {
  writer->Add("ok", true);
  writer->Add("format", "prometheus");
  writer->Add("metrics", RenderAllMetricsText(service));
}

void HandleFaults(JsonWriter* writer) {
  // Live fault-point counters (docs/fault-injection.md): which points are
  // armed and how often each has been hit / has fired.
  std::string points = "[";
  bool first = true;
  for (const fault::PointStatus& status :
       fault::Registry::Global().Snapshot()) {
    if (!first) points += ",";
    first = false;
    JsonWriter point;
    point.Add("point", status.point);
    point.Add("armed", status.armed);
    point.Add("hits", status.hits);
    point.Add("fired", status.fired);
    points += point.Finish();
  }
  points += "]";
  writer->Add("ok", true);
  writer->Add("enabled", fault::Enabled());
  writer->AddRaw("points", points);
}

void HandleCheckpoint(PlanningService* service, JsonWriter* writer) {
  const CheckpointOutcome outcome = service->Checkpoint();
  if (!outcome.published) {
    FillError(writer, outcome.error);
    return;
  }
  writer->Add("ok", true);
  writer->Add("checkpoint", true);
  writer->Add("version", outcome.version);
  writer->Add("path", outcome.path);
  writer->Add("bytes", outcome.bytes);
  writer->Add("compacted", outcome.compacted);
}

void HandleSavePlan(PlanningService* service, const JsonObject& request,
                    JsonWriter* writer) {
  std::string path;
  std::string error;
  if (!GetStringField(request, "path", &path, &error)) {
    FillError(writer, error);
    return;
  }
  service->Drain();
  const auto snap = service->snapshot();
  const Status saved = SavePlanToFile(*snap->plan, path);
  if (!saved.ok()) {
    FillError(writer, saved.ToString());
    return;
  }
  writer->Add("ok", true);
  writer->Add("saved", path);
  writer->Add("version", snap->version);
}

void HandleRebuild(PlanningService* service, const JsonObject& request,
                   const DispatchDefaults& defaults, JsonWriter* writer) {
  ShardedGepcOptions options;
  options.threads = defaults.threads;
  options.shards = defaults.shards;
  options.gepc.algorithm = defaults.algorithm;

  // Optional per-request overrides of the front end's defaults.
  auto override_int = [&request](const char* key, int* out) {
    auto it = request.find(key);
    if (it == request.end()) return true;
    if (it->second.type != JsonValue::Type::kNumber) return false;
    const double value = it->second.number_value;
    if (value < 1.0 || value != static_cast<double>(static_cast<int>(value))) {
      return false;
    }
    *out = static_cast<int>(value);
    return true;
  };
  if (!override_int("threads", &options.threads)) {
    FillError(writer, "'threads' must be a positive integer");
    return;
  }
  if (!override_int("shards", &options.shards)) {
    FillError(writer, "'shards' must be a positive integer");
    return;
  }
  auto alg_it = request.find("algorithm");
  if (alg_it != request.end()) {
    const bool valid = alg_it->second.type == JsonValue::Type::kString &&
                       (alg_it->second.string_value == "greedy" ||
                        alg_it->second.string_value == "gap" ||
                        alg_it->second.string_value == "regret");
    if (!valid) {
      FillError(writer, "'algorithm' must be 'greedy', 'gap' or 'regret'");
      return;
    }
    options.gepc.algorithm = AlgorithmFromName(alg_it->second.string_value);
  }

  const RebuildOutcome outcome = service->Rebuild(std::move(options));
  if (!outcome.rebuilt) {
    FillError(writer, outcome.error);
    return;
  }
  writer->Add("ok", true);
  writer->Add("rebuilt", true);
  writer->Add("utility", outcome.total_utility);
  writer->Add("below_xi", outcome.events_below_lower_bound);
  writer->Add("dif", outcome.negative_impact);
  writer->Add("shards", outcome.stats.shards);
  writer->Add("boundary_users", outcome.stats.boundary_users);
}

void HandleRebalance(PlanningService* service, JsonWriter* writer) {
  const RebalanceOutcome outcome = service->Rebalance();
  if (!outcome.rebalanced) {
    FillError(writer, outcome.error);
    return;
  }
  writer->Add("ok", true);
  writer->Add("rebalanced", true);
  writer->Add("seq", outcome.sequence);
  writer->Add("iterations", outcome.report.iterations);
  writer->Add("events_moved", outcome.report.events_moved);
  writer->Add("users_moved", outcome.report.users_moved);
  writer->Add("skew_before", outcome.report.skew_before);
  writer->Add("skew_after", outcome.report.skew_after);
}

/// What-if scheduling over the live population (docs/cli.md): drafts a
/// seeded candidate problem for the *current snapshot's users* and runs the
/// sched search with the solver as oracle. Read-only — it never touches the
/// replicated (instance, plan) state — so, like `rebalance`, a follower may
/// serve it. Draft/candidate counts are bounded: the oracle space is
/// (candidates + 1)^drafts solves and this runs on the request thread.
void HandleSchedule(const PlanningService& service, const JsonObject& request,
                    JsonWriter* writer) {
  int drafts = 3;
  int candidates = 3;
  std::string error;
  auto override_int = [&request](const char* key, int* out) {
    auto it = request.find(key);
    if (it == request.end()) return true;
    if (it->second.type != JsonValue::Type::kNumber) return false;
    const double value = it->second.number_value;
    if (value < 1.0 || value != static_cast<double>(static_cast<int>(value))) {
      return false;
    }
    *out = static_cast<int>(value);
    return true;
  };
  if (!override_int("drafts", &drafts) || drafts > 8) {
    FillError(writer, "'drafts' must be an integer in [1, 8]");
    return;
  }
  if (!override_int("candidates", &candidates) || candidates > 8) {
    FillError(writer, "'candidates' must be an integer in [1, 8]");
    return;
  }
  uint64_t seed = 1;
  auto seed_it = request.find("seed");
  if (seed_it != request.end()) {
    if (seed_it->second.type != JsonValue::Type::kNumber ||
        seed_it->second.number_value < 0.0) {
      FillError(writer, "'seed' must be a non-negative number");
      return;
    }
    seed = static_cast<uint64_t>(seed_it->second.number_value);
  }
  double lambda = 0.0;
  auto lambda_it = request.find("lambda");
  if (lambda_it != request.end()) {
    if (lambda_it->second.type != JsonValue::Type::kNumber ||
        lambda_it->second.number_value < 0.0) {
      FillError(writer, "'lambda' must be a non-negative number");
      return;
    }
    lambda = lambda_it->second.number_value;
  }

  const auto snap = service.snapshot();
  ScheduleGenConfig gen;
  gen.num_drafts = drafts;
  gen.candidates_per_draft = candidates;
  gen.seed = seed;
  ScheduleProblem problem =
      GenerateScheduleProblemForUsers(snap->instance->users(), gen);

  ScheduleOptions options;
  options.seed = seed;
  FriendshipGraph friends;
  if (lambda > 0.0) {
    FriendshipConfig fc;
    fc.seed = seed + 7;
    friends = GenerateFriendshipGraph(problem.users, fc);
    options.affinity.graph = &friends;
    options.affinity.lambda = lambda;
  }
  auto result = SolveSchedule(problem, options);
  if (!result.ok()) {
    FillError(writer, result.status().ToString());
    return;
  }

  std::string chosen = "[";
  for (size_t d = 0; d < result->choice.size(); ++d) {
    const int c = result->choice[d];
    JsonWriter item;
    item.Add("draft", static_cast<int64_t>(d));
    item.Add("candidate", c);
    if (c >= 0) {
      const ScheduleCandidate& cand = problem.drafts[d].candidates[c];
      item.Add("start", cand.slot.start);
      item.Add("end", cand.slot.end);
      item.Add("x", cand.venue.x);
      item.Add("y", cand.venue.y);
      item.Add("capacity", cand.capacity);
    }
    if (d > 0) chosen += ",";
    chosen += item.Finish();
  }
  chosen += "]";

  writer->Add("ok", true);
  writer->Add("version", snap->version);
  writer->AddRaw("chosen", chosen);
  writer->Add("score", result->score);
  writer->Add("utility", result->total_utility);
  writer->Add("affinity_utility", result->affinity_utility);
  writer->Add("attendance", result->attendance);
  writer->Add("oracle_calls", result->stats.oracle_calls);
  writer->Add("cache_hits", result->stats.cache_hits);
  writer->Add("degraded", result->stats.degraded_candidates);
  writer->Add("skipped", result->stats.skipped_candidates);
}

}  // namespace

GepcAlgorithm AlgorithmFromName(const std::string& name) {
  if (name == "gap") return GepcAlgorithm::kGapBased;
  if (name == "regret") return GepcAlgorithm::kRegret;
  return GepcAlgorithm::kGreedy;
}

std::string RenderAllMetricsText(const PlanningService& service) {
  return obs::Registry::Global().RenderPrometheusText() +
         RenderServiceStatsText(service.Stats());
}

CommandKind ClassifyCommand(const std::string& cmd) {
  if (cmd == "query_user" || cmd == "query_event" || cmd == "stats" ||
      cmd == "metrics" || cmd == "faults" || cmd == "schedule") {
    return CommandKind::kRead;
  }
  if (cmd == "apply" || cmd == "rebuild" || cmd == "rebalance" ||
      cmd == "checkpoint" || cmd == "save_plan" || cmd == "drain" ||
      cmd == "shutdown") {
    return CommandKind::kWrite;
  }
  return CommandKind::kUnknown;
}

std::string ExtractCmdHint(const std::string& line) {
  // Looks for `"cmd"` followed by `:` and a string value. Escapes inside
  // command names don't exist in the protocol, so a plain scan suffices as
  // a routing hint; Dispatch re-parses authoritatively.
  const size_t key = line.find("\"cmd\"");
  if (key == std::string::npos) return "";
  size_t pos = line.find(':', key + 5);
  if (pos == std::string::npos) return "";
  ++pos;
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t')) {
    ++pos;
  }
  if (pos >= line.size() || line[pos] != '"') return "";
  const size_t start = ++pos;
  const size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

DispatchOutcome CommandDispatcher::Dispatch(const std::string& line) const {
  DispatchOutcome outcome;
  JsonWriter writer;
  auto request = ParseJsonObject(line);
  if (!request.ok()) {
    FillError(&writer, request.status().ToString());
    outcome.response = writer.Finish();
    return outcome;
  }
  EchoRequestId(*request, &writer);
  std::string cmd;
  std::string error;
  if (!GetStringField(*request, "cmd", &cmd, &error)) {
    FillError(&writer, error);
    outcome.response = writer.Finish();
    return outcome;
  }
  // While the role says follower, state mutations belong to the primary:
  // the client gets a structured redirect it can follow (code + address)
  // rather than a generic error. Local-only writes (checkpoint, save_plan,
  // drain, shutdown) still run — they never change the replicated state.
  if (role_ != nullptr && role_->follower.load(std::memory_order_acquire) &&
      (cmd == "apply" || cmd == "rebuild")) {
    writer.Add("ok", false);
    writer.Add("code", "redirect");
    writer.Add("error", "follower is read-only; send writes to the primary");
    writer.Add("primary", role_->primary);
    outcome.response = writer.Finish();
    return outcome;
  }
  if (cmd == "apply") {
    HandleApply(service_, *request, &writer);
  } else if (cmd == "query_user") {
    HandleQueryUser(*service_, *request, &writer);
  } else if (cmd == "query_event") {
    HandleQueryEvent(*service_, *request, &writer);
  } else if (cmd == "stats") {
    HandleStats(*service_, role_, &writer);
  } else if (cmd == "metrics") {
    HandleMetrics(*service_, &writer);
  } else if (cmd == "checkpoint") {
    HandleCheckpoint(service_, &writer);
  } else if (cmd == "save_plan") {
    HandleSavePlan(service_, *request, &writer);
  } else if (cmd == "rebuild") {
    HandleRebuild(service_, *request, defaults_, &writer);
  } else if (cmd == "rebalance") {
    // A write, but — like checkpoint — a local-only one: the partition is
    // derived state, so a follower may rebalance without diverging from the
    // primary's replicated state.
    HandleRebalance(service_, &writer);
  } else if (cmd == "schedule") {
    HandleSchedule(*service_, *request, &writer);
  } else if (cmd == "faults") {
    HandleFaults(&writer);
  } else if (cmd == "drain") {
    service_->Drain();
    writer.Add("ok", true);
    writer.Add("drained", true);
  } else if (cmd == "shutdown") {
    writer.Add("ok", true);
    writer.Add("shutdown", true);
    outcome.shutdown = true;
  } else {
    FillError(&writer, "unknown cmd '" + cmd + "'");
  }
  outcome.response = writer.Finish();
  return outcome;
}

}  // namespace gepc
