#ifndef GEPC_SERVICE_SNAPSHOT_H_
#define GEPC_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "core/instance.h"
#include "core/plan.h"

namespace gepc {

/// An immutable, internally consistent view of the service state, published
/// by the writer thread after applying operations. Readers hold a
/// `shared_ptr<const ServiceSnapshot>` and can keep querying it for as long
/// as they like while the writer races ahead — the snapshot never mutates,
/// so no reader ever blocks the apply loop.
struct ServiceSnapshot {
  /// Number of journal operations absorbed when this snapshot was taken
  /// (monotone; snapshot version v reflects ops 1..v, rejected ones
  /// included as no-ops).
  uint64_t version = 0;

  std::shared_ptr<const Instance> instance;
  std::shared_ptr<const Plan> plan;

  // Derived aggregates, precomputed so `stats` queries cost O(1).
  double total_utility = 0.0;
  int64_t total_assignments = 0;
  int events_below_lower_bound = 0;
};

/// Deep-copies (instance, plan) into a fresh immutable snapshot and fills
/// the derived aggregates.
std::shared_ptr<const ServiceSnapshot> MakeServiceSnapshot(
    const Instance& instance, const Plan& plan, uint64_t version);

/// Number of events whose attendance is below their lower bound xi_j —
/// the shortfall the paper's Algorithm 4 works to repair.
int CountEventsBelowLowerBound(const Instance& instance, const Plan& plan);

}  // namespace gepc

#endif  // GEPC_SERVICE_SNAPSHOT_H_
