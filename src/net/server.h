#ifndef GEPC_NET_SERVER_H_
#define GEPC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "service/op_queue.h"

namespace gepc {
namespace net {

struct NetServerOptions {
  /// Bind address. Tests and single-machine load runs keep the loopback
  /// default; 0.0.0.0 exposes the service.
  std::string host = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; port() reports the real one
  /// after Start.
  int port = 0;
  /// Accepted connections beyond this are greeted with a Status frame
  /// ("server full") and closed — the accept loop itself never blocks.
  int max_connections = 4096;
  /// Worker threads executing read-only commands (snapshot queries). They
  /// never touch the writer path, so reads keep flowing while the op queue
  /// is saturated.
  int read_workers = 2;
  /// Worker threads executing state-changing commands. Writes ultimately
  /// serialize in the PlanningService writer thread; a couple of workers
  /// are enough to keep its queue fed.
  int op_workers = 2;
  /// Bounds of the two dispatch queues. A full queue is the admission-
  /// control signal: the event loop answers with a Status frame
  /// ("saturated") instead of enqueueing — backpressure reaches the client
  /// as data, never as a stalled accept loop.
  size_t read_queue_capacity = 1024;
  size_t op_queue_capacity = 256;
  /// Compress server->client payloads >= kCompressMinBytes when that
  /// shrinks them (clients always may compress; the decoder autodetects).
  bool compress = false;
};

/// What the request handler produced (mirrors service/dispatch.h's
/// DispatchOutcome without coupling net to the service layer).
struct HandlerResult {
  std::string response;
  /// True when the request asked the server to stop; the response is
  /// delivered to the requesting client first.
  bool shutdown = false;
};

/// Counters a test can read without scraping Prometheus text.
struct NetServerCounters {
  uint64_t connections_accepted = 0;
  int64_t active_connections = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t rejected_ops = 0;       ///< admission-control Status rejections
  uint64_t protocol_errors = 0;    ///< bad frames / commands before hello
  uint64_t connections_refused = 0;  ///< over max_connections
};

/// Epoll-based event-dispatcher front end: one event-loop thread owns every
/// socket (accept, non-blocking reads, frame decode, non-blocking writes);
/// decoded requests are executed on small read/op worker pools and their
/// responses handed back to the loop through a completion queue + eventfd.
///
/// The loop never blocks on the service: when a dispatch queue is full the
/// request is answered immediately with a Status frame (admission control),
/// and reads are served from immutable snapshots on their own pool, so a
/// saturated writer delays writes only. See docs/network-protocol.md for
/// the wire protocol and DESIGN.md for the threading model.
class NetServer {
 public:
  /// Executes one JSONL request line; called on worker threads, must be
  /// thread-safe.
  using Handler = std::function<HandlerResult(const std::string& request)>;
  /// Returns true when the request must ride the op (write) pool; false
  /// routes to the read pool. Null routes everything to the op pool.
  using Router = std::function<bool(const std::string& request)>;
  /// First look at any frame type the core protocol does not handle
  /// (everything beyond Hello/Request), offered only after the handshake.
  /// Runs on the event-loop thread, so it must be quick — hand heavy work
  /// to another thread and answer later through Push(). Return true when
  /// the frame was consumed; false falls through to the protocol error.
  using FrameHook = std::function<bool(uint64_t conn_id, Frame frame)>;
  /// Observes every connection teardown (event-loop thread). Fires for all
  /// connections, whether or not the hook ever saw a frame from them.
  using DisconnectHook = std::function<void(uint64_t conn_id)>;

  /// `welcome_fields` is appended verbatim into the Welcome frame's JSON
  /// object (e.g. "\"users\":500,\"events\":40") so clients can size their
  /// workload from the handshake alone; empty adds nothing.
  NetServer(NetServerOptions options, Handler handler, Router router = nullptr,
            std::string welcome_fields = "");
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Installs the extension hooks (replication uses both). Must be called
  /// before Start(); the hooks run on the event-loop thread.
  void SetFrameHook(FrameHook hook) { frame_hook_ = std::move(hook); }
  void SetDisconnectHook(DisconnectHook hook) {
    disconnect_hook_ = std::move(hook);
  }

  /// Binds, listens, and spawns the event loop + worker threads.
  Status Start();

  /// Queues pre-encoded frame bytes for `conn_id` and wakes the event loop
  /// to flush them. Safe from any thread; a connection that has meanwhile
  /// closed silently drops the bytes. This is how replication fans rows out
  /// to followers without ever touching a socket off the loop thread.
  void Push(uint64_t conn_id, std::string frame_bytes);

  /// The bound port (resolves option 0 to the kernel's choice). Valid
  /// after a successful Start.
  int port() const { return port_; }

  /// Blocks until the server stopped — via Stop() or a shutdown request.
  void WaitForStop();

  /// Stops accepting, terminates the event loop, joins every thread and
  /// closes every connection. Requests still queued are dropped (their
  /// clients see EOF). Idempotent; the destructor calls it.
  void Stop();

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  NetServerCounters Counters() const;

 private:
  struct Connection;
  struct Job {
    uint64_t conn_id = 0;
    std::string request;
    std::chrono::steady_clock::time_point received{};
  };
  struct Completion {
    uint64_t conn_id = 0;
    std::string frame;  ///< pre-encoded response frame bytes
    bool shutdown = false;
  };

  void EventLoop();
  void WorkerLoop(BoundedQueue<Job>* queue);
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, Frame frame);
  void DrainCompletions();
  /// Appends bytes to the connection's output and flushes what the socket
  /// accepts now; arms EPOLLOUT for the rest.
  void SendBytes(Connection* conn, std::string bytes);
  void SendStatus(Connection* conn, const std::string& code,
                  const std::string& error);
  bool TryFlush(Connection* conn);  ///< false = connection died
  void CloseConnection(Connection* conn);
  void UpdateEpoll(Connection* conn);
  void WakeLoop();

  const NetServerOptions options_;
  const Handler handler_;
  const Router router_;
  const std::string welcome_fields_;
  FrameHook frame_hook_;            // set before Start, then immutable
  DisconnectHook disconnect_hook_;  // set before Start, then immutable

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;

  BoundedQueue<Job> read_jobs_;
  BoundedQueue<Job> op_jobs_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wake fd in epoll data
  uint64_t next_session_id_ = 1;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::once_flag stop_once_;

  std::thread event_thread_;
  std::vector<std::thread> workers_;

  // Net-layer metrics, shared with the global registry (docs/observability.md).
  std::shared_ptr<obs::Gauge> active_connections_;
  std::shared_ptr<obs::Counter> connections_total_;
  std::shared_ptr<obs::Counter> frames_in_total_;
  std::shared_ptr<obs::Counter> frames_out_total_;
  std::shared_ptr<obs::Counter> bytes_in_total_;
  std::shared_ptr<obs::Counter> bytes_out_total_;
  std::shared_ptr<obs::Counter> rejected_ops_total_;
  std::shared_ptr<obs::Counter> protocol_errors_total_;
  std::shared_ptr<obs::Counter> connections_refused_total_;
  std::shared_ptr<obs::Histogram> request_ms_;
};

}  // namespace net
}  // namespace gepc

#endif  // GEPC_NET_SERVER_H_
