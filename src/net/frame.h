#ifndef GEPC_NET_FRAME_H_
#define GEPC_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace gepc {
namespace net {

/// Wire framing for the gepc_serve socket protocol (GFRM): every message is
/// one length-prefixed binary frame,
///
///   offset  size  field
///   0       2     magic 0x4647 ("GF", little-endian u16)
///   2       1     version (kFrameVersion)
///   3       1     type (FrameType)
///   4       1     flags (FrameFlags bit set)
///   5       1     reserved, must be zero
///   6       2     checksum: FNV-1a-64 of the wire payload, low 16 bits (LE)
///   8       4     payload length in bytes (LE), <= kMaxFramePayload
///   12      n     payload
///
/// With kFlagCompressed the wire payload is a u32 raw-size prefix (LE)
/// followed by the GLZ1 stream (net/compress.h); the decoder hands callers
/// the decompressed payload. See docs/network-protocol.md.
inline constexpr uint16_t kFrameMagic = 0x4647;
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;

/// Hard payload cap: a hostile or desynchronized peer cannot make the
/// server allocate more than this per frame.
inline constexpr uint32_t kMaxFramePayload = 16u * 1024 * 1024;

enum class FrameType : uint8_t {
  kHello = 1,    ///< client -> server: open a session (JSON payload)
  kWelcome = 2,  ///< server -> client: session granted (JSON payload)
  kRequest = 3,  ///< client -> server: one JSONL command line
  kResponse = 4, ///< server -> client: the command's JSONL response
  kStatus = 5,   ///< server -> client: transport-level condition (JSON
                 ///< {"ok":false,"code":...,"error":...}); e.g. admission-
                 ///< control rejection or a protocol violation

  // Replication (src/repl/, docs/replication.md). A follower opens a
  // normal session (Hello/Welcome), then sends one kReplSync; everything
  // after that is pushed primary -> follower on the same connection.
  kReplSync = 6,       ///< follower -> primary: {"have":N[,"need_base":b]}
  kReplCkptBegin = 7,  ///< primary -> follower: {"version":V,"bytes":B}
  kReplCkptChunk = 8,  ///< primary -> follower: raw GCKP1 bytes (in order)
  kReplRow = 9,        ///< primary -> follower: "<seq> <GOPS1 row>"
  kReplHeartbeat = 10, ///< primary -> follower: {"version":V} keepalive
  kReplError = 11,     ///< primary -> follower: {"error":...}; the sync is
                       ///< dead, the follower must reconnect and resync
};

/// True iff `type` is one of the FrameType enumerators.
bool IsValidFrameType(uint8_t type);

enum FrameFlags : uint8_t {
  kFlagCompressed = 0x01,
};

struct Frame {
  FrameType type = FrameType::kStatus;
  std::string payload;
  /// Whether the payload travelled compressed (already inflated here).
  bool compressed = false;
};

/// Encodes one frame. With allow_compression, payloads of at least
/// kCompressMinBytes are GLZ1-compressed when that actually shrinks the
/// wire payload (raw-size prefix included) — otherwise sent raw.
std::string EncodeFrame(FrameType type, std::string_view payload,
                        bool allow_compression = false);

/// Incremental frame decoder for one connection: feed arbitrary byte
/// chunks as they arrive, pop complete frames. Any malformed header or
/// payload (bad magic/version/type, nonzero reserved byte, oversized
/// length, checksum mismatch, corrupt compression stream) is a permanent
/// error — framing is lost, the connection must be closed.
class FrameDecoder {
 public:
  enum class Next {
    kFrame,     ///< *out was filled with one complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream corrupt; *error says why, decoder is dead
  };

  void Feed(const char* data, size_t size);
  void Feed(std::string_view data) { Feed(data.data(), data.size()); }

  Next Pop(Frame* out, Status* error);

  /// Bytes buffered but not yet consumed by Pop.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  bool dead_ = false;
};

/// Low 16 bits of FNV-1a-64 — the frame checksum.
uint16_t FrameChecksum(std::string_view payload);

}  // namespace net
}  // namespace gepc

#endif  // GEPC_NET_FRAME_H_
