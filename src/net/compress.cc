#include "net/compress.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace gepc {
namespace net {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 131;      // (0x7f) + kMinMatch
constexpr size_t kMaxLiteralRun = 128;  // 0x7f + 1
constexpr size_t kMaxDistance = 65535;
constexpr size_t kHashBits = 15;

/// Multiplicative hash of the next 4 bytes — the match-candidate index.
inline uint32_t Hash4(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void FlushLiterals(std::string_view input, size_t start, size_t end,
                          std::string* out) {
  while (start < end) {
    const size_t run = std::min(kMaxLiteralRun, end - start);
    out->push_back(static_cast<char>(run - 1));
    out->append(input.data() + start, run);
    start += run;
  }
}

}  // namespace

std::string GlzCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  const auto* data = reinterpret_cast<const unsigned char*>(input.data());
  const size_t n = input.size();

  // Last position each 4-byte hash was seen at (+1 so 0 means "never").
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0);

  size_t literal_start = 0;
  size_t pos = 0;
  while (pos + kMinMatch <= n) {
    const uint32_t h = Hash4(data + pos);
    const uint32_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos + 1);
    if (candidate != 0) {
      const size_t match_pos = candidate - 1;
      const size_t distance = pos - match_pos;
      if (distance >= 1 && distance <= kMaxDistance) {
        size_t len = 0;
        const size_t limit = std::min(kMaxMatch, n - pos);
        while (len < limit && data[match_pos + len] == data[pos + len]) ++len;
        if (len >= kMinMatch) {
          FlushLiterals(input, literal_start, pos, &out);
          out.push_back(static_cast<char>(0x80 | (len - kMinMatch)));
          out.push_back(static_cast<char>(distance & 0xff));
          out.push_back(static_cast<char>((distance >> 8) & 0xff));
          // Seed the table inside the match so later repeats are found.
          const size_t stop = std::min(pos + len, n - kMinMatch);
          for (size_t k = pos + 1; k < stop; ++k) {
            table[Hash4(data + k)] = static_cast<uint32_t>(k + 1);
          }
          pos += len;
          literal_start = pos;
          continue;
        }
      }
    }
    ++pos;
  }
  FlushLiterals(input, literal_start, n, &out);
  return out;
}

Result<std::string> GlzDecompress(std::string_view compressed,
                                  size_t raw_size) {
  std::string out;
  out.reserve(raw_size);
  size_t pos = 0;
  const size_t n = compressed.size();
  while (pos < n) {
    const auto control = static_cast<unsigned char>(compressed[pos++]);
    if (control < 0x80) {
      const size_t run = static_cast<size_t>(control) + 1;
      if (pos + run > n) {
        return Status::InvalidArgument("GLZ1: truncated literal run");
      }
      if (out.size() + run > raw_size) {
        return Status::InvalidArgument("GLZ1: output exceeds declared size");
      }
      out.append(compressed.data() + pos, run);
      pos += run;
    } else {
      if (pos + 2 > n) {
        return Status::InvalidArgument("GLZ1: truncated match token");
      }
      const size_t len = static_cast<size_t>(control & 0x7f) + kMinMatch;
      const size_t distance =
          static_cast<unsigned char>(compressed[pos]) |
          (static_cast<size_t>(static_cast<unsigned char>(compressed[pos + 1]))
           << 8);
      pos += 2;
      if (distance == 0 || distance > out.size()) {
        return Status::InvalidArgument("GLZ1: match distance past start");
      }
      if (out.size() + len > raw_size) {
        return Status::InvalidArgument("GLZ1: output exceeds declared size");
      }
      // Byte-by-byte so overlapping matches (distance < len) replicate.
      size_t from = out.size() - distance;
      for (size_t k = 0; k < len; ++k) out.push_back(out[from + k]);
    }
  }
  if (out.size() != raw_size) {
    return Status::InvalidArgument(
        "GLZ1: stream produced " + std::to_string(out.size()) +
        " bytes, expected " + std::to_string(raw_size));
  }
  return out;
}

}  // namespace net
}  // namespace gepc
