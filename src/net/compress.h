#ifndef GEPC_NET_COMPRESS_H_
#define GEPC_NET_COMPRESS_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"

namespace gepc {
namespace net {

/// GLZ1 — the dependency-free byte-oriented LZ codec used for optional
/// frame-payload compression (docs/network-protocol.md). Format is a token
/// stream:
///
///   control byte c < 0x80 : literal run of c+1 bytes follows (1..128)
///   control byte c >= 0x80: match of length (c & 0x7f) + 4 (4..131) at
///                           distance d (u16 little-endian, 1..65535)
///                           counted back from the current output position
///
/// Matches may overlap themselves (d < len copies byte-by-byte), which is
/// what makes runs compress. The codec is deterministic: the same input
/// always yields the same output, so golden tests and cross-version replay
/// stay stable. It is a transport codec, not an archival one — JSON frames
/// shrink 3-6x, which is all the wire needs.
///
/// Compresses `input`. The output is self-delimiting only together with the
/// raw size, which the frame layer carries next to the compressed bytes.
std::string GlzCompress(std::string_view input);

/// Decompresses exactly `raw_size` bytes. kInvalidArgument on any
/// malformed stream: truncated token, distance past the start, or a stream
/// that produces more or fewer than `raw_size` bytes. Never reads or
/// writes out of bounds on hostile input.
Result<std::string> GlzDecompress(std::string_view compressed,
                                  size_t raw_size);

/// Payloads below this size skip compression — the token overhead and the
/// extra copy are not worth it.
inline constexpr size_t kCompressMinBytes = 128;

}  // namespace net
}  // namespace gepc

#endif  // GEPC_NET_COMPRESS_H_
