#include "net/frame.h"

#include <cstring>

#include "net/compress.h"

namespace gepc {
namespace net {
namespace {

inline void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

inline uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}

inline uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

bool IsValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kReplError);
}

uint16_t FrameChecksum(std::string_view payload) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<uint16_t>(h & 0xffff);
}

std::string EncodeFrame(FrameType type, std::string_view payload,
                        bool allow_compression) {
  uint8_t flags = 0;
  std::string compressed_payload;
  std::string_view wire = payload;
  if (allow_compression && payload.size() >= kCompressMinBytes) {
    std::string packed = GlzCompress(payload);
    if (packed.size() + 4 < payload.size()) {
      compressed_payload.reserve(packed.size() + 4);
      PutU32(static_cast<uint32_t>(payload.size()), &compressed_payload);
      compressed_payload += packed;
      wire = compressed_payload;
      flags |= kFlagCompressed;
    }
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + wire.size());
  PutU16(kFrameMagic, &out);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags));
  out.push_back(0);  // reserved
  PutU16(FrameChecksum(wire), &out);
  PutU32(static_cast<uint32_t>(wire.size()), &out);
  out += wire;
  return out;
}

void FrameDecoder::Feed(const char* data, size_t size) {
  if (dead_) return;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // doesn't grow its buffer forever.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameDecoder::Next FrameDecoder::Pop(Frame* out, Status* error) {
  if (dead_) {
    *error = Status::FailedPrecondition("frame stream already corrupt");
    return Next::kError;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Next::kNeedMore;
  const char* header = buffer_.data() + consumed_;

  auto fail = [&](std::string message) {
    dead_ = true;
    *error = Status::InvalidArgument("frame: " + std::move(message));
    return Next::kError;
  };

  if (GetU16(header) != kFrameMagic) return fail("bad magic");
  const auto version = static_cast<uint8_t>(header[2]);
  if (version != kFrameVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  const auto type = static_cast<uint8_t>(header[3]);
  if (!IsValidFrameType(type)) {
    return fail("unknown type " + std::to_string(type));
  }
  const auto flags = static_cast<uint8_t>(header[4]);
  if ((flags & ~kFlagCompressed) != 0) {
    return fail("unknown flags " + std::to_string(flags));
  }
  if (header[5] != 0) return fail("nonzero reserved byte");
  const uint16_t checksum = GetU16(header + 6);
  const uint32_t length = GetU32(header + 8);
  if (length > kMaxFramePayload) {
    return fail("payload length " + std::to_string(length) + " exceeds cap");
  }
  if (available < kFrameHeaderBytes + length) return Next::kNeedMore;

  const std::string_view wire(header + kFrameHeaderBytes, length);
  if (FrameChecksum(wire) != checksum) return fail("checksum mismatch");

  out->type = static_cast<FrameType>(type);
  out->compressed = (flags & kFlagCompressed) != 0;
  if (out->compressed) {
    if (length < 4) return fail("compressed payload shorter than its prefix");
    const uint32_t raw_size = GetU32(wire.data());
    if (raw_size > kMaxFramePayload) {
      return fail("declared raw size exceeds cap");
    }
    auto inflated = GlzDecompress(wire.substr(4), raw_size);
    if (!inflated.ok()) return fail(inflated.status().message());
    out->payload = *std::move(inflated);
  } else {
    out->payload.assign(wire.data(), wire.size());
  }
  consumed_ += kFrameHeaderBytes + length;
  return Next::kFrame;
}

}  // namespace net
}  // namespace gepc
