#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "fault/fault.h"
#include "service/jsonl.h"

namespace gepc {
namespace net {
namespace {

constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string StatusPayload(const std::string& code, const std::string& error) {
  JsonWriter writer;
  writer.Add("ok", false);
  writer.Add("code", code);
  writer.Add("error", error);
  return writer.Finish();
}

}  // namespace

/// One client connection; owned by the event-loop thread exclusively
/// (workers refer to connections only by id through the completion queue,
/// so a connection that dies mid-request simply drops its completions).
struct NetServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  uint64_t session = 0;  ///< 0 until the Hello/Welcome handshake
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_off = 0;
  bool epollout_armed = false;
  /// Close as soon as the outbuf drains (set after protocol errors so the
  /// Status frame still reaches the peer).
  bool closing = false;
};

NetServer::NetServer(NetServerOptions options, Handler handler, Router router,
                     std::string welcome_fields)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      router_(std::move(router)),
      welcome_fields_(std::move(welcome_fields)),
      read_jobs_(options_.read_queue_capacity),
      op_jobs_(options_.op_queue_capacity) {
  auto& reg = obs::Registry::Global();
  active_connections_ = reg.GetGauge(
      "gepc_net_active_connections", "Open client connections");
  connections_total_ = reg.GetCounter(
      "gepc_net_connections_total", "Client connections accepted");
  frames_in_total_ =
      reg.GetCounter("gepc_net_frames_in_total", "Frames received");
  frames_out_total_ =
      reg.GetCounter("gepc_net_frames_out_total", "Frames sent");
  bytes_in_total_ =
      reg.GetCounter("gepc_net_bytes_in_total", "Payload bytes received");
  bytes_out_total_ =
      reg.GetCounter("gepc_net_bytes_out_total", "Payload bytes sent");
  rejected_ops_total_ = reg.GetCounter(
      "gepc_net_rejected_ops_total",
      "Requests rejected with a Status frame by admission control");
  protocol_errors_total_ = reg.GetCounter(
      "gepc_net_protocol_errors_total",
      "Malformed frames / commands before the handshake");
  connections_refused_total_ = reg.GetCounter(
      "gepc_net_connections_refused_total",
      "Connections turned away over max_connections");
  request_ms_ = reg.GetHistogram(
      "gepc_net_request_ms",
      "Frame receipt to response enqueue, per request");
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host '" + options_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, 512) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.u64 = kWakeTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }

  for (int i = 0; i < std::max(1, options_.read_workers); ++i) {
    workers_.emplace_back([this] { WorkerLoop(&read_jobs_); });
  }
  for (int i = 0; i < std::max(1, options_.op_workers); ++i) {
    workers_.emplace_back([this] { WorkerLoop(&op_jobs_); });
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void NetServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void NetServer::WaitForStop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [&] { return stopped_.load(); });
}

void NetServer::Stop() {
  std::call_once(stop_once_, [&] {
    stop_requested_.store(true, std::memory_order_release);
    WakeLoop();
    if (event_thread_.joinable()) event_thread_.join();
    read_jobs_.Close();
    op_jobs_.Close();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) {
        close(conn->fd);
        active_connections_->Add(-1);
      }
    }
    conns_.clear();
    if (listen_fd_ >= 0) close(listen_fd_);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    stopped_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
    }
    stop_cv_.notify_all();
  });
}

NetServerCounters NetServer::Counters() const {
  NetServerCounters counters;
  counters.connections_accepted = connections_total_->value();
  counters.active_connections = active_connections_->value();
  counters.frames_in = frames_in_total_->value();
  counters.frames_out = frames_out_total_->value();
  counters.rejected_ops = rejected_ops_total_->value();
  counters.protocol_errors = protocol_errors_total_->value();
  counters.connections_refused = connections_refused_total_->value();
  return counters;
}

void NetServer::WorkerLoop(BoundedQueue<Job>* queue) {
  Job job;
  while (queue->Pop(&job)) {
    HandlerResult result = handler_(job.request);
    if (obs::Enabled()) {
      request_ms_->Observe(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - job.received)
                               .count());
    }
    Completion completion;
    completion.conn_id = job.conn_id;
    completion.shutdown = result.shutdown;
    completion.frame = EncodeFrame(FrameType::kResponse, result.response,
                                   options_.compress);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(completion));
    }
    WakeLoop();
  }
}

void NetServer::EventLoop() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/500);
    if (n < 0) {
      if (errno == EINTR) continue;
      GEPC_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        HandleAccept();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed while events were pending
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(conn);
        if (conns_.find(tag) == conns_.end()) continue;
      }
      if (events[i].events & EPOLLOUT) {
        TryFlush(conn);
      }
    }
    DrainCompletions();
  }
  // Last gasp: deliver anything already queued (e.g. the shutdown ack)
  // without blocking the teardown on a slow peer.
  DrainCompletions();
}

void NetServer::HandleAccept() {
  while (true) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      GEPC_LOG(Warning) << "accept: " << std::strerror(errno);
      return;
    }
    // net.accept (docs/fault-injection.md): a firing fault drops the
    // freshly accepted connection, simulating post-accept resource
    // exhaustion. The accept loop itself keeps running.
    if (!fault::Inject("net.accept").ok()) {
      close(fd);
      continue;
    }
    if (stop_requested_.load(std::memory_order_acquire) ||
        static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Over capacity: best-effort Status frame, then goodbye. Never
      // blocks — the frame is small and the socket buffer empty.
      const std::string frame = EncodeFrame(
          FrameType::kStatus,
          StatusPayload("unavailable", "server full: " +
                                           std::to_string(conns_.size()) +
                                           " connections"));
      [[maybe_unused]] const ssize_t n = write(fd, frame.data(), frame.size());
      close(fd);
      connections_refused_total_->Increment();
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      GEPC_LOG(Warning) << "epoll_ctl(add conn): " << std::strerror(errno);
      close(fd);
      continue;
    }
    connections_total_->Increment();
    active_connections_->Add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::HandleReadable(Connection* conn) {
  char buffer[kReadChunk];
  while (true) {
    // net.read: a firing fault poisons this connection's read path, as a
    // peer reset would.
    if (!fault::Inject("net.read").ok()) {
      CloseConnection(conn);
      return;
    }
    const ssize_t n = read(conn->fd, buffer, sizeof(buffer));
    if (n == 0) {
      CloseConnection(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn);
      return;
    }
    bytes_in_total_->Increment(static_cast<uint64_t>(n));
    conn->decoder.Feed(buffer, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buffer)) break;
  }

  // SendBytes/TryFlush may destroy the connection on a write error, so
  // every step below re-validates through the id before touching `conn`.
  const uint64_t id = conn->id;
  Frame frame;
  Status error;
  while (true) {
    const FrameDecoder::Next next = conn->decoder.Pop(&frame, &error);
    if (next == FrameDecoder::Next::kNeedMore) break;
    if (next == FrameDecoder::Next::kError) {
      protocol_errors_total_->Increment();
      conn->closing = true;  // Status first, then goodbye
      SendStatus(conn, StatusCodeToString(error.code()), error.message());
      return;
    }
    frames_in_total_->Increment();
    HandleFrame(conn, std::move(frame));
    if (conns_.find(id) == conns_.end()) return;  // closed underneath
    if (conn->closing) return;
  }
}

void NetServer::HandleFrame(Connection* conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      if (conn->session != 0) {
        protocol_errors_total_->Increment();
        conn->closing = true;
        SendStatus(conn, "failed_precondition", "session already open");
        return;
      }
      conn->session = next_session_id_++;
      JsonWriter welcome;
      welcome.Add("ok", true);
      welcome.Add("session", conn->session);
      welcome.Add("frame_version", static_cast<int>(kFrameVersion));
      std::string payload = welcome.Finish();
      if (!welcome_fields_.empty()) {
        payload.back() = ',';  // splice the host-provided fields in
        payload += welcome_fields_;
        payload += '}';
      }
      SendBytes(conn,
                EncodeFrame(FrameType::kWelcome, payload, options_.compress));
      return;
    }
    case FrameType::kRequest: {
      if (conn->session == 0) {
        protocol_errors_total_->Increment();
        conn->closing = true;
        SendStatus(conn, "failed_precondition",
                   "hello required before requests");
        return;
      }
      Job job;
      job.conn_id = conn->id;
      job.request = std::move(frame.payload);
      job.received = std::chrono::steady_clock::now();
      const bool is_op = router_ == nullptr || router_(job.request);
      BoundedQueue<Job>* queue = is_op ? &op_jobs_ : &read_jobs_;
      if (!queue->TryPush(std::move(job))) {
        // Admission control: the op (or read) pool is saturated. The
        // client gets backpressure as data — a Status frame it can retry
        // on — and the event loop moves straight to the next frame.
        rejected_ops_total_->Increment();
        SendStatus(conn, "unavailable",
                   is_op ? "saturated: op queue full"
                         : "saturated: read queue full");
      }
      return;
    }
    default: {
      // Extension frames (replication sync, future subsystems) are offered
      // to the frame hook once the session is established; anything it does
      // not consume is a protocol violation.
      if (frame_hook_ && conn->session != 0 &&
          frame_hook_(conn->id, std::move(frame))) {
        return;
      }
      protocol_errors_total_->Increment();
      conn->closing = true;
      SendStatus(conn, "invalid_argument",
                 "unexpected frame type from client");
      return;
    }
  }
}

void NetServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it != conns_.end()) {
      // May close (and erase) the connection on a write error.
      SendBytes(it->second.get(), std::move(completion.frame));
    }
    if (completion.shutdown) {
      // Deliver the ack, then stop serving: the loop exits on its next
      // iteration and Stop() (from WaitForStop's caller) joins the rest.
      it = conns_.find(completion.conn_id);
      if (it != conns_.end()) TryFlush(it->second.get());
      stop_requested_.store(true, std::memory_order_release);
      stopped_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(stop_mu_);
      }
      stop_cv_.notify_all();
    }
  }
}

void NetServer::SendBytes(Connection* conn, std::string bytes) {
  frames_out_total_->Increment();
  bytes_out_total_->Increment(bytes.size());
  if (conn->outbuf.empty()) {
    conn->outbuf = std::move(bytes);
    conn->out_off = 0;
  } else {
    conn->outbuf += bytes;
  }
  TryFlush(conn);
}

void NetServer::SendStatus(Connection* conn, const std::string& code,
                           const std::string& error) {
  SendBytes(conn, EncodeFrame(FrameType::kStatus, StatusPayload(code, error)));
}

bool NetServer::TryFlush(Connection* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    // net.write: a firing fault poisons the write path (peer gone).
    if (!fault::Inject("net.write").ok()) {
      CloseConnection(conn);
      return false;
    }
    const ssize_t n = write(conn->fd, conn->outbuf.data() + conn->out_off,
                            conn->outbuf.size() - conn->out_off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn);
      return false;
    }
    conn->out_off += static_cast<size_t>(n);
  }
  if (conn->out_off >= conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
    if (conn->closing) {
      CloseConnection(conn);
      return false;
    }
    if (conn->epollout_armed) {
      conn->epollout_armed = false;
      UpdateEpoll(conn);
    }
    return true;
  }
  if (!conn->epollout_armed) {
    conn->epollout_armed = true;
    UpdateEpoll(conn);
  }
  return true;
}

void NetServer::UpdateEpoll(Connection* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->epollout_armed ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::CloseConnection(Connection* conn) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  active_connections_->Add(-1);
  const uint64_t id = conn->id;
  conns_.erase(conn->id);  // destroys *conn
  if (disconnect_hook_) disconnect_hook_(id);
}

void NetServer::Push(uint64_t conn_id, std::string frame_bytes) {
  Completion completion;
  completion.conn_id = conn_id;
  completion.frame = std::move(frame_bytes);
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  WakeLoop();
}

}  // namespace net
}  // namespace gepc
