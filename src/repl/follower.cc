#include "repl/follower.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "ckpt/checkpoint.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "repl/wire.h"
#include "service/journal.h"

namespace gepc {
namespace repl {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status EnsureDir(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory");
  if (mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal("mkdir " + dir + ": " + std::strerror(errno));
}

/// Hard cap on a shipped checkpoint: a desynchronized or hostile primary
/// cannot make the follower buffer unbounded chunk bytes.
constexpr uint64_t kMaxCheckpointBytes = 1ull << 31;  // 2 GiB

}  // namespace

Follower::Follower(FollowerOptions options, ServeRole* role)
    : options_(std::move(options)), role_(role) {
  auto& registry = obs::Registry::Global();
  lag_rows_gauge_ = registry.GetGauge(
      "gepc_repl_lag_rows", "Committed rows the primary is ahead of us");
  lag_ms_gauge_ = registry.GetGauge(
      "gepc_repl_lag_ms", "How long the replica has continuously been behind");
  rows_applied_total_ = registry.GetCounter("gepc_repl_rows_applied_total",
                                            "Tailed rows applied locally");
  reconnects_total_ = registry.GetCounter(
      "gepc_repl_reconnects_total", "Times the primary connection was rebuilt");
  promotions_total_ = registry.GetCounter(
      "gepc_repl_promotions_total", "Follower-to-primary promotions");
  checkpoints_received_total_ =
      registry.GetCounter("gepc_repl_checkpoints_received_total",
                          "Checkpoints bootstrapped from the primary");
  resyncs_total_ = registry.GetCounter(
      "gepc_repl_resyncs_total", "Tail desyncs that forced a fresh sync");
  apply_ms_ = registry.GetHistogram("gepc_repl_apply_ms",
                                    "Tailed-row apply latency");
}

Result<std::unique_ptr<Follower>> Follower::Start(FollowerOptions options,
                                                  ServeRole* role) {
  if (role == nullptr) {
    return Status::InvalidArgument("follower needs a ServeRole to flip");
  }
  if (options.journal_path.empty() || options.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "follower needs both --journal and --checkpoint-dir (its promotion "
        "and crash recovery depend on local durability)");
  }
  if (options.primary_port <= 0) {
    return Status::InvalidArgument("follower needs the primary's port");
  }
  GEPC_RETURN_IF_ERROR(EnsureDir(options.checkpoint_dir));
  role->primary =
      options.primary_host + ":" + std::to_string(options.primary_port);
  role->follower.store(true, std::memory_order_release);

  std::unique_ptr<Follower> follower(new Follower(std::move(options), role));
  const int64_t deadline =
      NowMs() + std::max(1, follower->options_.bootstrap_timeout_ms);
  int backoff = std::max(1, follower->options_.reconnect_backoff_initial_ms);
  Status last = Status::OK();
  for (;;) {
    last = follower->BootstrapOnce();
    if (last.ok()) break;
    follower->Disconnect();
    if (NowMs() + backoff > deadline) {
      role->follower.store(false, std::memory_order_release);
      return Status(last.code(), "bootstrap from " + role->primary +
                                     " failed: " + last.message());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min(backoff * 2,
                       std::max(1, follower->options_.reconnect_backoff_max_ms));
  }
  follower->tail_thread_ = std::thread([f = follower.get()] { f->TailLoop(); });
  return follower;
}

Follower::~Follower() {
  Stop();
  service_.reset();
}

void Follower::Stop() {
  stop_.store(true, std::memory_order_release);
  if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);  // wake the tail thread's poll
  if (tail_thread_.joinable()) tail_thread_.join();
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

FollowerStats Follower::stats() const {
  FollowerStats stats;
  stats.applied = applied_.load(std::memory_order_acquire);
  stats.primary_seen = primary_seen_.load(std::memory_order_acquire);
  stats.rows_applied = rows_applied_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  stats.checkpoints_received =
      checkpoints_received_.load(std::memory_order_relaxed);
  stats.connected = connected_.load(std::memory_order_acquire);
  stats.promoted = promoted_.load(std::memory_order_acquire);
  return stats;
}

// ---------------------------------------------------------------------------
// Socket plumbing (tail thread, plus the bootstrap call from Start)
// ---------------------------------------------------------------------------

Status Follower::Connect() {
  Disconnect();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port = std::to_string(options_.primary_port);
  if (getaddrinfo(options_.primary_host.c_str(), port.c_str(), &hints,
                  &found) != 0 ||
      found == nullptr) {
    return Status::Unavailable("cannot resolve " + options_.primary_host);
  }
  int fd = socket(found->ai_family, found->ai_socktype, found->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(found);
    return Status::Unavailable("socket: " + std::string(std::strerror(errno)));
  }
  const int rc = connect(fd, found->ai_addr, found->ai_addrlen);
  freeaddrinfo(found);
  if (rc != 0) {
    close(fd);
    return Status::Unavailable("connect " + role_->primary + ": " +
                               std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = net::FrameDecoder();
  connected_.store(true, std::memory_order_release);
  return Status::OK();
}

void Follower::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  connected_.store(false, std::memory_order_release);
  decoder_ = net::FrameDecoder();
}

Status Follower::SendFrame(net::FrameType type, const std::string& payload) {
  const std::string bytes = net::EncodeFrame(type, payload);
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + offset, bytes.size() - offset,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable("send: " + std::string(std::strerror(errno)));
    }
    offset += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Follower::RecvFrame(net::Frame* out, int timeout_ms) {
  const int64_t deadline = NowMs() + std::max(1, timeout_ms);
  char buffer[65536];
  Status error;
  for (;;) {
    switch (decoder_.Pop(out, &error)) {
      case net::FrameDecoder::Next::kFrame:
        return Status::OK();
      case net::FrameDecoder::Next::kError:
        return error;
      case net::FrameDecoder::Next::kNeedMore:
        break;
    }
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) return Status::Unavailable("frame read timed out");
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll: " + std::string(std::strerror(errno)));
    }
    if (ready == 0) return Status::Unavailable("frame read timed out");
    const ssize_t n = read(fd_, buffer, sizeof(buffer));
    if (n == 0) return Status::NotFound("primary closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NotFound("read: " + std::string(std::strerror(errno)));
    }
    decoder_.Feed(buffer, static_cast<size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------------

bool Follower::TryLocalRecovery() {
  // Local state is usable iff a checkpoint exists: the journal alone is a
  // delta stream with nothing to apply it to. (A fresh follower directory
  // takes the need_base path and gets its base shipped.)
  auto listed = ListCheckpoints(options_.checkpoint_dir);
  if (!listed.ok() || listed->empty()) return false;
  ServiceOptions service_options;
  service_options.journal_path = options_.journal_path;
  service_options.checkpoint_dir = options_.checkpoint_dir;
  service_options.queue_capacity = options_.queue_capacity;
  service_options.snapshot_every = options_.snapshot_every;
  service_options.checkpoint_every = options_.checkpoint_every;
  service_options.checkpoint_retain = options_.checkpoint_retain;
  auto recovered =
      PlanningService::Recover(Instance{}, Plan{}, std::move(service_options));
  if (!recovered.ok()) {
    GEPC_LOG(Warning) << "repl: local recovery failed ("
                      << recovered.status().message()
                      << "); bootstrapping from the primary instead";
    return false;
  }
  service_ = std::move(*recovered);
  applied_.store(service_->committed_sequence(), std::memory_order_release);
  return true;
}

Status Follower::ReceiveCheckpoint(uint64_t version, uint64_t bytes) {
  if (bytes > kMaxCheckpointBytes) {
    return Status::InvalidArgument("shipped checkpoint implausibly large");
  }
  std::string blob;
  blob.reserve(bytes);
  while (blob.size() < bytes) {
    net::Frame frame;
    GEPC_RETURN_IF_ERROR(
        RecvFrame(&frame, std::max(1, options_.heartbeat_timeout_ms)));
    if (frame.type != net::FrameType::kReplCkptChunk) {
      return Status::InvalidArgument("expected checkpoint chunk, got frame " +
                                     std::to_string(int(frame.type)));
    }
    blob += frame.payload;
  }
  if (blob.size() != bytes) {
    return Status::InvalidArgument("checkpoint chunk overshoot");
  }
  auto data = DecodeCheckpoint(blob);
  GEPC_RETURN_IF_ERROR(data.status());
  if (data->version != version) {
    return Status::InvalidArgument("checkpoint version mismatch");
  }
  // Publish locally through the same atomic temp->fsync->rename path the
  // primary used (the GCKP1 encoding is deterministic, so the local file is
  // byte-identical to the shipped one), then boot through standard crash
  // recovery — which also rebases a stale local journal past the new base.
  service_.reset();
  auto path = WriteCheckpoint(options_.checkpoint_dir, data->instance,
                              data->plan, version);
  GEPC_RETURN_IF_ERROR(path.status());
  ServiceOptions service_options;
  service_options.journal_path = options_.journal_path;
  service_options.checkpoint_dir = options_.checkpoint_dir;
  service_options.queue_capacity = options_.queue_capacity;
  service_options.snapshot_every = options_.snapshot_every;
  service_options.checkpoint_every = options_.checkpoint_every;
  service_options.checkpoint_retain = options_.checkpoint_retain;
  auto recovered =
      PlanningService::Recover(Instance{}, Plan{}, std::move(service_options));
  GEPC_RETURN_IF_ERROR(recovered.status());
  service_ = std::move(*recovered);
  applied_.store(service_->committed_sequence(), std::memory_order_release);
  primary_seen_.store(
      std::max(primary_seen_.load(std::memory_order_acquire), version),
      std::memory_order_release);
  checkpoints_received_.fetch_add(1, std::memory_order_relaxed);
  checkpoints_received_total_->Increment();
  GEPC_LOG(Info) << "repl: bootstrapped from shipped checkpoint at version "
                 << version << " (" << bytes << " bytes)";
  return Status::OK();
}

Status Follower::BootstrapOnce() {
  if (service_ == nullptr) TryLocalRecovery();
  GEPC_RETURN_IF_ERROR(Connect());
  GEPC_RETURN_IF_ERROR(SendFrame(net::FrameType::kHello, "{}"));
  net::Frame frame;
  GEPC_RETURN_IF_ERROR(
      RecvFrame(&frame, std::max(1, options_.heartbeat_timeout_ms)));
  if (frame.type != net::FrameType::kWelcome) {
    return Status::Unavailable("primary did not welcome us");
  }
  SyncRequest request;
  request.have = applied_.load(std::memory_order_acquire);
  request.need_base = service_ == nullptr;
  GEPC_RETURN_IF_ERROR(
      SendFrame(net::FrameType::kReplSync, EncodeSyncRequest(request)));
  // Wait for the primary's first replication frame: it tells us whether
  // this sync bridges from our journal position (rows/heartbeat) or ships a
  // base checkpoint first. Everything after it belongs to the tail loop.
  GEPC_RETURN_IF_ERROR(
      RecvFrame(&frame, std::max(1, options_.heartbeat_timeout_ms)));
  switch (frame.type) {
    case net::FrameType::kReplCkptBegin: {
      auto begin = ParseCkptBegin(frame.payload);
      GEPC_RETURN_IF_ERROR(begin.status());
      return ReceiveCheckpoint(begin->version, begin->bytes);
    }
    case net::FrameType::kReplRow:
      if (service_ == nullptr) {
        return Status::InvalidArgument("row before base state");
      }
      return ApplyRow(frame.payload);
    case net::FrameType::kReplHeartbeat: {
      auto version = ParseHeartbeat(frame.payload);
      GEPC_RETURN_IF_ERROR(version.status());
      if (service_ == nullptr) {
        return Status::InvalidArgument("heartbeat before base state");
      }
      primary_seen_.store(
          std::max(primary_seen_.load(std::memory_order_acquire), *version),
          std::memory_order_release);
      UpdateLagGauges();
      return Status::OK();
    }
    case net::FrameType::kReplError:
      return Status::Unavailable("primary rejected sync: " +
                                 ParseReplError(frame.payload));
    default:
      return Status::InvalidArgument("unexpected frame during bootstrap");
  }
}

// ---------------------------------------------------------------------------
// Tail
// ---------------------------------------------------------------------------

Status Follower::ApplyRow(const std::string& payload) {
  auto row = ParseRow(payload);
  GEPC_RETURN_IF_ERROR(row.status());
  const uint64_t applied = applied_.load(std::memory_order_acquire);
  if (row->sequence <= applied) return Status::OK();  // duplicate after resync
  if (row->sequence != applied + 1) {
    return Status::Unavailable("tail gap: have " + std::to_string(applied) +
                               ", got row " + std::to_string(row->sequence));
  }
  GEPC_INJECT_FAULT("repl.tail");
  const auto start = std::chrono::steady_clock::now();
  ApplyOutcome outcome = service_->Apply(std::move(row->op));
  if (outcome.sequence == 0) {
    // Never journaled locally (local IO failure / shutdown): the row is
    // not durable here, so a resync must re-fetch it.
    return Status::Unavailable("local apply failed: " + outcome.error);
  }
  if (outcome.sequence != row->sequence) {
    GEPC_LOG(Error) << "repl: sequence divergence — primary row "
                    << row->sequence << " landed locally as "
                    << outcome.sequence;
    return Status::Internal("sequence divergence");
  }
  applied_.store(row->sequence, std::memory_order_release);
  primary_seen_.store(
      std::max(primary_seen_.load(std::memory_order_acquire), row->sequence),
      std::memory_order_release);
  rows_applied_.fetch_add(1, std::memory_order_relaxed);
  rows_applied_total_->Increment();
  if (obs::Enabled()) {
    apply_ms_->Observe(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count());
  }
  UpdateLagGauges();
  return Status::OK();
}

void Follower::UpdateLagGauges() {
  const uint64_t seen = primary_seen_.load(std::memory_order_acquire);
  const uint64_t applied = applied_.load(std::memory_order_acquire);
  const int64_t lag =
      seen > applied ? static_cast<int64_t>(seen - applied) : 0;
  lag_rows_gauge_->Set(lag);
  if (lag == 0) {
    behind_since_ms_.store(0, std::memory_order_relaxed);
    lag_ms_gauge_->Set(0);
    return;
  }
  const int64_t now = NowMs();
  int64_t since = behind_since_ms_.load(std::memory_order_relaxed);
  if (since == 0) {
    behind_since_ms_.store(now, std::memory_order_relaxed);
    since = now;
  }
  lag_ms_gauge_->Set(now - since);
}

void Follower::TailLoop() {
  int backoff = std::max(1, options_.reconnect_backoff_initial_ms);
  int64_t disconnected_at = 0;  // 0 = currently connected
  while (!stop_.load(std::memory_order_acquire) &&
         !promoted_.load(std::memory_order_acquire)) {
    if (fd_ < 0) {
      if (disconnected_at == 0) disconnected_at = NowMs();
      if (options_.promote_after_ms > 0 &&
          NowMs() - disconnected_at >= options_.promote_after_ms) {
        if (PromoteNow().ok()) return;
        // An injected repl.promote abort: keep reconnect attempts going and
        // retry the promotion on the next pass.
      }
      Status status = BootstrapOnce();
      if (stop_.load(std::memory_order_acquire)) return;
      if (!status.ok()) {
        Disconnect();
        resyncs_total_->Increment();
        GEPC_LOG(Warning) << "repl: resync with " << role_->primary
                          << " failed: " << status.message();
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2,
                           std::max(1, options_.reconnect_backoff_max_ms));
        continue;
      }
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      reconnects_total_->Increment();
      backoff = std::max(1, options_.reconnect_backoff_initial_ms);
      disconnected_at = 0;
    }
    net::Frame frame;
    Status status =
        RecvFrame(&frame, std::max(1, options_.heartbeat_timeout_ms));
    if (stop_.load(std::memory_order_acquire)) return;
    if (!status.ok()) {
      GEPC_LOG(Warning) << "repl: lost primary " << role_->primary << ": "
                        << status.message();
      Disconnect();
      continue;
    }
    switch (frame.type) {
      case net::FrameType::kReplRow: {
        Status applied = ApplyRow(frame.payload);
        if (!applied.ok()) {
          GEPC_LOG(Warning) << "repl: tail apply failed ("
                            << applied.message() << "); resyncing";
          Disconnect();
        }
        break;
      }
      case net::FrameType::kReplHeartbeat: {
        auto version = ParseHeartbeat(frame.payload);
        if (version.ok()) {
          primary_seen_.store(std::max(primary_seen_.load(
                                           std::memory_order_acquire),
                                       *version),
                              std::memory_order_release);
          UpdateLagGauges();
        }
        break;
      }
      case net::FrameType::kReplError:
        GEPC_LOG(Warning) << "repl: primary declared the sync dead: "
                          << ParseReplError(frame.payload);
        Disconnect();
        break;
      case net::FrameType::kReplCkptBegin: {
        // A mid-tail checkpoint offer means the primary compacted past our
        // position while we were disconnected AND our live service cannot
        // be hot-swapped (front ends hold its pointer). Drain the stream
        // and resync — retention pinning makes this path unreachable in
        // healthy operation; persistent arrival means operator restart.
        auto begin = ParseCkptBegin(frame.payload);
        GEPC_LOG(Error)
            << "repl: primary offers a checkpoint mid-tail (version "
            << (begin.ok() ? begin->version : 0)
            << "); cannot swap a live service — restart this follower to "
               "re-bootstrap";
        Disconnect();
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max(1, options_.reconnect_backoff_max_ms)));
        break;
      }
      default:
        break;  // Status/Response frames on this connection are ignorable
    }
  }
}

// ---------------------------------------------------------------------------
// Promotion
// ---------------------------------------------------------------------------

Status Follower::PromoteNow() {
  std::lock_guard<std::mutex> lock(promote_mu_);
  if (promoted_.load(std::memory_order_acquire)) return Status::OK();
  if (service_ == nullptr) {
    return Status::FailedPrecondition("cannot promote before bootstrap");
  }
  GEPC_INJECT_FAULT("repl.promote");
  promoted_.store(true, std::memory_order_release);
  if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);  // wake the tail thread to exit
  // Seal the replayed state: a checkpoint at the applied version proves the
  // state durable and rebases (compacts) the journal there, so the promoted
  // primary's journal starts at its own version.
  CheckpointOutcome sealed = service_->Checkpoint();
  if (!sealed.published) {
    GEPC_LOG(Warning) << "repl: promotion seal checkpoint failed ("
                      << sealed.error << "); promoting anyway — the journal "
                      << "still carries the full tail";
  }
  role_->follower.store(false, std::memory_order_release);
  promotions_total_->Increment();
  GEPC_LOG(Info) << "repl: promoted to primary at version "
                 << applied_.load(std::memory_order_acquire);
  return Status::OK();
}

}  // namespace repl
}  // namespace gepc
