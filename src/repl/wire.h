#ifndef GEPC_REPL_WIRE_H_
#define GEPC_REPL_WIRE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "iep/planner.h"

namespace gepc {
namespace repl {

/// Payload codecs for the replication frame types (net/frame.h, types
/// kReplSync..kReplError; docs/replication.md). Control payloads are flat
/// JSON objects like the rest of the protocol; row payloads are the GOPS1
/// row itself prefixed with its decimal sequence, so a follower journals
/// byte-identical rows to the primary's.

/// kReplSync, follower -> primary.
struct SyncRequest {
  /// Sequence the follower has fully applied; the primary ships everything
  /// after it.
  uint64_t have = 0;
  /// True when the follower holds no base state at all — the primary must
  /// ship a checkpoint even if its journal could bridge from `have`.
  bool need_base = false;
};

std::string EncodeSyncRequest(const SyncRequest& request);
Result<SyncRequest> ParseSyncRequest(const std::string& payload);

/// kReplCkptBegin, primary -> follower: the GCKP1 file that follows in
/// kReplCkptChunk frames.
struct CkptBegin {
  uint64_t version = 0;
  uint64_t bytes = 0;
};

std::string EncodeCkptBegin(const CkptBegin& begin);
Result<CkptBegin> ParseCkptBegin(const std::string& payload);

/// kReplHeartbeat, primary -> follower: {"version":<committed sequence>}.
std::string EncodeHeartbeat(uint64_t version);
Result<uint64_t> ParseHeartbeat(const std::string& payload);

/// kReplRow, primary -> follower: "<sequence> <GOPS1 row text>". The row
/// text is exactly what SaveOp wrote into the primary's journal, without
/// the trailing newline.
struct ReplRow {
  uint64_t sequence = 0;
  AtomicOp op;
};

Result<std::string> EncodeRow(uint64_t sequence, const AtomicOp& op);
Result<ReplRow> ParseRow(const std::string& payload);

/// kReplError, primary -> follower: {"error":...}. The sync is dead; the
/// follower reconnects and resyncs from scratch.
std::string EncodeReplError(const std::string& message);
std::string ParseReplError(const std::string& payload);

}  // namespace repl
}  // namespace gepc

#endif  // GEPC_REPL_WIRE_H_
