#ifndef GEPC_REPL_SOURCE_H_
#define GEPC_REPL_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "repl/wire.h"
#include "service/planning_service.h"

namespace gepc {
namespace repl {

struct ReplicationSourceOptions {
  /// The primary's own GOPS1 journal — the row source for follower catch-up.
  std::string journal_path;
  /// The primary's checkpoint directory — the base-state source for
  /// followers too far behind (or empty) to bridge from the journal.
  std::string checkpoint_dir;
  /// Cadence of kReplHeartbeat frames to live followers. Followers use the
  /// heartbeat both as a liveness deadline and as their lag reference.
  int heartbeat_interval_ms = 500;
  /// kReplCkptChunk payload size while streaming a checkpoint.
  size_t chunk_bytes = 256 * 1024;
  /// Compress checkpoint chunk frames (rows and control frames always go
  /// raw — they are far below the compressor's minimum anyway).
  bool compress_chunks = true;
};

/// One coherent read of the source's counters (tests; `stats` wiring).
struct ReplicationSourceStats {
  uint64_t followers = 0;  ///< currently registered (syncing + live)
  uint64_t syncs_started = 0;
  uint64_t syncs_completed = 0;
  uint64_t sync_errors = 0;
  uint64_t rows_shipped = 0;
  uint64_t checkpoints_shipped = 0;
};

/// The primary side of replication (docs/replication.md): turns a
/// PlanningService + NetServer into a replication endpoint. A follower's
/// kReplSync frame starts a catch-up on the sync worker thread — newest
/// checkpoint streamed in chunks when the journal can no longer bridge,
/// then the journal tail — after which the follower goes live and every
/// committed row is fanned out from the service's commit hook. Registered
/// followers pin checkpoint pruning and journal compaction (the service's
/// retention pin) so catch-up never races file deletion.
///
/// Wiring order matters: construct, Attach(server) BEFORE server->Start(),
/// and Stop() BEFORE the server stops (Stop detaches the commit hook, so no
/// fan-out can outlive the sockets it pushes to).
class ReplicationSource {
 public:
  ReplicationSource(PlanningService* service, ReplicationSourceOptions options);
  ~ReplicationSource();

  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  /// Installs the frame/disconnect hooks on `server`, the commit hook on
  /// the service, and starts the sync + heartbeat worker. Must be called
  /// before server->Start().
  Status Attach(net::NetServer* server);

  /// Detaches the commit hook, joins the worker, releases the retention
  /// pin. Idempotent; the destructor calls it.
  void Stop();

  ReplicationSourceStats stats() const;

 private:
  enum class Phase { kSyncing, kLive };

  struct FollowerState {
    Phase phase = Phase::kSyncing;
    /// Retention floor this follower needs: the journal must keep rows
    /// after it, and a checkpoint at or below it must survive pruning.
    uint64_t pin = 0;
    /// Highest row sequence pushed to this connection.
    uint64_t last_sent = 0;
    /// Rows committed while the catch-up was still streaming, held back so
    /// the follower sees every sequence exactly once and in order.
    std::vector<std::pair<uint64_t, std::string>> pending;
  };

  /// Event-loop thread: consumes kReplSync frames.
  bool OnFrame(uint64_t conn_id, net::Frame frame);
  /// Event-loop thread: drops the registration, recomputes the pin.
  void OnDisconnect(uint64_t conn_id);
  /// Service writer thread: fans one committed row out to live followers
  /// and buffers it for syncing ones.
  void OnCommit(uint64_t sequence, const AtomicOp& op);

  void WorkerLoop();
  void RunSync(uint64_t conn_id, const SyncRequest& request);
  /// Streams the newest checkpoint to `conn_id`; returns its version (the
  /// new row floor) or the failure.
  Result<uint64_t> ShipCheckpoint(uint64_t conn_id, uint64_t journal_base);
  void FailSync(uint64_t conn_id, const std::string& message);
  void SendHeartbeats();
  /// mu_ held: pushes min(pin) over all followers into the service.
  void UpdatePinLocked();

  PlanningService* const service_;
  const ReplicationSourceOptions options_;
  net::NetServer* server_ = nullptr;

  mutable std::mutex mu_;
  std::map<uint64_t, FollowerState> followers_;
  std::deque<std::pair<uint64_t, SyncRequest>> sync_queue_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;

  uint64_t syncs_started_ = 0;
  uint64_t syncs_completed_ = 0;
  uint64_t sync_errors_ = 0;
  uint64_t rows_shipped_ = 0;
  uint64_t checkpoints_shipped_ = 0;

  std::shared_ptr<obs::Gauge> followers_gauge_;
  std::shared_ptr<obs::Counter> rows_shipped_total_;
  std::shared_ptr<obs::Counter> checkpoints_shipped_total_;
  std::shared_ptr<obs::Counter> syncs_total_;
  std::shared_ptr<obs::Counter> sync_errors_total_;
  std::shared_ptr<obs::Histogram> sync_ms_;

  std::thread worker_;
};

}  // namespace repl
}  // namespace gepc

#endif  // GEPC_REPL_SOURCE_H_
