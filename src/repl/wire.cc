#include "repl/wire.h"

#include <cstdlib>
#include <sstream>

#include "iep/trace.h"
#include "service/jsonl.h"

namespace gepc {
namespace repl {

namespace {

/// Pulls an unsigned integer field out of a flat protocol object. The jsonl
/// layer parses numbers as double, which is exact for every sequence this
/// service can reach (well under 2^53).
Result<uint64_t> GetUint(const JsonObject& object, const std::string& key) {
  const auto it = object.find(key);
  if (it == object.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.type != JsonValue::Type::kNumber ||
      it->second.number_value < 0) {
    return Status::InvalidArgument("field '" + key +
                                   "' must be a non-negative number");
  }
  return static_cast<uint64_t>(it->second.number_value);
}

}  // namespace

std::string EncodeSyncRequest(const SyncRequest& request) {
  JsonWriter writer;
  writer.Add("have", request.have);
  if (request.need_base) writer.Add("need_base", true);
  return writer.Finish();
}

Result<SyncRequest> ParseSyncRequest(const std::string& payload) {
  auto object = ParseJsonObject(payload);
  GEPC_RETURN_IF_ERROR(object.status());
  SyncRequest request;
  auto have = GetUint(*object, "have");
  GEPC_RETURN_IF_ERROR(have.status());
  request.have = *have;
  const auto need = object->find("need_base");
  if (need != object->end()) {
    if (need->second.type != JsonValue::Type::kBool) {
      return Status::InvalidArgument("field 'need_base' must be a bool");
    }
    request.need_base = need->second.bool_value;
  }
  return request;
}

std::string EncodeCkptBegin(const CkptBegin& begin) {
  JsonWriter writer;
  writer.Add("version", begin.version);
  writer.Add("bytes", begin.bytes);
  return writer.Finish();
}

Result<CkptBegin> ParseCkptBegin(const std::string& payload) {
  auto object = ParseJsonObject(payload);
  GEPC_RETURN_IF_ERROR(object.status());
  CkptBegin begin;
  auto version = GetUint(*object, "version");
  GEPC_RETURN_IF_ERROR(version.status());
  auto bytes = GetUint(*object, "bytes");
  GEPC_RETURN_IF_ERROR(bytes.status());
  begin.version = *version;
  begin.bytes = *bytes;
  return begin;
}

std::string EncodeHeartbeat(uint64_t version) {
  JsonWriter writer;
  writer.Add("version", version);
  return writer.Finish();
}

Result<uint64_t> ParseHeartbeat(const std::string& payload) {
  auto object = ParseJsonObject(payload);
  GEPC_RETURN_IF_ERROR(object.status());
  return GetUint(*object, "version");
}

Result<std::string> EncodeRow(uint64_t sequence, const AtomicOp& op) {
  std::ostringstream row;
  GEPC_RETURN_IF_ERROR(SaveOp(op, row));
  std::string text = row.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return std::to_string(sequence) + " " + text;
}

Result<ReplRow> ParseRow(const std::string& payload) {
  const size_t space = payload.find(' ');
  if (space == std::string::npos || space == 0) {
    return Status::InvalidArgument("bad repl row: expected '<seq> <row>'");
  }
  uint64_t sequence = 0;
  for (size_t i = 0; i < space; ++i) {
    const char c = payload[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad repl row: non-numeric sequence");
    }
    sequence = sequence * 10 + static_cast<uint64_t>(c - '0');
  }
  if (sequence == 0) {
    return Status::InvalidArgument("bad repl row: sequence must be positive");
  }
  auto op = ParseOpRow(payload.substr(space + 1));
  GEPC_RETURN_IF_ERROR(op.status());
  ReplRow row;
  row.sequence = sequence;
  row.op = std::move(*op);
  return row;
}

std::string EncodeReplError(const std::string& message) {
  JsonWriter writer;
  writer.Add("error", message);
  return writer.Finish();
}

std::string ParseReplError(const std::string& payload) {
  auto object = ParseJsonObject(payload);
  if (object.ok()) {
    const auto it = object->find("error");
    if (it != object->end() && it->second.type == JsonValue::Type::kString) {
      return it->second.string_value;
    }
  }
  return payload.empty() ? "unspecified replication error" : payload;
}

}  // namespace repl
}  // namespace gepc
