#ifndef GEPC_REPL_FOLLOWER_H_
#define GEPC_REPL_FOLLOWER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "service/dispatch.h"
#include "service/planning_service.h"

namespace gepc {
namespace repl {

struct FollowerOptions {
  /// The primary's replication endpoint (the same port gepc_serve --listen
  /// serves clients on).
  std::string primary_host = "127.0.0.1";
  int primary_port = 0;

  /// Local durability (both required): the follower journals every tailed
  /// row and checkpoints like a primary, so its own crash recovery — and
  /// its promotion — reuse the standard Recover path.
  std::string journal_path;
  std::string checkpoint_dir;

  /// Passed through to the local PlanningService.
  size_t queue_capacity = 1024;
  int snapshot_every = 1;
  int checkpoint_every = 0;
  int checkpoint_retain = 2;

  /// No heartbeat/row for this long = the primary is gone: drop the
  /// connection and start reconnecting.
  int heartbeat_timeout_ms = 3000;
  /// Capped exponential backoff between reconnect attempts.
  int reconnect_backoff_initial_ms = 100;
  int reconnect_backoff_max_ms = 2000;
  /// Disconnected (not merely lagging) for this long = promote to primary.
  /// <= 0 disables automatic promotion (tests drive PromoteNow directly;
  /// operators may prefer manual failover).
  int promote_after_ms = 10000;
  /// Give up on the initial bootstrap after this long without a usable
  /// primary.
  int bootstrap_timeout_ms = 10000;
};

/// Counters a test or front end can read without scraping Prometheus text.
struct FollowerStats {
  uint64_t applied = 0;        ///< local sequence (== service version)
  uint64_t primary_seen = 0;   ///< newest sequence the primary advertised
  uint64_t rows_applied = 0;
  uint64_t reconnects = 0;
  uint64_t checkpoints_received = 0;
  bool connected = false;
  bool promoted = false;
};

/// The follower side of replication (docs/replication.md): connects to a
/// primary, bootstraps its local PlanningService from a shipped checkpoint
/// (or its own local state when the journal can bridge), then applies
/// tailed rows through the same single-writer apply loop a primary uses —
/// so reads, stats and metrics are served from immutable snapshots exactly
/// as on the primary, and the on-disk journal/checkpoint set stays
/// byte-compatible. Losing the primary past the deadline promotes: the
/// replayed state is sealed with a checkpoint and `role` flips, at which
/// point the dispatcher stops redirecting writes.
class Follower {
 public:
  /// Connects, bootstraps, and starts the tail thread. Blocks until the
  /// local service is live (serving reads) or the bootstrap deadline
  /// passes. `role` (not owned, must outlive the follower) is flipped to
  /// follower=true here and back to primary on promotion.
  static Result<std::unique_ptr<Follower>> Start(FollowerOptions options,
                                                 ServeRole* role);

  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// The local service (never null after Start succeeds): front ends build
  /// their CommandDispatcher on it exactly as on a primary.
  PlanningService* service() const { return service_.get(); }

  /// Immediate manual promotion (the failover torture and the `promote`
  /// path use this; automatic promotion calls it on the tail thread).
  /// Idempotent; kUnavailable when an injected repl.promote fault aborts
  /// the attempt (the auto path retries on the next deadline).
  Status PromoteNow();

  bool promoted() const { return promoted_.load(std::memory_order_acquire); }

  FollowerStats stats() const;

  /// Stops tailing and shuts the local service down. Idempotent; the
  /// destructor calls it.
  void Stop();

 private:
  Follower(FollowerOptions options, ServeRole* role);

  /// One connect + handshake + sync + bootstrap pass. On success the local
  /// service is live and `fd_` carries the row tail.
  Status BootstrapOnce();
  /// Brings the local service up from whatever is on local disk; returns
  /// false when there is nothing usable (need_base bootstrap required).
  bool TryLocalRecovery();
  /// Receives a shipped checkpoint (begin frame already parsed), publishes
  /// it locally, and (re)starts the service from it.
  Status ReceiveCheckpoint(uint64_t version, uint64_t bytes);
  /// Applies one tailed row; any defect tears the connection for a resync.
  Status ApplyRow(const std::string& payload);

  void TailLoop();
  void Disconnect();
  void UpdateLagGauges();

  /// Blocking frame IO on fd_ (tail thread only).
  Status Connect();
  Status SendFrame(net::FrameType type, const std::string& payload);
  /// Waits up to `timeout_ms` for one frame; kUnavailable on timeout,
  /// kNotFound on EOF/reset.
  Status RecvFrame(net::Frame* out, int timeout_ms);

  const FollowerOptions options_;
  ServeRole* const role_;

  std::unique_ptr<PlanningService> service_;
  int fd_ = -1;
  net::FrameDecoder decoder_;

  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> primary_seen_{0};
  std::atomic<uint64_t> rows_applied_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> checkpoints_received_{0};
  std::atomic<bool> connected_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<bool> stop_{false};

  /// steady_clock ms when the lag first became nonzero (0 = caught up).
  std::atomic<int64_t> behind_since_ms_{0};

  mutable std::mutex promote_mu_;

  std::shared_ptr<obs::Gauge> lag_rows_gauge_;
  std::shared_ptr<obs::Gauge> lag_ms_gauge_;
  std::shared_ptr<obs::Counter> rows_applied_total_;
  std::shared_ptr<obs::Counter> reconnects_total_;
  std::shared_ptr<obs::Counter> promotions_total_;
  std::shared_ptr<obs::Counter> checkpoints_received_total_;
  std::shared_ptr<obs::Counter> resyncs_total_;
  std::shared_ptr<obs::Histogram> apply_ms_;

  std::thread tail_thread_;
};

}  // namespace repl
}  // namespace gepc

#endif  // GEPC_REPL_FOLLOWER_H_
