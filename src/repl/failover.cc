#include "repl/failover.h"

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "net/server.h"
#include "repl/follower.h"
#include "repl/source.h"
#include "service/dispatch.h"
#include "service/planning_service.h"
#include "service/torture.h"

namespace gepc {
namespace repl {

namespace {

namespace fs = std::filesystem;

/// Re-creates `dir` empty.
Status FreshDir(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (!fs::create_directories(dir, ec) && ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  return Status::OK();
}

/// Polls until the follower has applied exactly `want` rows.
bool WaitForApplied(const Follower& follower, uint64_t want, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (follower.stats().applied >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return follower.stats().applied >= want;
}

}  // namespace

Result<FailoverTortureReport> RunFailoverTorture(
    const FailoverTortureOptions& options) {
  if (options.workdir.empty()) {
    return Status::InvalidArgument("FailoverTortureOptions.workdir required");
  }
  std::error_code ec;
  if (!fs::is_directory(options.workdir, ec)) {
    return Status::InvalidArgument("workdir is not a directory: " +
                                   options.workdir);
  }

  // 1. Seeded city + base plan + the reference op stream and states.
  GeneratorConfig config;
  config.num_users = options.users;
  config.num_events = options.events;
  config.seed = options.seed;
  GEPC_ASSIGN_OR_RETURN(const Instance base, GenerateInstance(config));
  GEPC_ASSIGN_OR_RETURN(GepcResult solved, SolveGepc(base));
  const Plan base_plan = std::move(solved.plan);

  GEPC_ASSIGN_OR_RETURN(IncrementalPlanner generator_planner,
                        IncrementalPlanner::Create(base, base_plan));
  const std::vector<AtomicOp> ops =
      GenerateTortureOps(&generator_planner, options.ops, options.seed);

  GEPC_ASSIGN_OR_RETURN(IncrementalPlanner reference,
                        IncrementalPlanner::Create(base, base_plan));
  std::vector<std::string> states;  // states[i] = serialized state after i ops
  GEPC_ASSIGN_OR_RETURN(std::string initial,
                        SerializeServiceState(base, base_plan, 0));
  states.push_back(std::move(initial));
  for (const AtomicOp& op : ops) {
    reference.Apply(op);
    GEPC_ASSIGN_OR_RETURN(
        std::string state,
        SerializeServiceState(reference.instance(), reference.plan(),
                              states.size()));
    states.push_back(std::move(state));
  }

  FailoverTortureReport report;
  report.ops_total = ops.size();
  auto fail = [&report](std::string what) {
    if (report.failure.empty()) report.failure = std::move(what);
  };

  // 2. Kill offsets: 0, stride, 2*stride, ..., always including the end.
  std::vector<size_t> offsets;
  const size_t stride =
      options.offset_stride > 0 ? static_cast<size_t>(options.offset_stride) : 1;
  for (size_t k = 0; k <= ops.size(); k += stride) offsets.push_back(k);
  if (offsets.back() != ops.size()) offsets.push_back(ops.size());

  const std::string primary_dir = options.workdir + "/failover_primary";
  const std::string follower_dir = options.workdir + "/failover_follower";

  for (const size_t k : offsets) {
    GEPC_RETURN_IF_ERROR(FreshDir(primary_dir));
    GEPC_RETURN_IF_ERROR(FreshDir(primary_dir + "/ckpt"));
    GEPC_RETURN_IF_ERROR(FreshDir(follower_dir));

    // Fresh primary with replication on an ephemeral port.
    ServiceOptions primary_options;
    primary_options.journal_path = primary_dir + "/journal.gops";
    primary_options.checkpoint_dir = primary_dir + "/ckpt";
    primary_options.checkpoint_every = options.checkpoint_every;
    GEPC_ASSIGN_OR_RETURN(
        std::unique_ptr<PlanningService> primary,
        PlanningService::Create(base, base_plan, primary_options));

    ReplicationSourceOptions source_options;
    source_options.journal_path = primary_options.journal_path;
    source_options.checkpoint_dir = primary_options.checkpoint_dir;
    source_options.heartbeat_interval_ms = 50;
    ReplicationSource source(primary.get(), source_options);

    net::NetServerOptions server_options;
    server_options.port = 0;
    server_options.read_workers = 1;
    server_options.op_workers = 1;
    net::NetServer server(
        server_options, [](const std::string&) {
          return net::HandlerResult{R"({"ok":false,"error":"repl only"})",
                                    false};
        });
    GEPC_RETURN_IF_ERROR(source.Attach(&server));
    GEPC_RETURN_IF_ERROR(server.Start());

    // Follower bootstraps empty: the primary must ship a checkpoint.
    ServeRole role;
    FollowerOptions follower_options;
    follower_options.primary_host = "127.0.0.1";
    follower_options.primary_port = server.port();
    follower_options.journal_path = follower_dir + "/journal.gops";
    follower_options.checkpoint_dir = follower_dir + "/ckpt";
    follower_options.promote_after_ms = 0;  // the harness promotes manually
    follower_options.heartbeat_timeout_ms = 2000;
    follower_options.bootstrap_timeout_ms = 10000;
    auto started = Follower::Start(follower_options, &role);
    if (!started.ok()) {
      return Status(started.status().code(),
                    "offset " + std::to_string(k) + ": follower bootstrap: " +
                        started.status().message());
    }
    std::unique_ptr<Follower> follower = std::move(*started);
    if (follower->stats().checkpoints_received > 0) {
      ++report.checkpoint_bootstraps;
    }

    // Drive the primary through the first k ops of the reference stream.
    for (size_t i = 0; i < k; ++i) {
      const ApplyOutcome outcome = primary->Apply(ops[i]);
      if (outcome.sequence != i + 1) {
        return Status::Internal("offset " + std::to_string(k) +
                                ": primary op " + std::to_string(i + 1) +
                                " landed at sequence " +
                                std::to_string(outcome.sequence));
      }
    }
    if (!WaitForApplied(*follower, k, /*timeout_ms=*/15000)) {
      fail("offset " + std::to_string(k) + ": follower stuck at " +
           std::to_string(follower->stats().applied) + "/" +
           std::to_string(k));
      ++report.offsets_exercised;
      continue;
    }

    // 3. Kill the primary the hard way a follower perceives it: sockets die
    // (EOF), process state gone. Then promote.
    source.Stop();
    server.Stop();
    primary.reset();

    follower->Stop();  // joins the tail thread; promotion below is race-free
    if (Status promoted = follower->PromoteNow(); !promoted.ok()) {
      fail("offset " + std::to_string(k) +
           ": promotion failed: " + promoted.message());
      ++report.offsets_exercised;
      continue;
    }
    ++report.promotions;
    if (role.follower.load(std::memory_order_acquire)) {
      fail("offset " + std::to_string(k) + ": role still follower");
    }

    const auto snapshot = follower->service()->snapshot();
    GEPC_ASSIGN_OR_RETURN(
        const std::string promoted_state,
        SerializeServiceState(*snapshot->instance, *snapshot->plan,
                              snapshot->version));
    if (promoted_state != states[k]) {
      ++report.state_mismatches;
      fail("offset " + std::to_string(k) +
           ": promoted state diverges from the reference (version " +
           std::to_string(snapshot->version) + ", expected " +
           std::to_string(k) + ")");
    }

    // 4. The promoted primary must accept writes, continuing the sequence.
    const AtomicOp resume =
        AtomicOp::BudgetChange(0, snapshot->instance->user(0).budget);
    const ApplyOutcome outcome = follower->service()->Apply(resume);
    if (!outcome.applied || outcome.sequence != k + 1) {
      ++report.resumed_write_failures;
      fail("offset " + std::to_string(k) + ": resumed write landed as (seq " +
           std::to_string(outcome.sequence) + ", applied " +
           (outcome.applied ? "true" : "false") + "), expected seq " +
           std::to_string(k + 1));
    }
    ++report.offsets_exercised;
  }

  report.passed = report.failure.empty();
  return report;
}

}  // namespace repl
}  // namespace gepc
