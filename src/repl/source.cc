#include "repl/source.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "service/journal.h"

namespace gepc {
namespace repl {

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) return Status::Internal("read failed: " + path);
  return buffer.str();
}

}  // namespace

ReplicationSource::ReplicationSource(PlanningService* service,
                                     ReplicationSourceOptions options)
    : service_(service), options_(std::move(options)) {
  auto& registry = obs::Registry::Global();
  followers_gauge_ = registry.GetGauge(
      "gepc_repl_followers", "Followers currently registered on this primary");
  rows_shipped_total_ = registry.GetCounter(
      "gepc_repl_rows_shipped_total", "Journal rows pushed to followers");
  checkpoints_shipped_total_ =
      registry.GetCounter("gepc_repl_checkpoints_shipped_total",
                          "Checkpoints streamed to bootstrapping followers");
  syncs_total_ = registry.GetCounter("gepc_repl_syncs_total",
                                     "Follower catch-up syncs started");
  sync_errors_total_ = registry.GetCounter(
      "gepc_repl_sync_errors_total", "Follower syncs that ended in ReplError");
  sync_ms_ = registry.GetHistogram("gepc_repl_sync_ms",
                                   "Follower catch-up sync latency");
}

ReplicationSource::~ReplicationSource() { Stop(); }

Status ReplicationSource::Attach(net::NetServer* server) {
  if (server == nullptr) {
    return Status::InvalidArgument("replication source needs a server");
  }
  if (options_.journal_path.empty() || options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "replication needs both a journal and a checkpoint dir");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return Status::FailedPrecondition("replication source already attached");
    }
    started_ = true;
    stop_ = false;
  }
  server_ = server;
  server->SetFrameHook([this](uint64_t conn_id, net::Frame frame) {
    return OnFrame(conn_id, std::move(frame));
  });
  server->SetDisconnectHook([this](uint64_t conn_id) { OnDisconnect(conn_id); });
  service_->SetCommitHook([this](uint64_t sequence, const AtomicOp& op) {
    OnCommit(sequence, op);
  });
  worker_ = std::thread([this] { WorkerLoop(); });
  return Status::OK();
}

void ReplicationSource::Stop() {
  bool was_started = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_started = started_;
    // One-shot: the destructor calls Stop() again, typically after the
    // caller has already torn down the service — a second pass must not
    // touch service_.
    started_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (!was_started) return;
  // Detach the commit hook first: after Stop returns, no writer-thread
  // callback can reach this object (the caller is about to destroy it or
  // the server it pushes to).
  service_->SetCommitHook(nullptr);
  if (worker_.joinable()) worker_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    followers_.clear();
    sync_queue_.clear();
    followers_gauge_->Set(0);
  }
  service_->SetRetentionPin(kNoRetentionPin);
}

ReplicationSourceStats ReplicationSource::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicationSourceStats stats;
  stats.followers = followers_.size();
  stats.syncs_started = syncs_started_;
  stats.syncs_completed = syncs_completed_;
  stats.sync_errors = sync_errors_;
  stats.rows_shipped = rows_shipped_;
  stats.checkpoints_shipped = checkpoints_shipped_;
  return stats;
}

bool ReplicationSource::OnFrame(uint64_t conn_id, net::Frame frame) {
  if (frame.type != net::FrameType::kReplSync) return false;
  auto request = ParseSyncRequest(frame.payload);
  if (!request.ok()) {
    server_->Push(conn_id,
                  net::EncodeFrame(net::FrameType::kReplError,
                                   EncodeReplError(request.status().message())));
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  sync_queue_.emplace_back(conn_id, *request);
  cv_.notify_all();
  return true;
}

void ReplicationSource::OnDisconnect(uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (followers_.erase(conn_id) > 0) {
    followers_gauge_->Set(static_cast<int64_t>(followers_.size()));
    UpdatePinLocked();
  }
}

void ReplicationSource::OnCommit(uint64_t sequence, const AtomicOp& op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (followers_.empty()) return;
  auto payload = EncodeRow(sequence, op);
  if (!payload.ok()) {
    GEPC_LOG(Error) << "repl: cannot encode row " << sequence << ": "
                    << payload.status().message();
    return;
  }
  const std::string frame =
      net::EncodeFrame(net::FrameType::kReplRow, *payload);
  for (auto& [conn_id, follower] : followers_) {
    if (follower.phase == Phase::kLive) {
      server_->Push(conn_id, frame);
      follower.last_sent = sequence;
      // A live follower's retention floor rides the fan-out: everything up
      // to `sequence` is already on (or in flight to) its socket, so the
      // journal only has to keep the tail past it for a quick reconnect.
      follower.pin = sequence;
      ++rows_shipped_;
      rows_shipped_total_->Increment();
    } else {
      follower.pending.emplace_back(sequence, frame);
    }
  }
  UpdatePinLocked();
}

void ReplicationSource::WorkerLoop() {
  const auto heartbeat =
      std::chrono::milliseconds(std::max(1, options_.heartbeat_interval_ms));
  auto next_heartbeat = std::chrono::steady_clock::now() + heartbeat;
  for (;;) {
    std::pair<uint64_t, SyncRequest> job;
    bool have_job = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_until(lock, next_heartbeat,
                     [&] { return stop_ || !sync_queue_.empty(); });
      if (stop_) return;
      if (!sync_queue_.empty()) {
        job = sync_queue_.front();
        sync_queue_.pop_front();
        have_job = true;
      }
    }
    if (have_job) {
      const auto start = std::chrono::steady_clock::now();
      RunSync(job.first, job.second);
      if (obs::Enabled()) {
        sync_ms_->Observe(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= next_heartbeat) {
      SendHeartbeats();
      next_heartbeat = now + heartbeat;
    }
  }
}

void ReplicationSource::FailSync(uint64_t conn_id, const std::string& message) {
  GEPC_LOG(Warning) << "repl: sync for conn " << conn_id
                    << " failed: " << message;
  server_->Push(conn_id, net::EncodeFrame(net::FrameType::kReplError,
                                          EncodeReplError(message)));
  std::lock_guard<std::mutex> lock(mu_);
  ++sync_errors_;
  sync_errors_total_->Increment();
  if (followers_.erase(conn_id) > 0) {
    followers_gauge_->Set(static_cast<int64_t>(followers_.size()));
    UpdatePinLocked();
  }
}

Result<uint64_t> ReplicationSource::ShipCheckpoint(uint64_t conn_id,
                                                   uint64_t journal_base) {
  auto listed = ListCheckpoints(options_.checkpoint_dir);
  GEPC_RETURN_IF_ERROR(listed.status());
  // The newest checkpoint must be able to bridge to the journal tail
  // (version >= journal base — the compaction invariant guarantees it for
  // any checkpoint that exists). No checkpoint at all means the primary has
  // never published one: cut one now so the follower has a base.
  if (listed->empty() || listed->front().version < journal_base) {
    CheckpointOutcome forced = service_->Checkpoint();
    if (!forced.published) {
      return Status::Internal("cannot publish bootstrap checkpoint: " +
                              forced.error);
    }
    listed = ListCheckpoints(options_.checkpoint_dir);
    GEPC_RETURN_IF_ERROR(listed.status());
    if (listed->empty()) {
      return Status::Internal("checkpoint published but none listed");
    }
  }
  const CheckpointRef chosen = listed->front();
  // Pin the chosen version before reading the file: from here on, pruning
  // keeps it on disk until this follower goes live.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = followers_.find(conn_id);
    if (it == followers_.end()) {
      return Status::Unavailable("follower disconnected during sync");
    }
    it->second.pin = chosen.version;
    UpdatePinLocked();
  }
  auto bytes = ReadFileBytes(chosen.path);
  GEPC_RETURN_IF_ERROR(bytes.status());
  CkptBegin begin;
  begin.version = chosen.version;
  begin.bytes = bytes->size();
  server_->Push(conn_id, net::EncodeFrame(net::FrameType::kReplCkptBegin,
                                          EncodeCkptBegin(begin)));
  const size_t chunk = std::max<size_t>(1, options_.chunk_bytes);
  for (size_t offset = 0; offset < bytes->size(); offset += chunk) {
    server_->Push(conn_id,
                  net::EncodeFrame(
                      net::FrameType::kReplCkptChunk,
                      std::string_view(*bytes).substr(offset, chunk),
                      /*allow_compression=*/options_.compress_chunks));
  }
  // An empty-state checkpoint still needs its (empty) chunk stream ended;
  // the begin frame's byte count already tells the follower it is complete.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++checkpoints_shipped_;
  }
  checkpoints_shipped_total_->Increment();
  return chosen.version;
}

void ReplicationSource::RunSync(uint64_t conn_id, const SyncRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++syncs_started_;
    // (Re)register the follower as syncing. Its pin freezes retention at
    // what it claims to have, so the journal prefix it needs survives the
    // checkpoints other activity may publish while we stream.
    FollowerState& follower = followers_[conn_id];
    follower.phase = Phase::kSyncing;
    follower.pin = request.have;
    follower.last_sent = 0;
    follower.pending.clear();
    followers_gauge_->Set(static_cast<int64_t>(followers_.size()));
    UpdatePinLocked();
  }
  syncs_total_->Increment();

  if (Status injected = fault::Inject("repl.ship"); !injected.ok()) {
    FailSync(conn_id, injected.message());
    return;
  }

  const uint64_t committed = service_->committed_sequence();
  if (request.have > committed) {
    FailSync(conn_id, "follower claims sequence " +
                          std::to_string(request.have) +
                          " ahead of primary at " + std::to_string(committed));
    return;
  }

  auto scan = ScanJournalFile(options_.journal_path);
  JournalScan journal;
  if (scan.ok()) {
    journal = std::move(*scan);
  } else if (scan.status().code() != StatusCode::kNotFound) {
    FailSync(conn_id, "journal scan failed: " + scan.status().message());
    return;
  }

  // Row floor: ship journal rows with sequence > floor. A follower that
  // cannot bridge from the journal (or has no base at all) gets the newest
  // checkpoint first and the floor moves up to its version.
  uint64_t floor = request.have;
  if (request.need_base || request.have < journal.base_sequence) {
    auto shipped = ShipCheckpoint(conn_id, journal.base_sequence);
    if (!shipped.ok()) {
      FailSync(conn_id, shipped.status().message());
      return;
    }
    floor = *shipped;
    // The forced checkpoint (if any) may be newer than the scan; re-scan so
    // the tail we ship lines up with the floor.
    if (floor > journal.base_sequence + journal.ops.size()) {
      auto rescan = ScanJournalFile(options_.journal_path);
      if (rescan.ok()) journal = std::move(*rescan);
    }
  }

  uint64_t last = floor;
  uint64_t shipped_rows = 0;
  for (size_t i = 0; i < journal.ops.size(); ++i) {
    const uint64_t sequence = journal.base_sequence + i + 1;
    if (sequence <= floor) continue;
    auto payload = EncodeRow(sequence, journal.ops[i]);
    if (!payload.ok()) {
      FailSync(conn_id, "cannot encode journal row " +
                            std::to_string(sequence) + ": " +
                            payload.status().message());
      return;
    }
    server_->Push(conn_id, net::EncodeFrame(net::FrameType::kReplRow, *payload));
    last = sequence;
    ++shipped_rows;
  }

  // Go live: flush rows that committed while we streamed (deduplicated
  // against what the scan already covered), then hand the connection to the
  // commit hook's fan-out.
  std::lock_guard<std::mutex> lock(mu_);
  rows_shipped_ += shipped_rows;
  rows_shipped_total_->Increment(shipped_rows);
  auto it = followers_.find(conn_id);
  if (it == followers_.end()) return;  // disconnected mid-sync
  FollowerState& follower = it->second;
  for (auto& [sequence, frame] : follower.pending) {
    if (sequence <= last) continue;
    server_->Push(conn_id, frame);
    last = sequence;
    ++rows_shipped_;
    rows_shipped_total_->Increment();
  }
  follower.pending.clear();
  follower.phase = Phase::kLive;
  follower.last_sent = last;
  follower.pin = last;
  UpdatePinLocked();
  ++syncs_completed_;
  server_->Push(conn_id,
                net::EncodeFrame(net::FrameType::kReplHeartbeat,
                                 EncodeHeartbeat(service_->committed_sequence())));
}

void ReplicationSource::SendHeartbeats() {
  const uint64_t committed = service_->committed_sequence();
  const std::string frame = net::EncodeFrame(net::FrameType::kReplHeartbeat,
                                             EncodeHeartbeat(committed));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [conn_id, follower] : followers_) {
    if (follower.phase == Phase::kLive) server_->Push(conn_id, frame);
  }
}

void ReplicationSource::UpdatePinLocked() {
  uint64_t pin = kNoRetentionPin;
  for (const auto& [conn_id, follower] : followers_) {
    pin = std::min(pin, follower.pin);
  }
  service_->SetRetentionPin(pin);
}

}  // namespace repl
}  // namespace gepc
