#ifndef GEPC_REPL_FAILOVER_H_
#define GEPC_REPL_FAILOVER_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace gepc {
namespace repl {

/// Configuration of the failover torture run (tools/gepc_torture --failover
/// and failover_torture_test). Seed-driven like the crash torture: two runs
/// with the same options kill the primary at the same points and must reach
/// the same verdict.
struct FailoverTortureOptions {
  int users = 40;
  int events = 10;
  /// Length of the recorded op stream (the crash torture's deterministic
  /// mix, invalid ops included — a follower must journal-and-reject those
  /// byte-identically too).
  int ops = 30;
  uint64_t seed = 7;

  /// Primary checkpoint cadence during the run; > 0 exercises checkpoint
  /// publication + pruning + journal compaction racing the live tail (the
  /// retention pin is what keeps that safe).
  int checkpoint_every = 8;

  /// Kill the primary after every `offset_stride`-th committed op (offsets
  /// 0 and `ops` are always exercised). 1 = every journal offset — the
  /// exhaustive mode the slow CI job runs.
  int offset_stride = 1;

  /// Scratch directory (must exist and be writable); fresh per-offset
  /// primary/follower trees are created inside it.
  std::string workdir;
};

/// What the failover torture did and whether every promotion matched.
struct FailoverTortureReport {
  uint64_t ops_total = 0;
  int offsets_exercised = 0;
  int promotions = 0;
  /// Follower bootstraps that shipped a checkpoint (vs journal-bridged).
  int checkpoint_bootstraps = 0;
  int state_mismatches = 0;        ///< promoted state != reference state
  int resumed_write_failures = 0;  ///< promoted primary refused a valid op
  bool passed = false;
  /// Empty when passed; otherwise describes the first divergence.
  std::string failure;
};

/// The failover torture harness (docs/replication.md):
///
///   1. generates an instance (seeded), solves it for the base plan, and
///      records the reference: the serialized service state after every op
///      of the generated stream,
///   2. for every chosen offset k: boots a fresh primary (journal +
///      checkpoints + replication source on an ephemeral port), starts a
///      follower against it (checkpoint bootstrap — the follower starts
///      empty), applies ops[0..k) on the primary, waits for the follower to
///      have applied exactly k rows,
///   3. kills the primary (server torn down, service destroyed — the
///      follower gets EOF, exactly what a crashed process produces),
///      promotes the follower, and asserts the promoted state serializes
///      byte-identically to the reference state after k ops — zero
///      committed-op loss, no phantom ops,
///   4. applies one more valid op to the promoted primary and asserts it
///      lands at sequence k + 1 — the promoted journal is append-clean.
///
/// Returns the report (passed/failure inside); a non-OK status means the
/// harness itself could not run, not that failover diverged.
Result<FailoverTortureReport> RunFailoverTorture(
    const FailoverTortureOptions& options);

}  // namespace repl
}  // namespace gepc

#endif  // GEPC_REPL_FAILOVER_H_
