#ifndef GEPC_IEP_IEP_RESULT_H_
#define GEPC_IEP_IEP_RESULT_H_

#include <cstdint>

#include "core/instance.h"
#include "core/plan.h"

namespace gepc {

/// Outcome of one incremental re-planning step (Sec. IV). The IEP objective
/// (Definition 2) maximizes utility subject to minimum negative impact
/// dif(P, P'); each algorithm reports the dif it incurred.
struct IepResult {
  Plan plan;
  /// dif(P, P') = sum_i |P_i \ P'_i| for the step that produced `plan`.
  int64_t negative_impact = 0;
  double total_utility = 0.0;
  /// Events left below their lower bound (shortfall; 0 when the update was
  /// fully repairable).
  int events_below_lower_bound = 0;
  /// Attendances added by the closing top-up ([4]-style re-offers), which
  /// never contribute negative impact.
  int added_by_topup = 0;
};

/// Fills total_utility / events_below_lower_bound from the final plan.
void FinalizeIepResult(const Instance& instance, IepResult* result);

}  // namespace gepc

#endif  // GEPC_IEP_IEP_RESULT_H_
