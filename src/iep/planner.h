#ifndef GEPC_IEP_PLANNER_H_
#define GEPC_IEP_PLANNER_H_

#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"
#include "gepc/solver.h"
#include "iep/iep_result.h"

namespace gepc {

/// One of the paper's atomic operations (Sec. II-B / IV). Exactly the
/// fields relevant to `kind` are read.
struct AtomicOp {
  enum class Kind {
    kUtilityChanged,     ///< mu(user, event) := new_utility
    kBudgetChanged,      ///< B_user := new_budget
    kLowerBoundChanged,  ///< xi_event := new_bound
    kUpperBoundChanged,  ///< eta_event := new_bound
    kTimeChanged,        ///< (ts, tt)_event := new_time
    kLocationChanged,    ///< l_event := new_location
    kNewEvent,           ///< append new_event with new_event_utilities
  };

  Kind kind;
  UserId user = kInvalidUser;
  EventId event = kInvalidEvent;
  double new_utility = 0.0;
  double new_budget = 0.0;
  int new_bound = 0;
  Interval new_time;
  Point new_location;
  Event new_event;
  std::vector<double> new_event_utilities;

  // Convenience constructors.
  static AtomicOp UtilityChange(UserId user, EventId event, double utility);
  static AtomicOp BudgetChange(UserId user, double budget);
  static AtomicOp LowerBoundChange(EventId event, int xi);
  static AtomicOp UpperBoundChange(EventId event, int eta);
  static AtomicOp TimeChange(EventId event, Interval time);
  static AtomicOp LocationChange(EventId event, Point location);
  static AtomicOp NewEvent(Event event, std::vector<double> utilities);
};

/// Maintains a live (instance, plan) pair and applies atomic operations
/// incrementally (Sec. IV). Every operation is reduced to one of the three
/// core repairs — Algorithm 3 (eta decreased), Algorithm 4 (xi increased),
/// Algorithm 5 (time changed) — exactly as the paper argues suffices:
///
///  * eta decreased            -> Algorithm 3
///  * xi increased             -> Algorithm 4
///  * ts/tt changed            -> Algorithm 5
///  * eta increased            -> pure re-offer of the event (additions only)
///  * xi decreased             -> plan unchanged (still feasible)
///  * new event                -> append, then "xi raised from 0" (Alg. 4
///                                path via the Algorithm 5 offer+transfer)
///  * location changed         -> Algorithm 5's repair (budget-driven drops)
///  * utility changed          -> drop if zeroed, otherwise re-offer
///  * budget changed           -> shed to fit if decreased (+ Alg. 4 repair
///                                of events pushed below xi), re-offer if
///                                increased
class IncrementalPlanner {
 public:
  /// Takes the current EBSN state and its plan (normally a SolveGepc
  /// output). Returns kInvalidArgument if the plan does not match.
  static Result<IncrementalPlanner> Create(Instance instance, Plan plan);

  const Instance& instance() const { return instance_; }
  const Plan& plan() const { return plan_; }

  /// Applies `op` to the instance, repairs the plan incrementally, and
  /// returns the step's report (dif, utility, shortfall). The planner's
  /// internal plan advances to the repaired plan.
  Result<IepResult> Apply(const AtomicOp& op);

  /// Runs one global utility-ordered re-offer pass over all users
  /// (additions only, so dif 0) on the current plan; returns the number of
  /// attendances added. Used by ApplyBatch's closing sweep.
  int Reoffer();

  /// Baselines of Sec. V-C: apply `op` to a copy of the instance and
  /// re-solve from scratch with the given algorithm (Re-GAP / Re-Greedy).
  /// Does not advance the planner's state.
  Result<GepcResult> ReSolve(const AtomicOp& op, const GepcOptions& options) const;

 private:
  IncrementalPlanner(Instance instance, Plan plan)
      : instance_(std::move(instance)), plan_(std::move(plan)) {}

  /// Applies `op`'s mutation to `instance` (shared by Apply and ReSolve).
  static Status Mutate(const AtomicOp& op, Instance* instance, Plan* plan);

  Instance instance_;
  Plan plan_;
};

}  // namespace gepc

#endif  // GEPC_IEP_PLANNER_H_
