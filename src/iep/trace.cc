#include "iep/trace.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace gepc {

namespace {

Status TraceError(int line, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " + what);
}

}  // namespace

Status SaveOp(const AtomicOp& op, std::ostream& out) {
  out << std::setprecision(17);
  switch (op.kind) {
    case AtomicOp::Kind::kUpperBoundChanged:
      out << "eta " << op.event << " " << op.new_bound << "\n";
      break;
    case AtomicOp::Kind::kLowerBoundChanged:
      out << "xi " << op.event << " " << op.new_bound << "\n";
      break;
    case AtomicOp::Kind::kTimeChanged:
      out << "time " << op.event << " " << op.new_time.start << " "
          << op.new_time.end << "\n";
      break;
    case AtomicOp::Kind::kLocationChanged:
      out << "loc " << op.event << " " << op.new_location.x << " "
          << op.new_location.y << "\n";
      break;
    case AtomicOp::Kind::kBudgetChanged:
      out << "budget " << op.user << " " << op.new_budget << "\n";
      break;
    case AtomicOp::Kind::kUtilityChanged:
      out << "mu " << op.user << " " << op.event << " " << op.new_utility
          << "\n";
      break;
    case AtomicOp::Kind::kNewEvent: {
      out << "new " << op.new_event.location.x << " "
          << op.new_event.location.y << " " << op.new_event.lower_bound
          << " " << op.new_event.upper_bound << " "
          << op.new_event.time.start << " " << op.new_event.time.end << " "
          << op.new_event.fee;
      for (double mu : op.new_event_utilities) out << " " << mu;
      out << "\n";
      break;
    }
  }
  if (!out) return Status::Internal("write failed");
  return Status::OK();
}

Status SaveOps(const std::vector<AtomicOp>& ops, std::ostream& out) {
  out << "GOPS1\n";
  for (const AtomicOp& op : ops) {
    GEPC_RETURN_IF_ERROR(SaveOp(op, out));
  }
  if (!out) return Status::Internal("write failed");
  return Status::OK();
}

Status SaveOpsToFile(const std::vector<AtomicOp>& ops,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  return SaveOps(ops, out);
}

Result<AtomicOp> ParseOpRow(const std::string& line) {
  std::istringstream row(line);
  std::string kind;
  row >> kind;
  if (kind == "eta" || kind == "xi") {
    int event = -1;
    int value = 0;
    row >> event >> value;
    if (row.fail()) return Status::InvalidArgument("bad " + kind + " row");
    return kind == "eta" ? AtomicOp::UpperBoundChange(event, value)
                         : AtomicOp::LowerBoundChange(event, value);
  } else if (kind == "time") {
    int event = -1;
    Interval time;
    row >> event >> time.start >> time.end;
    if (row.fail()) return Status::InvalidArgument("bad time row");
    return AtomicOp::TimeChange(event, time);
  } else if (kind == "loc") {
    int event = -1;
    Point location;
    row >> event >> location.x >> location.y;
    if (row.fail()) return Status::InvalidArgument("bad loc row");
    return AtomicOp::LocationChange(event, location);
  } else if (kind == "budget") {
    int user = -1;
    double budget = 0.0;
    row >> user >> budget;
    if (row.fail()) return Status::InvalidArgument("bad budget row");
    return AtomicOp::BudgetChange(user, budget);
  } else if (kind == "mu") {
    int user = -1;
    int event = -1;
    double mu = 0.0;
    row >> user >> event >> mu;
    if (row.fail()) return Status::InvalidArgument("bad mu row");
    return AtomicOp::UtilityChange(user, event, mu);
  } else if (kind == "new") {
    Event fresh;
    row >> fresh.location.x >> fresh.location.y >> fresh.lower_bound >>
        fresh.upper_bound >> fresh.time.start >> fresh.time.end >> fresh.fee;
    if (row.fail()) return Status::InvalidArgument("bad new-event row");
    std::vector<double> utilities;
    double mu = 0.0;
    while (row >> mu) utilities.push_back(mu);
    return AtomicOp::NewEvent(fresh, std::move(utilities));
  }
  return Status::InvalidArgument("unknown op kind '" + kind + "'");
}

Result<std::vector<AtomicOp>> LoadOps(std::istream& in) {
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  std::vector<AtomicOp> ops;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line.rfind("GOPS1", 0) != 0) {
        return TraceError(line_number, "expected GOPS1 header");
      }
      saw_header = true;
      continue;
    }
    auto op = ParseOpRow(line);
    if (!op.ok()) return TraceError(line_number, op.status().message());
    ops.push_back(*std::move(op));
  }
  if (!saw_header) return Status::InvalidArgument("missing GOPS1 header");
  return ops;
}

Result<std::vector<AtomicOp>> LoadOpsFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  return LoadOps(in);
}

}  // namespace gepc
