#ifndef GEPC_IEP_ETA_DECREASE_H_
#define GEPC_IEP_ETA_DECREASE_H_

#include "core/instance.h"
#include "core/plan.h"
#include "core/types.h"
#include "iep/iep_result.h"

namespace gepc {

/// Algorithm 3 (eta Decreasing) of Sec. IV-A. `instance` must already carry
/// the decreased upper bound eta'_j; `previous` is the plan being repaired.
///
/// If n_j <= eta'_j nothing changes (dif = 0). Otherwise the n_j - eta'_j
/// attendees with the smallest utility for e_j lose it (the minimum
/// possible dif), and those users are re-offered other events with the
/// [4]-style utility-ordered insertion, which only adds attendances.
/// Approximation ratio (paper): 1 / ((n_j - eta'_j)(Uc_max - 1)).
IepResult ApplyEtaDecrease(const Instance& instance, const Plan& previous,
                           EventId event);

}  // namespace gepc

#endif  // GEPC_IEP_ETA_DECREASE_H_
