#include "iep/availability.h"

namespace gepc {

std::vector<AtomicOp> AvailabilityChangeOps(const Instance& instance,
                                            UserId user, Interval window,
                                            const ReachabilityFilter* filter) {
  std::vector<AtomicOp> ops;
  if (user < 0 || user >= instance.num_users()) return ops;
  const auto consider = [&](EventId j) {
    if (instance.utility(user, j) <= 0.0) return;
    const Interval& time = instance.event(j).time;
    const bool inside = window.start <= time.start && time.end <= window.end;
    if (!inside) {
      ops.push_back(AtomicOp::UtilityChange(user, j, 0.0));
    }
  };
  if (filter != nullptr) {
    for (EventId j : filter->AttendableEvents(user)) consider(j);
  } else {
    for (int j = 0; j < instance.num_events(); ++j) consider(j);
  }
  return ops;
}

Result<BatchResult> ApplyAvailabilityChange(IncrementalPlanner* planner,
                                            UserId user, Interval window,
                                            BatchMode mode,
                                            const ReachabilityFilter* filter) {
  if (planner == nullptr) {
    return Status::InvalidArgument("planner must not be null");
  }
  if (user < 0 || user >= planner->instance().num_users()) {
    return Status::OutOfRange("user id out of range");
  }
  if (!window.IsValid()) {
    return Status::InvalidArgument("availability window must have start < end");
  }
  return ApplyBatch(
      planner,
      AvailabilityChangeOps(planner->instance(), user, window, filter), mode);
}

}  // namespace gepc
