#ifndef GEPC_IEP_BATCH_H_
#define GEPC_IEP_BATCH_H_

#include <vector>

#include "common/result.h"
#include "iep/planner.h"

namespace gepc {

/// How ApplyBatch schedules the operations of one batch.
enum class BatchMode {
  /// Paper semantics (Sec. II-B): run the incremental algorithm once per
  /// atomic operation, in the given order.
  kSequential,
  /// The Sec. VII future-work variant: reorder the batch so that
  /// capacity-freeing changes (eta decreases, budget cuts, lost interest)
  /// run first, structural changes (reschedules, moves, new events) second,
  /// demand increases (xi raises) third and relaxations last — then close
  /// with one global re-offer pass. Freed capacity is visible to the
  /// demand-raising repairs, which empirically lowers the total dif.
  kReordered,
};

/// Aggregate report of one batch.
struct BatchResult {
  Plan plan;                        ///< final plan (== planner->plan())
  int64_t negative_impact = 0;      ///< summed dif over all repairs
  double total_utility = 0.0;
  int events_below_lower_bound = 0;
  int ops_applied = 0;
  int added_by_final_reoffer = 0;   ///< kReordered's closing pass
};

/// Applies `ops` to `planner` as one batch. Stops at the first operation
/// that fails validation (kInvalidArgument / kOutOfRange) and reports it;
/// operations before it remain applied (same as running them one by one).
Result<BatchResult> ApplyBatch(IncrementalPlanner* planner,
                               std::vector<AtomicOp> ops,
                               BatchMode mode = BatchMode::kSequential);

}  // namespace gepc

#endif  // GEPC_IEP_BATCH_H_
