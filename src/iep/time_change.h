#ifndef GEPC_IEP_TIME_CHANGE_H_
#define GEPC_IEP_TIME_CHANGE_H_

#include "core/instance.h"
#include "core/plan.h"
#include "core/types.h"
#include "iep/iep_result.h"

namespace gepc {

/// Algorithm 5 (ts/tt Changing) of Sec. IV-C. `instance` must already carry
/// e_j's new holding time; `previous` is the plan being repaired.
///
///  1. Every attendee whose plan now conflicts with e_j drops it (uc_j
///     removals, each dif 1), and is re-offered other events.
///  2. If attendance fell below xi_j, other users are offered e_j in
///     decreasing utility order (pure additions, dif 0) up to eta_j.
///  3. If still short, Algorithm 4 transfers users from events with spare
///     attendees.
/// Approximation ratio (paper): 1 / ((uc_j + xi_j - n'_j)(Uc_max - 1)).
IepResult ApplyTimeChange(const Instance& instance, const Plan& previous,
                          EventId event);

}  // namespace gepc

#endif  // GEPC_IEP_TIME_CHANGE_H_
