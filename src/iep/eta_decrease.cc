#include "iep/eta_decrease.h"

#include <algorithm>
#include <vector>

#include "gepc/topup.h"

namespace gepc {

void FinalizeIepResult(const Instance& instance, IepResult* result) {
  result->total_utility = result->plan.TotalUtility(instance);
  result->events_below_lower_bound = 0;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (result->plan.attendance(j) < instance.event(j).lower_bound) {
      ++result->events_below_lower_bound;
    }
  }
}

IepResult ApplyEtaDecrease(const Instance& instance, const Plan& previous,
                           EventId event) {
  IepResult result;
  result.plan = previous;

  const int attendance = previous.attendance(event);
  const int eta = instance.event(event).upper_bound;
  if (attendance <= eta) {  // Lines 1-2: nothing to repair
    FinalizeIepResult(instance, &result);
    return result;
  }

  // Line 4: attendees in decreasing order of utility for the event.
  std::vector<UserId> attendees = previous.attendees_of(event);
  std::sort(attendees.begin(), attendees.end(), [&](UserId a, UserId b) {
    const double ua = instance.utility(a, event);
    const double ub = instance.utility(b, event);
    if (ua != ub) return ua > ub;
    return a < b;
  });

  // Line 5: the last n_j - eta'_j (lowest-utility) attendees lose the event.
  std::vector<UserId> removed;
  for (size_t k = static_cast<size_t>(eta); k < attendees.size(); ++k) {
    result.plan.Remove(attendees[k], event);
    removed.push_back(attendees[k]);
    ++result.negative_impact;
  }

  // Lines 6-8: re-offer other events to the displaced users ([4]).
  TopUpStats stats = TopUpUsers(instance, removed, &result.plan);
  result.added_by_topup = stats.added;

  FinalizeIepResult(instance, &result);
  return result;
}

}  // namespace gepc
