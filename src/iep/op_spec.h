#ifndef GEPC_IEP_OP_SPEC_H_
#define GEPC_IEP_OP_SPEC_H_

#include <string>

#include "common/result.h"
#include "iep/planner.h"

namespace gepc {

/// Parses the compact colon-separated atomic-op spec shared by the
/// `gepc_cli apply --op` flag and the `gepc_serve` JSONL protocol:
///
///   eta:EVENT:VALUE     xi:EVENT:VALUE       time:EVENT:START:END
///   budget:USER:VALUE   mu:USER:EVENT:VALUE  loc:EVENT:X:Y
///
/// Returns kInvalidArgument on an unknown kind, wrong field count, or a
/// non-numeric field. (The `new` op carries a per-user utility column and
/// has no compact spec; feed it through a GOPS1 trace instead.)
Result<AtomicOp> ParseOpSpec(const std::string& spec);

}  // namespace gepc

#endif  // GEPC_IEP_OP_SPEC_H_
