#include "iep/time_change.h"

#include <algorithm>
#include <vector>

#include "core/feasibility.h"
#include "gepc/topup.h"
#include "iep/xi_increase.h"

namespace gepc {

IepResult ApplyTimeChange(const Instance& instance, const Plan& previous,
                          EventId event) {
  IepResult result;
  result.plan = previous;

  // Lines 1-4: drop e_j from every attendee whose plan now conflicts with
  // its new holding time (or whose tour no longer fits — a location change
  // routed through this repair can break budgets too).
  std::vector<UserId> displaced;
  for (UserId i : previous.attendees_of(event)) {
    bool conflicted = false;
    for (EventId other : previous.events_of(i)) {
      if (other != event && instance.EventsConflict(other, event)) {
        conflicted = true;
        break;
      }
    }
    if (!conflicted &&
        UserTravelCost(instance, result.plan, i) <=
            instance.user(i).budget + 1e-9) {
      continue;
    }
    result.plan.Remove(i, event);
    displaced.push_back(i);
    ++result.negative_impact;
  }

  // Re-offer other events to the displaced users (additions only).
  TopUpStats displaced_stats = TopUpUsers(instance, displaced, &result.plan);
  result.added_by_topup += displaced_stats.added;

  const int xi = instance.event(event).lower_bound;
  const int eta = instance.event(event).upper_bound;
  if (result.plan.attendance(event) >= xi) {  // Lines 5-6
    FinalizeIepResult(instance, &result);
    return result;
  }

  // Lines 7-13: offer e_j to other users in decreasing utility order.
  std::vector<UserId> candidates;
  for (int i = 0; i < instance.num_users(); ++i) {
    if (!result.plan.Contains(i, event) && instance.utility(i, event) > 0.0) {
      candidates.push_back(i);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](UserId a, UserId b) {
    const double ua = instance.utility(a, event);
    const double ub = instance.utility(b, event);
    if (ua != ub) return ua > ub;
    return a < b;
  });
  for (UserId i : candidates) {
    if (result.plan.attendance(event) >= eta) break;
    if (CanAttend(instance, result.plan, i, event)) {
      result.plan.Add(i, event);  // pure addition: dif 0
    }
  }

  if (result.plan.attendance(event) >= xi) {  // Lines 14-15
    FinalizeIepResult(instance, &result);
    return result;
  }

  // Lines 16-18: still short — transfer users from events with spares via
  // Algorithm 4 (the instance already holds xi as e_j's lower bound).
  IepResult transfer = ApplyXiIncrease(instance, result.plan, event);
  transfer.negative_impact += result.negative_impact;
  transfer.added_by_topup += result.added_by_topup;
  return transfer;
}

}  // namespace gepc
