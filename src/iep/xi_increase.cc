#include "iep/xi_increase.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "core/feasibility.h"
#include "gepc/topup.h"

namespace gepc {

namespace {

/// Heap entry: transfer user `user` from `source` to the target event at
/// utility delta `delta` (entries are validated lazily on pop).
struct Transfer {
  double delta;
  UserId user;
  EventId source;

  bool operator<(const Transfer& other) const {
    if (delta != other.delta) return delta < other.delta;
    if (user != other.user) return user > other.user;
    return source > other.source;
  }
};

/// True iff swapping `source` -> `target` in u's plan keeps it conflict-free
/// and within budget.
bool SwapFeasible(const Instance& instance, const Plan& plan, UserId user,
                  EventId source, EventId target) {
  std::vector<EventId> events;
  for (EventId e : plan.events_of(user)) {
    if (e != source) events.push_back(e);
  }
  for (EventId e : events) {
    if (instance.EventsConflict(e, target)) return false;
  }
  events.push_back(target);
  return TourCost(instance, user, std::move(events)) <=
         instance.user(user).budget + 1e-9;
}

}  // namespace

IepResult ApplyXiIncrease(const Instance& instance, const Plan& previous,
                          EventId event) {
  IepResult result;
  result.plan = previous;

  const int xi = instance.event(event).lower_bound;
  const int attendance = previous.attendance(event);
  if (attendance >= xi) {  // Lines 1-2: already satisfied
    FinalizeIepResult(instance, &result);
    return result;
  }
  const int needed = xi - attendance;

  // Lines 4-7: heap of utility deltas over (spare attendee, donor event).
  std::priority_queue<Transfer> heap;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (j == event) continue;
    if (previous.attendance(j) <= instance.event(j).lower_bound) continue;
    for (UserId i : previous.attendees_of(j)) {
      if (previous.Contains(i, event)) continue;
      if (instance.utility(i, event) <= 0.0) continue;
      heap.push(Transfer{instance.utility(i, event) - instance.utility(i, j),
                         i, j});
    }
  }

  // Lines 8-16: pop best transfers until xi'_j is reached.
  std::vector<UserId> moved;
  std::vector<bool> user_moved(static_cast<size_t>(instance.num_users()),
                               false);
  int transferred = 0;
  while (transferred < needed && !heap.empty()) {
    const Transfer t = heap.top();
    heap.pop();
    // Lazy invalidation replaces the paper's explicit heap deletions
    // (Lines 13 and 16): stale entries are skipped on pop.
    if (user_moved[static_cast<size_t>(t.user)]) continue;
    if (!result.plan.Contains(t.user, t.source)) continue;
    if (result.plan.attendance(t.source) <=
        instance.event(t.source).lower_bound) {
      continue;
    }
    if (result.plan.Contains(t.user, event)) continue;
    if (result.plan.attendance(event) >= instance.event(event).upper_bound) {
      break;  // target is full; nothing else can be transferred in
    }
    if (!SwapFeasible(instance, result.plan, t.user, t.source, event)) {
      continue;
    }
    result.plan.Remove(t.user, t.source);
    result.plan.Add(t.user, event);
    ++result.negative_impact;  // the user lost e_j' (gaining e_j is not dif)
    user_moved[static_cast<size_t>(t.user)] = true;
    moved.push_back(t.user);
    ++transferred;
  }

  // Lines 17-19: re-offer other events to the moved users ([4]).
  TopUpStats stats = TopUpUsers(instance, moved, &result.plan);
  result.added_by_topup = stats.added;

  FinalizeIepResult(instance, &result);
  return result;
}

}  // namespace gepc
