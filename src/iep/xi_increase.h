#ifndef GEPC_IEP_XI_INCREASE_H_
#define GEPC_IEP_XI_INCREASE_H_

#include "core/instance.h"
#include "core/plan.h"
#include "core/types.h"
#include "iep/iep_result.h"

namespace gepc {

/// Algorithm 4 (xi Increasing) of Sec. IV-B. `instance` must already carry
/// the increased lower bound xi'_j; `previous` is the plan being repaired.
///
/// If n_j >= xi'_j nothing changes. Otherwise users are transferred to e_j
/// from events with spare attendees (n_j' > xi_j'): a max-heap over the
/// utility deltas Delta = mu(u_i, e_j) - mu(u_i, e_j') repeatedly yields
/// the cheapest transfer; a transfer is taken when swapping e_j' -> e_j in
/// u_i's plan stays conflict-free and within budget (and e_j has capacity).
/// Each transfer costs dif 1; transferred users are then re-offered other
/// events with the [4]-style insertion. If the heap drains before xi'_j is
/// reached the event keeps a reported shortfall — the paper's algorithms
/// are best-effort in the same way.
/// Approximation ratio (paper): 1 / ((xi'_j - n_j)(Uc_max - 2)).
IepResult ApplyXiIncrease(const Instance& instance, const Plan& previous,
                          EventId event);

}  // namespace gepc

#endif  // GEPC_IEP_XI_INCREASE_H_
