#include "iep/op_spec.h"

#include <cstdlib>
#include <vector>

namespace gepc {

namespace {

/// Splits "a:b:c" into fields.
std::vector<std::string> SplitSpec(const std::string& spec) {
  std::vector<std::string> fields;
  size_t begin = 0;
  while (begin <= spec.size()) {
    const size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      fields.push_back(spec.substr(begin));
      break;
    }
    fields.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
  return fields;
}

Result<int> ParseIntField(const std::string& spec, const std::string& field) {
  char* end = nullptr;
  const long value = std::strtol(field.c_str(), &end, 10);
  if (field.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("op '" + spec + "': '" + field +
                                   "' is not an integer");
  }
  return static_cast<int>(value);
}

Result<double> ParseDoubleField(const std::string& spec,
                                const std::string& field) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (field.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("op '" + spec + "': '" + field +
                                   "' is not a number");
  }
  return value;
}

}  // namespace

Result<AtomicOp> ParseOpSpec(const std::string& spec) {
  const std::vector<std::string> f = SplitSpec(spec);
  auto need = [&](size_t n) -> Status {
    if (f.size() != n) {
      return Status::InvalidArgument("op '" + spec + "' needs " +
                                     std::to_string(n - 1) + " fields");
    }
    return Status::OK();
  };
  if (f.empty() || f[0].empty()) {
    return Status::InvalidArgument("empty op spec");
  }
  if (f[0] == "eta") {
    GEPC_RETURN_IF_ERROR(need(3));
    GEPC_ASSIGN_OR_RETURN(const int event, ParseIntField(spec, f[1]));
    GEPC_ASSIGN_OR_RETURN(const int value, ParseIntField(spec, f[2]));
    return AtomicOp::UpperBoundChange(event, value);
  }
  if (f[0] == "xi") {
    GEPC_RETURN_IF_ERROR(need(3));
    GEPC_ASSIGN_OR_RETURN(const int event, ParseIntField(spec, f[1]));
    GEPC_ASSIGN_OR_RETURN(const int value, ParseIntField(spec, f[2]));
    return AtomicOp::LowerBoundChange(event, value);
  }
  if (f[0] == "time") {
    GEPC_RETURN_IF_ERROR(need(4));
    GEPC_ASSIGN_OR_RETURN(const int event, ParseIntField(spec, f[1]));
    GEPC_ASSIGN_OR_RETURN(const int start, ParseIntField(spec, f[2]));
    GEPC_ASSIGN_OR_RETURN(const int end, ParseIntField(spec, f[3]));
    return AtomicOp::TimeChange(event, {start, end});
  }
  if (f[0] == "budget") {
    GEPC_RETURN_IF_ERROR(need(3));
    GEPC_ASSIGN_OR_RETURN(const int user, ParseIntField(spec, f[1]));
    GEPC_ASSIGN_OR_RETURN(const double value, ParseDoubleField(spec, f[2]));
    return AtomicOp::BudgetChange(user, value);
  }
  if (f[0] == "mu") {
    GEPC_RETURN_IF_ERROR(need(4));
    GEPC_ASSIGN_OR_RETURN(const int user, ParseIntField(spec, f[1]));
    GEPC_ASSIGN_OR_RETURN(const int event, ParseIntField(spec, f[2]));
    GEPC_ASSIGN_OR_RETURN(const double value, ParseDoubleField(spec, f[3]));
    return AtomicOp::UtilityChange(user, event, value);
  }
  if (f[0] == "loc") {
    GEPC_RETURN_IF_ERROR(need(4));
    GEPC_ASSIGN_OR_RETURN(const int event, ParseIntField(spec, f[1]));
    GEPC_ASSIGN_OR_RETURN(const double x, ParseDoubleField(spec, f[2]));
    GEPC_ASSIGN_OR_RETURN(const double y, ParseDoubleField(spec, f[3]));
    return AtomicOp::LocationChange(event, {x, y});
  }
  return Status::InvalidArgument("unknown op kind '" + f[0] + "'");
}

}  // namespace gepc
