#ifndef GEPC_IEP_AVAILABILITY_H_
#define GEPC_IEP_AVAILABILITY_H_

#include <vector>

#include "iep/batch.h"
#include "iep/planner.h"
#include "spatial/reachability.h"
#include "temporal/interval.h"

namespace gepc {

/// The introduction's "unexpected work assignment" change: a user's
/// availability shrinks to `window`, so every event not fully inside the
/// window becomes unattendable — which the paper models by setting the
/// corresponding utilities to 0 ("if u1's availability changes ... then u1
/// can no longer attend e1, and mu(u1, e1) would become 0", Sec. II-B).
///
/// Returns one kUtilityChanged operation per event that (a) lies outside
/// the window and (b) currently has positive utility for the user.
///
/// A non-null `filter` (built over the same instance) additionally skips
/// events the user cannot reach within their travel budget: those events
/// can never enter any plan, so zeroing their utility is a no-op for the
/// planner and the resulting plan is identical with strictly fewer ops.
/// Note the instance then keeps the unattendable events' (unusable)
/// utilities — callers who later RAISE the user's budget should run the
/// unfiltered variant.
std::vector<AtomicOp> AvailabilityChangeOps(
    const Instance& instance, UserId user, Interval window,
    const ReachabilityFilter* filter = nullptr);

/// Convenience: builds the ops and applies them as one batch.
Result<BatchResult> ApplyAvailabilityChange(
    IncrementalPlanner* planner, UserId user, Interval window,
    BatchMode mode = BatchMode::kSequential,
    const ReachabilityFilter* filter = nullptr);

}  // namespace gepc

#endif  // GEPC_IEP_AVAILABILITY_H_
