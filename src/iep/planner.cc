#include "iep/planner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/feasibility.h"
#include "gepc/topup.h"
#include "iep/eta_decrease.h"
#include "iep/time_change.h"
#include "iep/xi_increase.h"

namespace gepc {

AtomicOp AtomicOp::UtilityChange(UserId user, EventId event, double utility) {
  AtomicOp op;
  op.kind = Kind::kUtilityChanged;
  op.user = user;
  op.event = event;
  op.new_utility = utility;
  return op;
}

AtomicOp AtomicOp::BudgetChange(UserId user, double budget) {
  AtomicOp op;
  op.kind = Kind::kBudgetChanged;
  op.user = user;
  op.new_budget = budget;
  return op;
}

AtomicOp AtomicOp::LowerBoundChange(EventId event, int xi) {
  AtomicOp op;
  op.kind = Kind::kLowerBoundChanged;
  op.event = event;
  op.new_bound = xi;
  return op;
}

AtomicOp AtomicOp::UpperBoundChange(EventId event, int eta) {
  AtomicOp op;
  op.kind = Kind::kUpperBoundChanged;
  op.event = event;
  op.new_bound = eta;
  return op;
}

AtomicOp AtomicOp::TimeChange(EventId event, Interval time) {
  AtomicOp op;
  op.kind = Kind::kTimeChanged;
  op.event = event;
  op.new_time = time;
  return op;
}

AtomicOp AtomicOp::LocationChange(EventId event, Point location) {
  AtomicOp op;
  op.kind = Kind::kLocationChanged;
  op.event = event;
  op.new_location = location;
  return op;
}

AtomicOp AtomicOp::NewEvent(Event event, std::vector<double> utilities) {
  AtomicOp op;
  op.kind = Kind::kNewEvent;
  op.new_event = event;
  op.new_event_utilities = std::move(utilities);
  return op;
}

Result<IncrementalPlanner> IncrementalPlanner::Create(Instance instance,
                                                      Plan plan) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  if (plan.num_users() != instance.num_users() ||
      plan.num_events() != instance.num_events()) {
    return Status::InvalidArgument("plan does not match the instance");
  }
  return IncrementalPlanner(std::move(instance), std::move(plan));
}

Status IncrementalPlanner::Mutate(const AtomicOp& op, Instance* instance,
                                  Plan* plan) {
  auto check_user = [&](UserId u) -> Status {
    if (u < 0 || u >= instance->num_users()) {
      return Status::OutOfRange("user id out of range");
    }
    return Status::OK();
  };
  auto check_event = [&](EventId e) -> Status {
    if (e < 0 || e >= instance->num_events()) {
      return Status::OutOfRange("event id out of range");
    }
    return Status::OK();
  };

  switch (op.kind) {
    case AtomicOp::Kind::kUtilityChanged:
      GEPC_RETURN_IF_ERROR(check_user(op.user));
      GEPC_RETURN_IF_ERROR(check_event(op.event));
      if (op.new_utility < 0.0) {
        return Status::InvalidArgument("utility must be non-negative");
      }
      instance->set_utility(op.user, op.event, op.new_utility);
      return Status::OK();
    case AtomicOp::Kind::kBudgetChanged:
      GEPC_RETURN_IF_ERROR(check_user(op.user));
      if (op.new_budget < 0.0) {
        return Status::InvalidArgument("budget must be non-negative");
      }
      instance->set_user_budget(op.user, op.new_budget);
      return Status::OK();
    case AtomicOp::Kind::kLowerBoundChanged:
      GEPC_RETURN_IF_ERROR(check_event(op.event));
      if (op.new_bound > instance->num_users()) {
        // Would leave the instance permanently infeasible — and, worse,
        // unbootable: Instance::Validate refuses xi > n, so a journaled
        // state with it could never be recovered after a crash.
        return Status::Infeasible(
            "lower bound exceeds the number of users");
      }
      return instance->set_event_bounds(op.event, op.new_bound,
                                        std::max(op.new_bound,
                                                 instance->event(op.event)
                                                     .upper_bound));
    case AtomicOp::Kind::kUpperBoundChanged:
      GEPC_RETURN_IF_ERROR(check_event(op.event));
      return instance->set_event_bounds(
          op.event,
          std::min(instance->event(op.event).lower_bound, op.new_bound),
          op.new_bound);
    case AtomicOp::Kind::kTimeChanged:
      GEPC_RETURN_IF_ERROR(check_event(op.event));
      return instance->set_event_time(op.event, op.new_time);
    case AtomicOp::Kind::kLocationChanged:
      GEPC_RETURN_IF_ERROR(check_event(op.event));
      instance->set_event_location(op.event, op.new_location);
      return Status::OK();
    case AtomicOp::Kind::kNewEvent: {
      if (static_cast<int>(op.new_event_utilities.size()) !=
          instance->num_users()) {
        return Status::InvalidArgument(
            "new event needs one utility per user");
      }
      if (!op.new_event.IsValid()) {
        return Status::InvalidArgument("new event is malformed");
      }
      if (op.new_event.lower_bound > instance->num_users()) {
        return Status::Infeasible(
            "new event's lower bound exceeds the number of users");
      }
      const EventId id = instance->AddEvent(op.new_event,
                                            op.new_event_utilities);
      if (plan != nullptr) plan->EnsureEventCapacity(id + 1);
      return Status::OK();
    }
  }
  return Status::Internal("unhandled atomic operation kind");
}

Result<IepResult> IncrementalPlanner::Apply(const AtomicOp& op) {
  // Snapshot values the repairs need from *before* the mutation.
  const Plan previous = plan_;
  GEPC_RETURN_IF_ERROR(Mutate(op, &instance_, &plan_));

  IepResult result;
  switch (op.kind) {
    case AtomicOp::Kind::kUpperBoundChanged:
      if (op.new_bound < previous.attendance(op.event)) {
        result = ApplyEtaDecrease(instance_, previous, op.event);  // Alg. 3
      } else {
        // eta increased: new room — pure re-offer of this event.
        result.plan = previous;
        std::vector<UserId> everyone;
        for (int i = 0; i < instance_.num_users(); ++i) everyone.push_back(i);
        result.added_by_topup =
            TopUpUsers(instance_, everyone, &result.plan).added;
        FinalizeIepResult(instance_, &result);
      }
      break;

    case AtomicOp::Kind::kLowerBoundChanged:
      if (op.new_bound > previous.attendance(op.event)) {
        result = ApplyXiIncrease(instance_, previous, op.event);  // Alg. 4
      } else {
        // xi decreased (or still met): the plan stays feasible unchanged.
        result.plan = previous;
        FinalizeIepResult(instance_, &result);
      }
      break;

    case AtomicOp::Kind::kTimeChanged:
      result = ApplyTimeChange(instance_, previous, op.event);  // Alg. 5
      break;

    case AtomicOp::Kind::kLocationChanged:
      // The move can bust attendee budgets; Algorithm 5's repair handles
      // budget-driven drops and refills the event.
      result = ApplyTimeChange(instance_, previous, op.event);
      break;

    case AtomicOp::Kind::kNewEvent: {
      // The paper reduces "new event" to raising its lower bound from 0 to
      // xi; Algorithm 5's offer-then-transfer path implements exactly that
      // on an event with no attendees yet.
      Plan grown = previous;
      grown.EnsureEventCapacity(instance_.num_events());
      result = ApplyTimeChange(instance_, grown,
                               instance_.num_events() - 1);
      break;
    }

    case AtomicOp::Kind::kUtilityChanged: {
      result.plan = previous;
      if (op.new_utility <= 0.0 && previous.Contains(op.user, op.event)) {
        // The user can no longer attend: drop it, re-offer them others,
        // and refill the event if it fell below xi (Alg. 5 tail).
        result.plan.Remove(op.user, op.event);
        ++result.negative_impact;
        result.added_by_topup +=
            TopUpUsers(instance_, {op.user}, &result.plan).added;
        if (result.plan.attendance(op.event) <
            instance_.event(op.event).lower_bound) {
          IepResult refill = ApplyXiIncrease(instance_, result.plan, op.event);
          refill.negative_impact += result.negative_impact;
          refill.added_by_topup += result.added_by_topup;
          result = std::move(refill);
          break;
        }
      } else if (op.new_utility > 0.0) {
        // Higher (or newly positive) interest: try adding the event.
        result.added_by_topup +=
            TopUpUsers(instance_, {op.user}, &result.plan).added;
      }
      FinalizeIepResult(instance_, &result);
      break;
    }

    case AtomicOp::Kind::kBudgetChanged: {
      result.plan = previous;
      std::vector<EventId> starved;
      // Shed lowest-utility events until the tour fits the new budget.
      while (UserTravelCost(instance_, result.plan, op.user) >
             instance_.user(op.user).budget + 1e-9) {
        const std::vector<EventId>& events = result.plan.events_of(op.user);
        if (events.empty()) break;
        const EventId victim = *std::min_element(
            events.begin(), events.end(), [&](EventId a, EventId b) {
              return instance_.utility(op.user, a) <
                     instance_.utility(op.user, b);
            });
        result.plan.Remove(op.user, victim);
        ++result.negative_impact;
        if (result.plan.attendance(victim) <
            instance_.event(victim).lower_bound) {
          starved.push_back(victim);
        }
      }
      // A bigger budget (or freed time) may admit more events.
      result.added_by_topup +=
          TopUpUsers(instance_, {op.user}, &result.plan).added;
      // Refill events the sheds pushed below xi (Algorithm 4 per event).
      for (EventId j : starved) {
        if (result.plan.attendance(j) >= instance_.event(j).lower_bound) {
          continue;
        }
        IepResult refill = ApplyXiIncrease(instance_, result.plan, j);
        refill.negative_impact += result.negative_impact;
        refill.added_by_topup += result.added_by_topup;
        result = std::move(refill);
      }
      FinalizeIepResult(instance_, &result);
      break;
    }
  }

  plan_ = result.plan;
  return result;
}

int IncrementalPlanner::Reoffer() {
  return TopUpPlan(instance_, &plan_).added;
}

Result<GepcResult> IncrementalPlanner::ReSolve(const AtomicOp& op,
                                               const GepcOptions& options) const {
  Instance copy = instance_;
  GEPC_RETURN_IF_ERROR(Mutate(op, &copy, nullptr));
  return SolveGepc(copy, options);
}

}  // namespace gepc
