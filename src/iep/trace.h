#ifndef GEPC_IEP_TRACE_H_
#define GEPC_IEP_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "iep/planner.h"

namespace gepc {

/// Text serialization for streams of atomic operations ("GOPS1"): lets a
/// production system log every change it absorbed and lets tests/tools
/// replay a day of drift deterministically.
///
///   GOPS1
///   eta <event> <value>
///   xi <event> <value>
///   time <event> <start> <end>
///   loc <event> <x> <y>
///   budget <user> <value>
///   mu <user> <event> <value>
///   new <x> <y> <xi> <eta> <start> <end> <fee> <mu_0> ... <mu_{n-1}>
///
/// Comments (#) and blank lines are ignored. A `new` row carries one
/// utility per user of the instance it will be applied to.
Status SaveOps(const std::vector<AtomicOp>& ops, std::ostream& out);

/// Writes the single row for `op` (no header) — the append primitive the
/// service journal uses so a trace can grow one accepted operation at a
/// time. Doubles are written with 17 significant digits so rows round-trip
/// byte-identically.
Status SaveOp(const AtomicOp& op, std::ostream& out);
Status SaveOpsToFile(const std::vector<AtomicOp>& ops,
                     const std::string& path);

Result<std::vector<AtomicOp>> LoadOps(std::istream& in);
Result<std::vector<AtomicOp>> LoadOpsFromFile(const std::string& path);

/// Parses a single op row (one line, no header, no trailing newline) —
/// the primitive LoadOps and the journal's crash-tolerant scanner share.
/// Returns kInvalidArgument on anything that is not a well-formed row.
Result<AtomicOp> ParseOpRow(const std::string& line);

}  // namespace gepc

#endif  // GEPC_IEP_TRACE_H_
