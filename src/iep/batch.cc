#include "iep/batch.h"

#include <algorithm>

namespace gepc {

namespace {

/// Scheduling phase of an operation under kReordered; lower runs earlier.
/// Classification compares against the instance state at batch start — a
/// heuristic, since earlier ops can flip a later op's direction, but the
/// repairs themselves are direction-aware so correctness never depends on
/// the classification.
int Phase(const Instance& instance, const AtomicOp& op) {
  switch (op.kind) {
    case AtomicOp::Kind::kUpperBoundChanged:
      return op.new_bound < instance.event(op.event).upper_bound ? 0 : 3;
    case AtomicOp::Kind::kBudgetChanged:
      return op.new_budget < instance.user(op.user).budget ? 0 : 3;
    case AtomicOp::Kind::kUtilityChanged:
      return op.new_utility < instance.utility(op.user, op.event) ? 0 : 3;
    case AtomicOp::Kind::kTimeChanged:
    case AtomicOp::Kind::kLocationChanged:
      return 1;
    case AtomicOp::Kind::kNewEvent:
      return 2;
    case AtomicOp::Kind::kLowerBoundChanged:
      return op.new_bound > instance.event(op.event).lower_bound ? 2 : 3;
  }
  return 3;
}

}  // namespace

Result<BatchResult> ApplyBatch(IncrementalPlanner* planner,
                               std::vector<AtomicOp> ops, BatchMode mode) {
  if (planner == nullptr) {
    return Status::InvalidArgument("planner must not be null");
  }

  if (mode == BatchMode::kReordered) {
    const Instance& at_start = planner->instance();
    std::stable_sort(ops.begin(), ops.end(),
                     [&](const AtomicOp& a, const AtomicOp& b) {
                       return Phase(at_start, a) < Phase(at_start, b);
                     });
  }

  BatchResult batch;
  for (const AtomicOp& op : ops) {
    GEPC_ASSIGN_OR_RETURN(IepResult step, planner->Apply(op));
    batch.negative_impact += step.negative_impact;
    ++batch.ops_applied;
  }

  if (mode == BatchMode::kReordered) {
    // Closing sweep: capacity freed by early ops that no later repair
    // claimed gets re-offered globally (additions only, dif 0).
    batch.added_by_final_reoffer = planner->Reoffer();
  }

  batch.plan = planner->plan();
  batch.total_utility = batch.plan.TotalUtility(planner->instance());
  for (int j = 0; j < planner->instance().num_events(); ++j) {
    if (batch.plan.attendance(j) < planner->instance().event(j).lower_bound) {
      ++batch.events_below_lower_bound;
    }
  }
  return batch;
}

}  // namespace gepc
