#include "spatial/reachability.h"

namespace gepc {

namespace {

std::vector<Point> EventLocations(const Instance& instance) {
  std::vector<Point> locations;
  locations.reserve(static_cast<size_t>(instance.num_events()));
  for (const Event& event : instance.events()) {
    locations.push_back(event.location);
  }
  return locations;
}

}  // namespace

ReachabilityFilter::ReachabilityFilter(const Instance& instance,
                                       double cell_size)
    : instance_(instance), grid_(EventLocations(instance), cell_size) {}

std::vector<EventId> ReachabilityFilter::AttendableEvents(UserId i) const {
  const User& user = instance_.user(i);
  // The disk radius ignores fees (they only shrink the budget), so the grid
  // returns a superset; the exact round-trip test below trims it.
  const std::vector<int> nearby = grid_.RadiusQuery(
      user.location, user.budget / 2.0 + kBudgetEpsilon);
  std::vector<EventId> attendable;
  attendable.reserve(nearby.size());
  for (int j : nearby) {
    if (CanReach(i, j)) attendable.push_back(j);
  }
  return attendable;  // RadiusQuery ascends, so this does too
}

bool ReachabilityFilter::CanReach(UserId i, EventId j) const {
  return 2.0 * instance_.UserEventDistance(i, j) + instance_.event(j).fee <=
         instance_.user(i).budget + kBudgetEpsilon;
}

}  // namespace gepc
