#ifndef GEPC_SPATIAL_REACHABILITY_H_
#define GEPC_SPATIAL_REACHABILITY_H_

#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "spatial/grid_index.h"

namespace gepc {

/// Budget-reachability prefilter over an instance's events.
///
/// Any closed tour that visits event e_j is at least the round trip
/// 2 * d(l_ui, l_ej) long (triangle inequality), and the admission fee is
/// charged on top — so events with 2 * d + fee > B_i can NEVER appear in
/// u_i's plan, whatever else the plan holds. The filter answers "which
/// events could u_i attend at all?" through the grid index with a disk of
/// radius B_i / 2, in O(cells touched + candidates) instead of the O(m)
/// scan the solvers previously ran per user.
///
/// The filter is a pure accelerator: it returns a superset-exact candidate
/// set (the same events the brute-force round-trip check admits), so wiring
/// it into a solver never changes the solver's result, only its cost.
/// It snapshots event locations at construction; rebuild after location
/// mutations (IEP's kLocationChanged) before trusting it again.
class ReachabilityFilter {
 public:
  /// Indexes the instance's current event locations. `cell_size <= 0`
  /// auto-sizes (see GridIndex).
  explicit ReachabilityFilter(const Instance& instance,
                              double cell_size = 0.0);

  const GridIndex& grid() const { return grid_; }

  /// Events e_j with 2 * d(u_i, e_j) + fee_j <= B_i + eps, ascending by
  /// event id — exactly the events u_i could attend alone on the budget
  /// side (utility and conflicts are NOT consulted here).
  std::vector<EventId> AttendableEvents(UserId i) const;

  /// Same question for one (user, event) pair, O(1).
  bool CanReach(UserId i, EventId j) const;

  /// The budget epsilon shared with core/feasibility's tour checks.
  static constexpr double kBudgetEpsilon = 1e-9;

 private:
  const Instance& instance_;
  GridIndex grid_;
};

}  // namespace gepc

#endif  // GEPC_SPATIAL_REACHABILITY_H_
