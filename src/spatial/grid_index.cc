#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

namespace gepc {

namespace {

/// Hard cap on cells per axis: pathological cell sizes (tiny cell over a
/// huge extent) degrade to a coarser grid instead of an enormous table.
constexpr int kMaxCellsPerAxis = 2048;

int ClampCell(int c, int cells) {
  return std::clamp(c, 0, cells - 1);
}

}  // namespace

GridIndex::GridIndex(std::vector<Point> points, double cell_size)
    : points_(std::move(points)) {
  for (const Point& p : points_) bounds_.Extend(p);
  if (points_.empty()) {
    bounds_ = BoundingBox{0.0, 0.0, 0.0, 0.0};
  }

  const double width = std::max(0.0, bounds_.Width());
  const double height = std::max(0.0, bounds_.Height());
  if (cell_size > 0.0) {
    cell_size_ = cell_size;
  } else {
    // ~1 point per cell on average: edge = sqrt(area / n). Degenerate
    // extents (all points collinear or identical) fall back to one cell.
    const double area = width * height;
    const size_t n = std::max<size_t>(1, points_.size());
    cell_size_ = area > 0.0 ? std::sqrt(area / static_cast<double>(n)) : 0.0;
    if (cell_size_ <= 0.0) {
      cell_size_ = std::max({width, height, 1.0});
    }
  }

  cells_x_ = std::clamp(
      static_cast<int>(std::floor(width / cell_size_)) + 1, 1,
      kMaxCellsPerAxis);
  cells_y_ = std::clamp(
      static_cast<int>(std::floor(height / cell_size_)) + 1, 1,
      kMaxCellsPerAxis);
  cells_.assign(static_cast<size_t>(cells_x_) * static_cast<size_t>(cells_y_),
                {});
  for (int id = 0; id < num_points(); ++id) {
    cells_[static_cast<size_t>(CellOf(points_[static_cast<size_t>(id)]))]
        .push_back(id);  // ids ascend, so each cell list is sorted
  }
}

int GridIndex::CellX(const Point& p) const {
  return ClampCell(
      static_cast<int>(std::floor((p.x - bounds_.min_x) / cell_size_)),
      cells_x_);
}

int GridIndex::CellY(const Point& p) const {
  return ClampCell(
      static_cast<int>(std::floor((p.y - bounds_.min_y) / cell_size_)),
      cells_y_);
}

int GridIndex::CellOf(const Point& p) const {
  return CellY(p) * cells_x_ + CellX(p);
}

const std::vector<int>& GridIndex::PointsInCell(int cx, int cy) const {
  return cells_[static_cast<size_t>(cy) * static_cast<size_t>(cells_x_) +
                static_cast<size_t>(cx)];
}

std::vector<int> GridIndex::RangeQuery(const BoundingBox& box) const {
  std::vector<int> hits;
  if (num_points() == 0 || box.max_x < box.min_x || box.max_y < box.min_y) {
    return hits;
  }
  const int x0 = CellX(Point{box.min_x, box.min_y});
  const int y0 = CellY(Point{box.min_x, box.min_y});
  const int x1 = CellX(Point{box.max_x, box.max_y});
  const int y1 = CellY(Point{box.max_x, box.max_y});
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      for (int id : PointsInCell(cx, cy)) {
        if (box.Contains(points_[static_cast<size_t>(id)])) {
          hits.push_back(id);
        }
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

std::vector<int> GridIndex::RadiusQuery(const Point& center,
                                        double radius) const {
  std::vector<int> hits;
  if (num_points() == 0 || radius < 0.0) return hits;
  const BoundingBox disk_box{center.x - radius, center.y - radius,
                             center.x + radius, center.y + radius};
  const int x0 = CellX(Point{disk_box.min_x, disk_box.min_y});
  const int y0 = CellY(Point{disk_box.min_x, disk_box.min_y});
  const int x1 = CellX(Point{disk_box.max_x, disk_box.max_y});
  const int y1 = CellY(Point{disk_box.max_x, disk_box.max_y});
  const double r2 = radius * radius;
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      for (int id : PointsInCell(cx, cy)) {
        if (SquaredDistance(center, points_[static_cast<size_t>(id)]) <= r2) {
          hits.push_back(id);
        }
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

}  // namespace gepc
