#ifndef GEPC_SPATIAL_GRID_INDEX_H_
#define GEPC_SPATIAL_GRID_INDEX_H_

#include <vector>

#include "geom/bounding_box.h"
#include "geom/point.h"

namespace gepc {

/// A uniform grid over a static point set (event locations, in practice).
/// Range and radius queries touch only the cells overlapping the query
/// region, so a query costs O(cells touched + hits) instead of O(points) —
/// the paper's utilities are zero outside a user's travel budget, so this
/// is the index behind every "which events can u_i reach?" question.
///
/// The index is immutable after construction (IEP location mutations are
/// rare enough that callers rebuild; see ReachabilityFilter). All query
/// results are returned in ascending point-id order so downstream solvers
/// stay deterministic regardless of cell iteration order.
class GridIndex {
 public:
  /// Indexes `points` (ids are positions in the vector). `cell_size <= 0`
  /// picks a cell edge automatically, targeting ~1 point per cell (capped
  /// so degenerate clouds cannot explode the cell table).
  explicit GridIndex(std::vector<Point> points, double cell_size = 0.0);

  int num_points() const { return static_cast<int>(points_.size()); }
  const Point& point(int id) const {
    return points_[static_cast<size_t>(id)];
  }

  /// Bounding box of the indexed points (empty-extent for 0 points).
  const BoundingBox& bounds() const { return bounds_; }
  double cell_size() const { return cell_size_; }
  int cells_x() const { return cells_x_; }
  int cells_y() const { return cells_y_; }

  /// Grid coordinates of the cell containing `p`, clamped into the grid.
  int CellX(const Point& p) const;
  int CellY(const Point& p) const;
  /// Flat cell id (y * cells_x + x), clamped into the grid.
  int CellOf(const Point& p) const;

  /// Point ids whose location falls in cell (cx, cy); ascending.
  const std::vector<int>& PointsInCell(int cx, int cy) const;

  /// Ids of points inside `box` (inclusive edges), ascending.
  std::vector<int> RangeQuery(const BoundingBox& box) const;

  /// Ids of points within Euclidean distance `radius` of `center`
  /// (inclusive), ascending. Negative radius returns nothing.
  std::vector<int> RadiusQuery(const Point& center, double radius) const;

 private:
  std::vector<Point> points_;
  BoundingBox bounds_;
  double cell_size_ = 1.0;
  int cells_x_ = 1;
  int cells_y_ = 1;
  /// cells_[cy * cells_x_ + cx] = ascending point ids in that cell.
  std::vector<std::vector<int>> cells_;
};

}  // namespace gepc

#endif  // GEPC_SPATIAL_GRID_INDEX_H_
