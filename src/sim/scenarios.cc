#include "sim/scenarios.h"

namespace gepc {

const char* ScenarioPresetName(ScenarioPreset preset) {
  switch (preset) {
    case ScenarioPreset::kScheduling:
      return "scheduling";
    case ScenarioPreset::kAffinity:
      return "affinity";
    case ScenarioPreset::kMixed:
      return "mixed";
  }
  return "unknown";
}

bool ParseScenarioPreset(const std::string& name, ScenarioPreset* preset) {
  if (name == "scheduling") {
    *preset = ScenarioPreset::kScheduling;
  } else if (name == "affinity") {
    *preset = ScenarioPreset::kAffinity;
  } else if (name == "mixed") {
    *preset = ScenarioPreset::kMixed;
  } else {
    return false;
  }
  return true;
}

SimulationConfig MakeScenarioConfig(ScenarioPreset preset, uint64_t seed) {
  SimulationConfig config;
  config.base.num_users = 150;
  config.base.num_events = 12;
  config.base.mean_eta = 12;
  config.base.mean_xi = 3;
  config.base.seed = seed * 0x9E3779B97F4A7C15ULL + 101;
  config.num_days = 5;
  config.seed = seed;

  switch (preset) {
    case ScenarioPreset::kScheduling:
      // Drafted events with candidate placements, a busier organizer side.
      config.new_events_per_day = 2;
      config.candidates_per_new_event = 4;
      break;
    case ScenarioPreset::kAffinity:
      // Social ties make utility assignment-dependent; the refiner gets
      // real work every day.
      config.affinity_lambda = 0.5;
      config.friendship.mean_degree = 6.0;
      config.friendship.seed = seed + 13;
      config.planner.refine_with_local_search = true;
      break;
    case ScenarioPreset::kMixed:
      config.new_events_per_day = 2;
      config.candidates_per_new_event = 4;
      config.affinity_lambda = 0.5;
      config.friendship.mean_degree = 6.0;
      config.friendship.seed = seed + 13;
      config.planner.refine_with_local_search = true;
      break;
  }
  return config;
}

}  // namespace gepc
