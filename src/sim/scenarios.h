#ifndef GEPC_SIM_SCENARIOS_H_
#define GEPC_SIM_SCENARIOS_H_

#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace gepc {

/// Named simulation presets — the workloads `gepc_cli sim --scenario=...`
/// and the benches run, so drivers stop hand-assembling SimulationConfig
/// knobs.
enum class ScenarioPreset {
  /// Organizer-side scheduling: every day's new events arrive as drafts
  /// with candidate (slot, venue) pairs and the sched search places them.
  kScheduling,
  /// Social-affinity utilities: seeded friendship graph, lambda > 0,
  /// affinity-aware local-search refinement after each day.
  kAffinity,
  /// Both at once — scheduling decisions scored affinity-aware.
  kMixed,
};

const char* ScenarioPresetName(ScenarioPreset preset);

/// Parses "scheduling" / "affinity" / "mixed". Returns false (and leaves
/// `preset` untouched) on anything else — callers turn that into a usage
/// error (exit 64).
bool ParseScenarioPreset(const std::string& name, ScenarioPreset* preset);

/// The preset's full SimulationConfig, seeded. Deterministic per
/// (preset, seed); callers may still override individual knobs afterwards
/// (the CLI applies --days/--users/--events/--resolve on top).
SimulationConfig MakeScenarioConfig(ScenarioPreset preset, uint64_t seed);

}  // namespace gepc

#endif  // GEPC_SIM_SCENARIOS_H_
