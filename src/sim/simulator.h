#ifndef GEPC_SIM_SIMULATOR_H_
#define GEPC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/friendship.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "iep/planner.h"

namespace gepc {

/// Configuration of a multi-day EBSN platform simulation.
///
/// The introduction's setting: every day the platform computes a "Plan for
/// Today", and between plans the world drifts — organizers announce new
/// events, reschedule, shrink venues or raise minimum headcounts; users
/// lose interest or change travel budgets. The simulator generates that
/// drift as streams of atomic operations (Sec. II-B) and maintains the
/// global plan either incrementally (IEP) or by re-planning from scratch.
struct SimulationConfig {
  /// Day-0 city.
  GeneratorConfig base;

  int num_days = 7;

  /// Organizer-side drift, per existing event per day.
  double p_time_shift = 0.10;
  double p_eta_shrink = 0.05;
  double p_xi_raise = 0.05;

  /// New events announced per day.
  int new_events_per_day = 1;

  /// Scheduling scenario: when > 0, each day's new events arrive as DRAFTS
  /// with this many candidate (slot, venue) pairs, and the organizer-side
  /// scheduler (src/sched) picks the placement — oracle-scored, affinity-
  /// aware when affinity_lambda is armed — before the NewEvent op is
  /// applied. 0 (default) keeps the legacy direct-placement drift.
  int candidates_per_new_event = 0;

  /// User-side drift, per user per day.
  double p_interest_loss = 0.03;  ///< zero one positive utility
  double p_budget_change = 0.05;  ///< rescale budget by U[0.6, 1.4]
  /// Probability a user's availability shrinks to a random sub-window of
  /// the day (expands to utility-zero ops per the paper's Sec. II-B
  /// example). Off by default.
  double p_availability_shrink = 0.0;

  /// Planner driving day 0 (and the Re-solve mode).
  GepcOptions planner;

  /// true: maintain the plan with the incremental algorithms (IEP);
  /// false: re-solve from scratch after each day's drift (the baseline).
  bool incremental = true;

  /// Affinity scenario: when non-zero, a seeded friendship graph
  /// (config.friendship) is generated over the day-0 users and plans are
  /// scored with mu' = mu + lambda * friends-attending. Day-0 and re-solve
  /// planning thread the affinity through RefinePlan (when
  /// planner.refine_with_local_search is on), and incremental days finish
  /// with an affinity-aware refine pass. 0 (default) is byte-identical to
  /// the plain simulation.
  double affinity_lambda = 0.0;
  FriendshipConfig friendship;

  uint64_t seed = 1;
};

/// Metrics of one simulated day (after its drift was absorbed).
struct DayMetrics {
  int day = 0;
  int ops = 0;                      ///< atomic operations that day
  double total_utility = 0.0;
  double effective_utility = 0.0;   ///< utility on events at/above xi
  int events_below_lower_bound = 0;
  int64_t negative_impact = 0;      ///< dif accumulated that day
  double plan_seconds = 0.0;        ///< time spent repairing / re-solving
  /// Affinity-aware utility (== total_utility when affinity_lambda == 0).
  double affinity_utility = 0.0;
};

struct SimulationResult {
  std::vector<DayMetrics> days;
  int64_t total_negative_impact = 0;
  double final_utility = 0.0;
  /// Final day's affinity-aware utility (== final_utility when unarmed).
  double final_affinity_utility = 0.0;
  double total_plan_seconds = 0.0;
};

/// Runs the whole simulation. Deterministic per config (seeded).
Result<SimulationResult> RunSimulation(const SimulationConfig& config);

}  // namespace gepc

#endif  // GEPC_SIM_SIMULATOR_H_
