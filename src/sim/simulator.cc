#include "sim/simulator.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "gepc/baselines.h"
#include "iep/availability.h"

namespace gepc {

namespace {

/// One day's drift as atomic operations against the current instance.
std::vector<AtomicOp> DriftOps(const Instance& instance,
                               const SimulationConfig& config, Rng* rng) {
  std::vector<AtomicOp> ops;

  for (int j = 0; j < instance.num_events(); ++j) {
    const Event& e = instance.event(j);
    if (rng->Bernoulli(config.p_time_shift)) {
      const Minutes shift =
          static_cast<Minutes>(rng->UniformInt(30, 120)) *
          (rng->Bernoulli(0.5) ? 1 : -1);
      ops.push_back(AtomicOp::TimeChange(
          j, {e.time.start + shift, e.time.end + shift}));
    }
    if (rng->Bernoulli(config.p_eta_shrink) && e.upper_bound > 1) {
      ops.push_back(AtomicOp::UpperBoundChange(
          j, std::max(1, e.upper_bound -
                             static_cast<int>(rng->UniformInt(1, 3)))));
    }
    if (rng->Bernoulli(config.p_xi_raise) && e.lower_bound < e.upper_bound) {
      ops.push_back(AtomicOp::LowerBoundChange(
          j, std::min(e.upper_bound,
                      e.lower_bound + static_cast<int>(rng->UniformInt(1, 2)))));
    }
  }

  for (int i = 0; i < instance.num_users(); ++i) {
    if (rng->Bernoulli(config.p_interest_loss)) {
      // Zero one currently-positive utility (availability change).
      std::vector<EventId> positive;
      for (int j = 0; j < instance.num_events(); ++j) {
        if (instance.utility(i, j) > 0.0) positive.push_back(j);
      }
      if (!positive.empty()) {
        const EventId j = positive[static_cast<size_t>(
            rng->UniformUint64(positive.size()))];
        ops.push_back(AtomicOp::UtilityChange(i, j, 0.0));
      }
    }
    if (rng->Bernoulli(config.p_budget_change)) {
      ops.push_back(AtomicOp::BudgetChange(
          i, instance.user(i).budget * rng->UniformDouble(0.6, 1.4)));
    }
    if (rng->Bernoulli(config.p_availability_shrink)) {
      // Find the day's span from the events and keep a random sub-window.
      Minutes lo = 0;
      Minutes hi = 1;
      for (int j = 0; j < instance.num_events(); ++j) {
        lo = std::min(lo, instance.event(j).time.start);
        hi = std::max(hi, instance.event(j).time.end);
      }
      const Minutes start =
          static_cast<Minutes>(rng->UniformInt(lo, (lo + hi) / 2));
      const Minutes end =
          static_cast<Minutes>(rng->UniformInt((lo + hi) / 2 + 1, hi));
      for (AtomicOp& op :
           AvailabilityChangeOps(instance, i, {start, end})) {
        ops.push_back(std::move(op));
      }
    }
  }

  for (int k = 0; k < config.new_events_per_day; ++k) {
    Event fresh;
    fresh.location = {rng->UniformDouble(0.0, config.base.city_width),
                      rng->UniformDouble(0.0, config.base.city_height)};
    fresh.upper_bound = std::max(
        1, static_cast<int>(rng->UniformDouble(0.5, 1.5) *
                            config.base.mean_eta));
    fresh.lower_bound = std::min(
        fresh.upper_bound,
        static_cast<int>(rng->UniformDouble(0.0, config.base.mean_xi)));
    const Minutes start = static_cast<Minutes>(rng->UniformInt(0, 700));
    fresh.time = {start,
                  start + static_cast<Minutes>(rng->UniformInt(30, 150))};
    std::vector<double> utilities;
    utilities.reserve(static_cast<size_t>(instance.num_users()));
    for (int i = 0; i < instance.num_users(); ++i) {
      utilities.push_back(rng->Bernoulli(0.4) ? rng->UniformDouble() : 0.0);
    }
    ops.push_back(AtomicOp::NewEvent(fresh, std::move(utilities)));
  }
  return ops;
}

DayMetrics Snapshot(int day, const Instance& instance, const Plan& plan) {
  DayMetrics metrics;
  metrics.day = day;
  metrics.total_utility = plan.TotalUtility(instance);
  metrics.effective_utility = EffectiveUtility(instance, plan);
  for (int j = 0; j < instance.num_events(); ++j) {
    if (plan.attendance(j) < instance.event(j).lower_bound) {
      ++metrics.events_below_lower_bound;
    }
  }
  return metrics;
}

}  // namespace

Result<SimulationResult> RunSimulation(const SimulationConfig& config) {
  if (config.num_days < 1) {
    return Status::InvalidArgument("num_days must be >= 1");
  }
  GEPC_ASSIGN_OR_RETURN(Instance instance, GenerateInstance(config.base));

  Timer day0_timer;
  GEPC_ASSIGN_OR_RETURN(GepcResult initial, SolveGepc(instance, config.planner));
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner planner,
      IncrementalPlanner::Create(std::move(instance), initial.plan));

  SimulationResult result;
  DayMetrics day0 = Snapshot(0, planner.instance(), planner.plan());
  day0.plan_seconds = day0_timer.ElapsedSeconds();
  result.days.push_back(day0);
  result.total_plan_seconds += day0.plan_seconds;

  Rng rng(config.seed * 0x9E3779B1ULL + 17);
  for (int day = 1; day <= config.num_days; ++day) {
    const std::vector<AtomicOp> ops =
        DriftOps(planner.instance(), config, &rng);

    Timer timer;
    int64_t dif = 0;
    if (config.incremental) {
      for (const AtomicOp& op : ops) {
        GEPC_ASSIGN_OR_RETURN(IepResult step, planner.Apply(op));
        dif += step.negative_impact;
      }
    } else {
      // Baseline: mutate, then re-plan everyone from scratch.
      const Plan before = planner.plan();
      for (const AtomicOp& op : ops) {
        GEPC_ASSIGN_OR_RETURN(IepResult step, planner.Apply(op));
        (void)step;
      }
      GEPC_ASSIGN_OR_RETURN(GepcResult redo,
                            SolveGepc(planner.instance(), config.planner));
      dif = NegativeImpact(before, redo.plan);
      GEPC_ASSIGN_OR_RETURN(
          planner, IncrementalPlanner::Create(planner.instance(), redo.plan));
    }

    DayMetrics metrics = Snapshot(day, planner.instance(), planner.plan());
    metrics.ops = static_cast<int>(ops.size());
    metrics.negative_impact = dif;
    metrics.plan_seconds = timer.ElapsedSeconds();
    result.days.push_back(metrics);
    result.total_negative_impact += dif;
    result.total_plan_seconds += metrics.plan_seconds;
  }
  result.final_utility = result.days.back().total_utility;
  return result;
}

}  // namespace gepc
