#include "sim/simulator.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "gepc/baselines.h"
#include "iep/availability.h"
#include "sched/schedule.h"

namespace gepc {

namespace {

/// One day's drift as atomic operations against the current instance.
std::vector<AtomicOp> DriftOps(const Instance& instance,
                               const SimulationConfig& config,
                               const AffinityParams& affinity, Rng* rng) {
  std::vector<AtomicOp> ops;

  for (int j = 0; j < instance.num_events(); ++j) {
    const Event& e = instance.event(j);
    if (rng->Bernoulli(config.p_time_shift)) {
      const Minutes shift =
          static_cast<Minutes>(rng->UniformInt(30, 120)) *
          (rng->Bernoulli(0.5) ? 1 : -1);
      ops.push_back(AtomicOp::TimeChange(
          j, {e.time.start + shift, e.time.end + shift}));
    }
    if (rng->Bernoulli(config.p_eta_shrink) && e.upper_bound > 1) {
      ops.push_back(AtomicOp::UpperBoundChange(
          j, std::max(1, e.upper_bound -
                             static_cast<int>(rng->UniformInt(1, 3)))));
    }
    if (rng->Bernoulli(config.p_xi_raise) && e.lower_bound < e.upper_bound) {
      ops.push_back(AtomicOp::LowerBoundChange(
          j, std::min(e.upper_bound,
                      e.lower_bound + static_cast<int>(rng->UniformInt(1, 2)))));
    }
  }

  for (int i = 0; i < instance.num_users(); ++i) {
    if (rng->Bernoulli(config.p_interest_loss)) {
      // Zero one currently-positive utility (availability change).
      std::vector<EventId> positive;
      for (int j = 0; j < instance.num_events(); ++j) {
        if (instance.utility(i, j) > 0.0) positive.push_back(j);
      }
      if (!positive.empty()) {
        const EventId j = positive[static_cast<size_t>(
            rng->UniformUint64(positive.size()))];
        ops.push_back(AtomicOp::UtilityChange(i, j, 0.0));
      }
    }
    if (rng->Bernoulli(config.p_budget_change)) {
      ops.push_back(AtomicOp::BudgetChange(
          i, instance.user(i).budget * rng->UniformDouble(0.6, 1.4)));
    }
    if (rng->Bernoulli(config.p_availability_shrink)) {
      // Find the day's span from the events and keep a random sub-window.
      Minutes lo = 0;
      Minutes hi = 1;
      for (int j = 0; j < instance.num_events(); ++j) {
        lo = std::min(lo, instance.event(j).time.start);
        hi = std::max(hi, instance.event(j).time.end);
      }
      const Minutes start =
          static_cast<Minutes>(rng->UniformInt(lo, (lo + hi) / 2));
      const Minutes end =
          static_cast<Minutes>(rng->UniformInt((lo + hi) / 2 + 1, hi));
      for (AtomicOp& op :
           AvailabilityChangeOps(instance, i, {start, end})) {
        ops.push_back(std::move(op));
      }
    }
  }

  if (config.candidates_per_new_event > 0 && config.new_events_per_day > 0) {
    // Scheduling drift: the day's new events arrive as drafts with
    // candidate (slot, venue) pairs, and the organizer-side scheduler
    // (oracle-scored, affinity-aware when armed) picks the placement.
    ScheduleProblem problem;
    problem.users = instance.users();
    for (int k = 0; k < config.new_events_per_day; ++k) {
      DraftEvent draft;
      draft.interest.reserve(static_cast<size_t>(instance.num_users()));
      for (int i = 0; i < instance.num_users(); ++i) {
        draft.interest.push_back(rng->Bernoulli(0.4) ? rng->UniformDouble()
                                                     : 0.0);
      }
      draft.lower_bound =
          static_cast<int>(rng->UniformDouble(0.0, config.base.mean_xi));
      for (int c = 0; c < config.candidates_per_new_event; ++c) {
        ScheduleCandidate cand;
        cand.venue = {rng->UniformDouble(0.0, config.base.city_width),
                      rng->UniformDouble(0.0, config.base.city_height)};
        cand.capacity = std::max(
            1, static_cast<int>(rng->UniformDouble(0.5, 1.5) *
                                config.base.mean_eta));
        const Minutes start = static_cast<Minutes>(rng->UniformInt(0, 700));
        cand.slot = {start,
                     start + static_cast<Minutes>(rng->UniformInt(30, 150))};
        draft.candidates.push_back(cand);
      }
      problem.drafts.push_back(std::move(draft));
    }
    ScheduleOptions sched;
    sched.seed = rng->NextUint64();
    sched.affinity = affinity;
    const Result<ScheduleResult> scheduled = SolveSchedule(problem, sched);
    if (scheduled.ok()) {
      for (size_t d = 0; d < problem.drafts.size(); ++d) {
        const int c = scheduled->choice[d];
        if (c < 0) continue;  // every candidate fault-skipped
        const DraftEvent& draft = problem.drafts[d];
        const ScheduleCandidate& cand =
            draft.candidates[static_cast<size_t>(c)];
        Event fresh;
        fresh.location = cand.venue;
        fresh.upper_bound = cand.capacity;
        fresh.lower_bound = std::min(draft.lower_bound, cand.capacity);
        fresh.time = cand.slot;
        ops.push_back(AtomicOp::NewEvent(fresh, draft.interest));
      }
    }
    return ops;
  }

  for (int k = 0; k < config.new_events_per_day; ++k) {
    Event fresh;
    fresh.location = {rng->UniformDouble(0.0, config.base.city_width),
                      rng->UniformDouble(0.0, config.base.city_height)};
    fresh.upper_bound = std::max(
        1, static_cast<int>(rng->UniformDouble(0.5, 1.5) *
                            config.base.mean_eta));
    fresh.lower_bound = std::min(
        fresh.upper_bound,
        static_cast<int>(rng->UniformDouble(0.0, config.base.mean_xi)));
    const Minutes start = static_cast<Minutes>(rng->UniformInt(0, 700));
    fresh.time = {start,
                  start + static_cast<Minutes>(rng->UniformInt(30, 150))};
    std::vector<double> utilities;
    utilities.reserve(static_cast<size_t>(instance.num_users()));
    for (int i = 0; i < instance.num_users(); ++i) {
      utilities.push_back(rng->Bernoulli(0.4) ? rng->UniformDouble() : 0.0);
    }
    ops.push_back(AtomicOp::NewEvent(fresh, std::move(utilities)));
  }
  return ops;
}

DayMetrics Snapshot(int day, const Instance& instance, const Plan& plan,
                    const AffinityParams& affinity) {
  DayMetrics metrics;
  metrics.day = day;
  metrics.total_utility = plan.TotalUtility(instance);
  metrics.effective_utility = EffectiveUtility(instance, plan);
  metrics.affinity_utility = affinity.Armed()
                                 ? AffinityUtility(instance, plan, affinity)
                                 : metrics.total_utility;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (plan.attendance(j) < instance.event(j).lower_bound) {
      ++metrics.events_below_lower_bound;
    }
  }
  return metrics;
}

}  // namespace

Result<SimulationResult> RunSimulation(const SimulationConfig& config) {
  if (config.num_days < 1) {
    return Status::InvalidArgument("num_days must be >= 1");
  }
  GEPC_ASSIGN_OR_RETURN(Instance instance, GenerateInstance(config.base));

  // The friendship graph covers the day-0 users; drift never adds users, so
  // it stays valid for the whole simulation.
  FriendshipGraph friends;
  AffinityParams affinity;
  if (config.affinity_lambda != 0.0) {
    friends = GenerateFriendshipGraph(instance.users(), config.friendship);
    affinity.graph = &friends;
    affinity.lambda = config.affinity_lambda;
  }
  GepcOptions planner_options = config.planner;
  if (affinity.Armed()) planner_options.local_search.affinity = affinity;

  Timer day0_timer;
  GEPC_ASSIGN_OR_RETURN(GepcResult initial, SolveGepc(instance, planner_options));
  GEPC_ASSIGN_OR_RETURN(
      IncrementalPlanner planner,
      IncrementalPlanner::Create(std::move(instance), initial.plan));

  SimulationResult result;
  DayMetrics day0 = Snapshot(0, planner.instance(), planner.plan(), affinity);
  day0.plan_seconds = day0_timer.ElapsedSeconds();
  result.days.push_back(day0);
  result.total_plan_seconds += day0.plan_seconds;

  Rng rng(config.seed * 0x9E3779B1ULL + 17);
  for (int day = 1; day <= config.num_days; ++day) {
    const std::vector<AtomicOp> ops =
        DriftOps(planner.instance(), config, affinity, &rng);

    Timer timer;
    int64_t dif = 0;
    if (config.incremental) {
      for (const AtomicOp& op : ops) {
        GEPC_ASSIGN_OR_RETURN(IepResult step, planner.Apply(op));
        dif += step.negative_impact;
      }
      // The incremental repairs optimize plain mu; an affinity-aware refine
      // pass recovers the social term the repairs cannot see.
      if (affinity.Armed() && planner_options.refine_with_local_search) {
        Plan refined = planner.plan();
        GEPC_ASSIGN_OR_RETURN(
            const LocalSearchStats refine_stats,
            RefinePlan(planner.instance(), &refined,
                       planner_options.local_search));
        if (refine_stats.add_moves + refine_stats.replace_moves +
                refine_stats.transfer_moves >
            0) {
          GEPC_ASSIGN_OR_RETURN(planner, IncrementalPlanner::Create(
                                             planner.instance(), refined));
        }
      }
    } else {
      // Baseline: mutate, then re-plan everyone from scratch.
      const Plan before = planner.plan();
      for (const AtomicOp& op : ops) {
        GEPC_ASSIGN_OR_RETURN(IepResult step, planner.Apply(op));
        (void)step;
      }
      GEPC_ASSIGN_OR_RETURN(GepcResult redo,
                            SolveGepc(planner.instance(), planner_options));
      dif = NegativeImpact(before, redo.plan);
      GEPC_ASSIGN_OR_RETURN(
          planner, IncrementalPlanner::Create(planner.instance(), redo.plan));
    }

    DayMetrics metrics =
        Snapshot(day, planner.instance(), planner.plan(), affinity);
    metrics.ops = static_cast<int>(ops.size());
    metrics.negative_impact = dif;
    metrics.plan_seconds = timer.ElapsedSeconds();
    result.days.push_back(metrics);
    result.total_negative_impact += dif;
    result.total_plan_seconds += metrics.plan_seconds;
  }
  result.final_utility = result.days.back().total_utility;
  result.final_affinity_utility = result.days.back().affinity_utility;
  return result;
}

}  // namespace gepc
