#ifndef GEPC_EXEC_TASK_RNG_H_
#define GEPC_EXEC_TASK_RNG_H_

#include <cstdint>

#include "common/rng.h"

namespace gepc {

/// Derives the seed of task `task_index`'s private random stream from the
/// instance's master seed. The mapping is a SplitMix64 finalizer over
/// (master_seed, task_index), so streams for distinct tasks are
/// statistically independent while depending ONLY on the two inputs — never
/// on which thread runs the task or in what order. This is what makes the
/// sharded solver's output identical at any thread count: shard s always
/// draws from DeriveTaskSeed(seed, s).
inline uint64_t DeriveTaskSeed(uint64_t master_seed, uint64_t task_index) {
  uint64_t z = master_seed + (task_index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The per-task generator itself.
inline Rng TaskRng(uint64_t master_seed, uint64_t task_index) {
  return Rng(DeriveTaskSeed(master_seed, task_index));
}

}  // namespace gepc

#endif  // GEPC_EXEC_TASK_RNG_H_
