#ifndef GEPC_EXEC_THREAD_POOL_H_
#define GEPC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gepc {

/// A small fixed-size thread pool for CPU-bound solver work (shard solves,
/// parallel candidate builds). Tasks are plain std::function thunks; Submit
/// returns a future so callers can fan out and join. The pool is
/// intentionally minimal: no priorities, no work stealing, no resizing —
/// the sharded solver's units of work are coarse (one shard each), so a
/// mutex-guarded deque is nowhere near contention.
///
/// Determinism contract: the pool never influences *what* a task computes,
/// only *when* it runs. Components that need reproducible randomness derive
/// a per-task Rng stream from (instance seed, task index) — see task_rng.h —
/// so results are identical for any thread count, including 1.
///
/// Tasks must not Submit work to their own pool and block on it
/// (ParallelFor from inside a pool task can deadlock when every worker
/// waits); the solvers only ever drive the pool from the calling thread.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface from future::get (the library itself reports errors
  /// via Status and never throws).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [begin, end), distributing indices over the
  /// workers, and blocks until all calls return. The calling thread
  /// participates, so ParallelFor on a 1-thread pool degenerates to a plain
  /// loop. fn must be safe to call concurrently for distinct indices; the
  /// scheduling order is unspecified, so deterministic callers write each
  /// index's result into its own slot.
  void ParallelFor(int begin, int end, const std::function<void(int)>& fn);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gepc

#endif  // GEPC_EXEC_THREAD_POOL_H_
