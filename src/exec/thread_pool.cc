#include "exec/thread_pool.h"

#include <algorithm>

namespace gepc {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int t = 0; t < count; ++t) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int begin, int end,
                             const std::function<void(int)>& fn) {
  if (end <= begin) return;
  const int span = end - begin;
  // One claim-the-next-index worker per thread; the caller runs one too, so
  // a 1-thread pool still makes progress even while its worker is busy.
  std::atomic<int> next{begin};
  const auto drain = [&next, end, &fn] {
    for (int i = next.fetch_add(1, std::memory_order_relaxed); i < end;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  const int helpers = std::min(num_threads(), span);
  std::vector<std::future<void>> joined;
  joined.reserve(static_cast<size_t>(helpers));
  for (int t = 0; t < helpers; ++t) joined.push_back(Submit(drain));
  drain();
  for (std::future<void>& f : joined) f.get();
}

}  // namespace gepc
