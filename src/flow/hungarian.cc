#include "flow/hungarian.h"

#include <cmath>

namespace gepc {

HungarianSolver::HungarianSolver(int rows, int cols, std::vector<double> cost)
    : rows_(rows), cols_(cols), cost_(std::move(cost)) {}

Result<HungarianSolver::Assignment> HungarianSolver::Solve() const {
  if (rows_ < 1 || cols_ < rows_) {
    return Status::InvalidArgument(
        "need 1 <= rows <= cols for a perfect row assignment");
  }
  if (cost_.size() != static_cast<size_t>(rows_) * static_cast<size_t>(cols_)) {
    return Status::InvalidArgument("cost matrix has wrong size");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto cost_at = [&](int row, int col) {
    return cost_[static_cast<size_t>(row - 1) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(col - 1)];
  };

  // Jonker-Volgenant shortest augmenting paths with potentials (1-indexed;
  // column 0 is the virtual start).
  std::vector<double> u(static_cast<size_t>(rows_) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(cols_) + 1, 0.0);
  std::vector<int> matched_row(static_cast<size_t>(cols_) + 1, 0);
  std::vector<int> way(static_cast<size_t>(cols_) + 1, 0);

  for (int i = 1; i <= rows_; ++i) {
    matched_row[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(cols_) + 1, kInf);
    std::vector<bool> used(static_cast<size_t>(cols_) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int i0 = matched_row[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= cols_; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost_at(i0, j) - u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      if (!(delta < kInf)) {
        return Status::Infeasible(
            "row " + std::to_string(i - 1) +
            " cannot be assigned (all remaining pairs forbidden)");
      }
      for (int j = 0; j <= cols_; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(matched_row[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (matched_row[static_cast<size_t>(j0)] != 0);
    // Augment along the alternating path.
    while (j0 != 0) {
      const int j1 = way[static_cast<size_t>(j0)];
      matched_row[static_cast<size_t>(j0)] =
          matched_row[static_cast<size_t>(j1)];
      j0 = j1;
    }
  }

  Assignment assignment;
  assignment.column_of_row.assign(static_cast<size_t>(rows_), -1);
  for (int j = 1; j <= cols_; ++j) {
    const int row = matched_row[static_cast<size_t>(j)];
    if (row > 0) {
      assignment.column_of_row[static_cast<size_t>(row - 1)] = j - 1;
      assignment.total_cost += cost_at(row, j);
    }
  }
  for (int r = 0; r < rows_; ++r) {
    if (assignment.column_of_row[static_cast<size_t>(r)] < 0) {
      return Status::Internal("row left unmatched after augmentation");
    }
  }
  if (std::isinf(assignment.total_cost)) {
    return Status::Infeasible("optimal assignment uses a forbidden pair");
  }
  return assignment;
}

}  // namespace gepc
