#ifndef GEPC_FLOW_HUNGARIAN_H_
#define GEPC_FLOW_HUNGARIAN_H_

#include <limits>
#include <vector>

#include "common/result.h"

namespace gepc {

/// Minimum-cost assignment (Hungarian algorithm, Jonker-Volgenant style
/// O(n^2 m) shortest-augmenting-path variant) on a rows x cols cost matrix
/// with rows <= cols. Forbidden pairs use kForbidden.
///
/// Independent of MinCostFlow; the two are cross-checked in tests and this
/// one backs assignment sub-problems where a dense matrix is natural (e.g.
/// matching displaced users to replacement events 1:1).
class HungarianSolver {
 public:
  static constexpr double kForbidden = std::numeric_limits<double>::infinity();

  /// cost is row-major rows x cols. Preconditions: rows >= 1, cols >= rows.
  HungarianSolver(int rows, int cols, std::vector<double> cost);

  struct Assignment {
    /// column_of_row[r] = assigned column of row r (always valid on OK).
    std::vector<int> column_of_row;
    double total_cost = 0.0;
  };

  /// Finds the perfect (all rows matched) minimum-cost assignment.
  /// Returns kInfeasible if some row cannot be matched (forbidden pairs),
  /// kInvalidArgument on malformed dimensions.
  Result<Assignment> Solve() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> cost_;
};

}  // namespace gepc

#endif  // GEPC_FLOW_HUNGARIAN_H_
