#include "flow/min_cost_flow.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

#include "obs/metrics.h"

namespace gepc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MinCostFlow::MinCostFlow(int num_nodes)
    : first_out_(static_cast<size_t>(num_nodes)) {}

int MinCostFlow::AddEdge(int from, int to, int64_t capacity, double cost) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  assert(capacity >= 0);
  const int id = static_cast<int>(edges_.size());
  edges_.push_back(Edge{to, capacity, cost});
  edges_.push_back(Edge{from, 0, -cost});
  first_out_[static_cast<size_t>(from)].push_back(id);
  first_out_[static_cast<size_t>(to)].push_back(id + 1);
  initial_capacity_.push_back(capacity);
  return id / 2;
}

Result<MinCostFlow::FlowStats> MinCostFlow::Solve(int source, int sink) {
  static const auto solve_ms = obs::Registry::Global().GetHistogram(
      "gepc_flow_solve_ms", "min-cost-flow solve latency");
  obs::ScopedTimerMs timer(solve_ms.get());
  const int n = num_nodes();
  if (source < 0 || source >= n || sink < 0 || sink >= n || source == sink) {
    return Status::InvalidArgument("bad source/sink node ids");
  }

  // Node potentials; initialized by Bellman-Ford so that reduced costs
  // cost + pot[u] - pot[v] are non-negative even with negative input costs.
  std::vector<double> potential(static_cast<size_t>(n), 0.0);
  {
    bool changed = true;
    for (int pass = 0; pass < n && changed; ++pass) {
      changed = false;
      for (int u = 0; u < n; ++u) {
        if (potential[static_cast<size_t>(u)] == kInf) continue;
        for (int eid : first_out_[static_cast<size_t>(u)]) {
          const Edge& e = edges_[static_cast<size_t>(eid)];
          if (e.capacity <= 0) continue;
          const double candidate = potential[static_cast<size_t>(u)] + e.cost;
          if (candidate < potential[static_cast<size_t>(e.to)] - 1e-12) {
            potential[static_cast<size_t>(e.to)] = candidate;
            changed = true;
          }
        }
      }
    }
    if (changed) {
      return Status::Internal("negative-cost cycle in flow network");
    }
  }

  FlowStats stats;
  std::vector<double> dist(static_cast<size_t>(n));
  std::vector<int> parent_edge(static_cast<size_t>(n));

  while (true) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent_edge.begin(), parent_edge.end(), -1);
    dist[static_cast<size_t>(source)] = 0.0;
    using HeapItem = std::pair<double, int>;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[static_cast<size_t>(u)] + 1e-12) continue;
      for (int eid : first_out_[static_cast<size_t>(u)]) {
        const Edge& e = edges_[static_cast<size_t>(eid)];
        if (e.capacity <= 0) continue;
        const double reduced = e.cost + potential[static_cast<size_t>(u)] -
                               potential[static_cast<size_t>(e.to)];
        const double candidate = d + std::max(0.0, reduced);
        if (candidate < dist[static_cast<size_t>(e.to)] - 1e-12) {
          dist[static_cast<size_t>(e.to)] = candidate;
          parent_edge[static_cast<size_t>(e.to)] = eid;
          heap.emplace(candidate, e.to);
        }
      }
    }
    if (dist[static_cast<size_t>(sink)] == kInf) break;  // no augmenting path

    for (int u = 0; u < n; ++u) {
      if (dist[static_cast<size_t>(u)] < kInf) {
        potential[static_cast<size_t>(u)] += dist[static_cast<size_t>(u)];
      }
    }

    // Bottleneck along the path.
    int64_t push = std::numeric_limits<int64_t>::max();
    for (int v = sink; v != source;) {
      const int eid = parent_edge[static_cast<size_t>(v)];
      const Edge& e = edges_[static_cast<size_t>(eid)];
      push = std::min(push, e.capacity);
      v = edges_[static_cast<size_t>(eid ^ 1)].to;
    }
    for (int v = sink; v != source;) {
      const int eid = parent_edge[static_cast<size_t>(v)];
      edges_[static_cast<size_t>(eid)].capacity -= push;
      edges_[static_cast<size_t>(eid ^ 1)].capacity += push;
      stats.cost += static_cast<double>(push) *
                    edges_[static_cast<size_t>(eid)].cost;
      v = edges_[static_cast<size_t>(eid ^ 1)].to;
    }
    stats.flow += push;
  }
  return stats;
}

int64_t MinCostFlow::FlowOn(int edge_id) const {
  assert(edge_id >= 0 && edge_id < num_edges());
  // Flow equals the residual capacity accumulated on the reverse edge.
  return edges_[static_cast<size_t>(2 * edge_id + 1)].capacity;
}

}  // namespace gepc
