#ifndef GEPC_FLOW_MIN_COST_FLOW_H_
#define GEPC_FLOW_MIN_COST_FLOW_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace gepc {

/// Minimum-cost maximum-flow on a directed graph with integer capacities and
/// real edge costs. Successive-shortest-paths with node potentials:
/// Bellman-Ford once to absorb negative costs, Dijkstra afterwards.
///
/// Used by the Shmoys-Tardos rounding step (Sec. III-A): the fractional GAP
/// solution induces a bipartite job/machine-slot graph whose min-cost
/// matching LP is integral, so one min-cost-flow run produces the integral
/// assignment with cost no worse than the LP.
class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  int num_nodes() const { return static_cast<int>(first_out_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()) / 2; }

  /// Adds a directed edge; returns its id for FlowOn().
  /// Preconditions: valid node ids, capacity >= 0.
  int AddEdge(int from, int to, int64_t capacity, double cost);

  struct FlowStats {
    int64_t flow = 0;    ///< total units pushed from source to sink
    double cost = 0.0;   ///< sum of cost * flow over edges
  };

  /// Computes a minimum-cost maximum flow from `source` to `sink`.
  /// Returns kInvalidArgument on bad node ids, kInternal if a negative
  /// cycle is reachable (cannot happen for the bipartite graphs we build).
  Result<FlowStats> Solve(int source, int sink);

  /// Flow pushed through edge `edge_id` by the last Solve().
  int64_t FlowOn(int edge_id) const;

 private:
  struct Edge {
    int to;
    int64_t capacity;  // residual capacity
    double cost;
  };

  // Adjacency as edge-id lists; edges_ stores forward/backward pairs at
  // indices 2k / 2k+1.
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> first_out_;
  std::vector<int64_t> initial_capacity_;
};

}  // namespace gepc

#endif  // GEPC_FLOW_MIN_COST_FLOW_H_
