#ifndef GEPC_GEPC_TOPUP_H_
#define GEPC_GEPC_TOPUP_H_

#include "core/instance.h"
#include "core/plan.h"
#include "spatial/reachability.h"

namespace gepc {

/// Statistics of one top-up pass.
struct TopUpStats {
  int added = 0;  ///< (user, event) attendances added
};

/// Step 2 of the paper's two-step framework (Sec. III): the xi-GEPC plan
/// meets every lower bound with exactly xi_j attendees; this pass fills the
/// residual capacities eta_j - n_j by greedily inserting the remaining
/// (user, event) pairs in decreasing utility order, skipping any insertion
/// that would conflict, bust a budget, or exceed an upper bound — the
/// utility-ordered greedy arrangement of the GEP solvers of [4]. Only adds
/// events, so lower bounds stay satisfied.
///
/// A non-null `filter` (built over the same instance) restricts candidate
/// enumeration to each user's budget-reachable events. Events outside a
/// user's reach always fail the insertion's budget check, so the result is
/// identical — the filter only cuts the O(n * m) candidate build down to
/// O(sum of candidate-set sizes).
TopUpStats TopUpPlan(const Instance& instance, Plan* plan,
                     const ReachabilityFilter* filter = nullptr);

/// Same, but only allowed to add events to the given users (used by the IEP
/// algorithms, which re-offer events only to users whose plans changed, and
/// by the sharded solver's boundary-user merge).
TopUpStats TopUpUsers(const Instance& instance,
                      const std::vector<UserId>& users, Plan* plan,
                      const ReachabilityFilter* filter = nullptr);

}  // namespace gepc

#endif  // GEPC_GEPC_TOPUP_H_
