#include "gepc/event_copies.h"

#include <algorithm>
#include <cassert>

#include "core/feasibility.h"

namespace gepc {

CopyMap::CopyMap(const Instance& instance)
    : copies_of_event_(static_cast<size_t>(instance.num_events())) {
  for (int j = 0; j < instance.num_events(); ++j) {
    const int xi = instance.event(j).lower_bound;
    for (int k = 0; k < xi; ++k) {
      copies_of_event_[static_cast<size_t>(j)].push_back(
          static_cast<int>(event_of_copy_.size()));
      event_of_copy_.push_back(j);
    }
  }
}

void CopyPlan::Assign(int user, int copy) {
  assert(user_of_copy[static_cast<size_t>(copy)] == -1);
  user_of_copy[static_cast<size_t>(copy)] = user;
  copies_of_user[static_cast<size_t>(user)].push_back(copy);
}

void CopyPlan::Unassign(int copy) {
  const int user = user_of_copy[static_cast<size_t>(copy)];
  if (user < 0) return;
  auto& copies = copies_of_user[static_cast<size_t>(user)];
  copies.erase(std::find(copies.begin(), copies.end(), copy));
  user_of_copy[static_cast<size_t>(copy)] = -1;
}

int CopyPlan::UnassignedCopies() const {
  int unassigned = 0;
  for (int user : user_of_copy) {
    if (user < 0) ++unassigned;
  }
  return unassigned;
}

Plan CollapseToPlan(const Instance& instance, const CopyMap& copies,
                    const CopyPlan& copy_plan) {
  Plan plan(instance.num_users(), instance.num_events());
  for (int i = 0; i < instance.num_users(); ++i) {
    for (int copy : copy_plan.copies_of_user[static_cast<size_t>(i)]) {
      plan.Add(i, copies.event_of(copy));  // Add() dedups
    }
  }
  return plan;
}

double CopyTourCost(const Instance& instance, const CopyMap& copies, UserId i,
                    const std::vector<int>& copy_ids, int extra_copy) {
  std::vector<EventId> events;
  events.reserve(copy_ids.size() + 1);
  for (int copy : copy_ids) events.push_back(copies.event_of(copy));
  if (extra_copy >= 0) events.push_back(copies.event_of(extra_copy));
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  return TourCost(instance, i, std::move(events));
}

bool CanHoldCopy(const Instance& instance, const CopyMap& copies,
                 const CopyPlan& copy_plan, UserId i, int copy) {
  if (instance.utility(i, copies.event_of(copy)) <= 0.0) return false;
  const auto& held = copy_plan.copies_of_user[static_cast<size_t>(i)];
  for (int other : held) {
    if (copies.CopiesConflict(instance, other, copy)) return false;
  }
  const double cost = CopyTourCost(instance, copies, i, held, copy);
  return cost <= instance.user(i).budget + 1e-9;
}

}  // namespace gepc
