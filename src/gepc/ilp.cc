#include "gepc/ilp.h"

#include <utility>
#include <vector>

#include "gepc/user_menus.h"

namespace gepc {

Result<ExactResult> SolveGepcIlp(const Instance& instance,
                                 const GepcIlpOptions& options) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  if (instance.num_users() > options.max_users ||
      instance.num_events() > options.max_events ||
      instance.num_events() > 31) {
    return Status::InvalidArgument(
        "instance too large for the ILP formulation (raise limits)");
  }

  const int n = instance.num_users();
  const int m = instance.num_events();

  // Variable layout: one z per (user, feasible subset).
  struct Var {
    UserId user;
    uint32_t mask;
    double utility;
  };
  std::vector<Var> vars;
  std::vector<std::pair<int, int>> user_var_range(static_cast<size_t>(n));
  const ReachabilityFilter filter(instance);
  for (int i = 0; i < n; ++i) {
    GEPC_ASSIGN_OR_RETURN(
        const UserMenu menu,
        BuildUserMenu(instance, i, /*sort_by_utility_desc=*/false, &filter));
    const int begin = static_cast<int>(vars.size());
    for (size_t s = 0; s < menu.subsets.size(); ++s) {
      vars.push_back(Var{i, menu.subsets[s], menu.utilities[s]});
    }
    user_var_range[static_cast<size_t>(i)] = {begin,
                                              static_cast<int>(vars.size())};
  }

  LinearProgram lp(LinearProgram::Sense::kMaximize,
                   static_cast<int>(vars.size()));
  for (size_t v = 0; v < vars.size(); ++v) {
    lp.set_objective(static_cast<int>(v), vars[v].utility);
  }
  // Exactly one subset per user.
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> terms;
    const auto [begin, end] = user_var_range[static_cast<size_t>(i)];
    for (int v = begin; v < end; ++v) terms.emplace_back(v, 1.0);
    lp.AddConstraint(std::move(terms), Relation::kEqual, 1.0);
  }
  // Participation bounds per event.
  for (int j = 0; j < m; ++j) {
    std::vector<std::pair<int, double>> terms;
    for (size_t v = 0; v < vars.size(); ++v) {
      if (vars[v].mask & (1u << j)) terms.emplace_back(static_cast<int>(v), 1.0);
    }
    const Event& e = instance.event(j);
    if (!terms.empty()) {
      if (e.upper_bound < static_cast<int>(terms.size())) {
        lp.AddConstraint(terms, Relation::kLessEqual,
                         static_cast<double>(e.upper_bound));
      }
      if (e.lower_bound > 0) {
        lp.AddConstraint(std::move(terms), Relation::kGreaterEqual,
                         static_cast<double>(e.lower_bound));
      }
    } else if (e.lower_bound > 0) {
      // No feasible subset contains this event, yet xi > 0: the instance
      // is infeasible (reported like the MIP-infeasible case below).
      ExactResult result;
      result.plan = Plan(n, m);
      return result;
    }
  }

  Result<MipSolution> mip = SolveBinaryMip(lp, options.mip);
  ExactResult result;
  result.plan = Plan(n, m);
  if (!mip.ok()) {
    if (mip.status().code() == StatusCode::kInfeasible) {
      return result;  // feasible == false
    }
    return mip.status();
  }
  result.feasible = true;
  result.total_utility = mip->objective_value;
  result.explored_nodes = mip->explored_nodes;
  for (size_t v = 0; v < vars.size(); ++v) {
    if (mip->x[v] > 0.5) {
      for (int j = 0; j < m; ++j) {
        if (vars[v].mask & (1u << j)) result.plan.Add(vars[v].user, j);
      }
    }
  }
  return result;
}

}  // namespace gepc
