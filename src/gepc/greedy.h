#ifndef GEPC_GEPC_GREEDY_H_
#define GEPC_GEPC_GREEDY_H_

#include <cstdint>

#include "common/result.h"
#include "core/instance.h"
#include "gepc/gap_based.h"
#include "gepc/event_copies.h"

namespace gepc {

/// Options for the greedy xi-GEPC algorithm (Algorithm 2).
struct GreedyOptions {
  /// Seed for the random user visiting order — the paper notes the order
  /// changes the achieved utility (Sec. III-B, Example 5).
  uint64_t seed = 1;
};

/// Algorithm 2 of Sec. III-B: visit users in random order; each user
/// greedily grabs their highest-utility still-available event copy that
/// neither conflicts with their picks so far nor busts their budget, until
/// nothing more fits; stop when all copies are taken or all users visited.
/// Approximation ratio (paper): 1/(2 Uc_max); complexity O((m^+)^2 Uc_max).
Result<XiGepcResult> SolveXiGepcGreedy(const Instance& instance,
                                       const CopyMap& copies,
                                       const GreedyOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GEPC_GREEDY_H_
