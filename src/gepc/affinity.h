#ifndef GEPC_GEPC_AFFINITY_H_
#define GEPC_GEPC_AFFINITY_H_

#include <cstdint>

#include "core/instance.h"
#include "core/plan.h"
#include "data/friendship.h"

namespace gepc {

/// The social-affinity utility extension (ROADMAP "scenario diversity"):
/// with a friendship graph F and weight lambda, a user's per-event utility
/// becomes assignment-dependent,
///
///   mu'(u, e) = mu(u, e) + lambda * |friends(u) ∩ attendees(e)|,
///
/// so the affinity-aware plan score is
///
///   U'(P) = U(P) + lambda * AffinityPairs(F, P),
///
/// where AffinityPairs counts, over every assignment (u, e) in P, the
/// friends of u also attending e — i.e. each co-attending friend pair at an
/// event contributes twice (once from each endpoint), matching the sum of
/// the per-user mu' terms.
///
/// The same scoring is shared by the local-search refiner
/// (LocalSearchOptions::affinity), the sharded merge path and the
/// organizer-side scheduler (src/sched).
struct AffinityParams {
  /// Not owned; must outlive the solve. nullptr disables the term.
  const FriendshipGraph* graph = nullptr;
  double lambda = 0.0;

  bool Armed() const { return graph != nullptr && lambda != 0.0; }
};

/// |friends(u) ∩ attendees(j)| under `plan` (u itself never counts: the
/// graph has no self-loops).
int FriendsAttending(const FriendshipGraph& graph, const Plan& plan,
                     UserId u, EventId j);

/// Sum over assignments (u, e) of |friends(u) ∩ attendees(e)| — twice the
/// number of co-attending friend pairs. 0 for a null graph.
int64_t AffinityPairs(const FriendshipGraph* graph, const Plan& plan);

/// U'(P) = plan.TotalUtility(instance) + lambda * AffinityPairs. Equals the
/// plain total utility when `affinity` is not armed.
double AffinityUtility(const Instance& instance, const Plan& plan,
                       const AffinityParams& affinity);

/// Change in U'(P) from adding (u, j) to `plan` (u must not attend j yet):
/// mu(u, j) + 2 * lambda * FriendsAttending(u, j) — u gains lambda per
/// attending friend and each of those friends gains lambda for u.
double AffinityAddDelta(const Instance& instance, const Plan& plan,
                        const AffinityParams& affinity, UserId u, EventId j);

/// Change in U'(P) from removing (u, j) from `plan` (u must attend j);
/// always <= 0 for non-negative mu and lambda.
double AffinityRemoveDelta(const Instance& instance, const Plan& plan,
                           const AffinityParams& affinity, UserId u,
                           EventId j);

}  // namespace gepc

#endif  // GEPC_GEPC_AFFINITY_H_
