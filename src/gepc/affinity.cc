#include "gepc/affinity.h"

namespace gepc {

int FriendsAttending(const FriendshipGraph& graph, const Plan& plan,
                     UserId u, EventId j) {
  int count = 0;
  for (const UserId v : plan.attendees_of(j)) {
    if (v != u && graph.AreFriends(u, v)) ++count;
  }
  return count;
}

int64_t AffinityPairs(const FriendshipGraph* graph, const Plan& plan) {
  if (graph == nullptr) return 0;
  int64_t pairs = 0;
  for (UserId u = 0; u < plan.num_users(); ++u) {
    for (const EventId j : plan.events_of(u)) {
      pairs += FriendsAttending(*graph, plan, u, j);
    }
  }
  return pairs;
}

double AffinityUtility(const Instance& instance, const Plan& plan,
                       const AffinityParams& affinity) {
  double total = plan.TotalUtility(instance);
  if (affinity.Armed()) {
    total += affinity.lambda *
             static_cast<double>(AffinityPairs(affinity.graph, plan));
  }
  return total;
}

double AffinityAddDelta(const Instance& instance, const Plan& plan,
                        const AffinityParams& affinity, UserId u, EventId j) {
  double delta = instance.utility(u, j);
  if (affinity.Armed()) {
    delta += 2.0 * affinity.lambda *
             static_cast<double>(FriendsAttending(*affinity.graph, plan, u, j));
  }
  return delta;
}

double AffinityRemoveDelta(const Instance& instance, const Plan& plan,
                           const AffinityParams& affinity, UserId u,
                           EventId j) {
  double delta = -instance.utility(u, j);
  if (affinity.Armed()) {
    delta -= 2.0 * affinity.lambda *
             static_cast<double>(FriendsAttending(*affinity.graph, plan, u, j));
  }
  return delta;
}

}  // namespace gepc
