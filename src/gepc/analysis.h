#ifndef GEPC_GEPC_ANALYSIS_H_
#define GEPC_GEPC_ANALYSIS_H_

#include "core/instance.h"
#include "core/types.h"

namespace gepc {

/// The paper's Uc_i: an upper bound on how many events user i can attend —
/// the number of events within distance B_i / 2 of l_ui (each attended
/// event costs at least its round trip in the tour bound used by the
/// analysis; fees tighten the radius further). Appears in every
/// approximation ratio of Sec. III/IV.
int UcOf(const Instance& instance, UserId user);

/// Uc_max = max_i Uc_i.
int UcMax(const Instance& instance);

/// Worst-case guarantee floors the paper proves, instantiated on a concrete
/// instance. Both collapse to 0 when Uc_max makes the denominator
/// non-positive (degenerate tiny instances).
///
/// Greedy (Sec. III-B): 1 / (2 Uc_max).
double GreedyRatioFloor(const Instance& instance);

/// GAP-based (Sec. III-A): 1 / (Uc_max - 1) - O(eps); we report the leading
/// term minus eps.
double GapRatioFloor(const Instance& instance, double eps = 0.1);

}  // namespace gepc

#endif  // GEPC_GEPC_ANALYSIS_H_
