#ifndef GEPC_GEPC_BASELINES_H_
#define GEPC_GEPC_BASELINES_H_

#include <cstdint>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"

namespace gepc {

/// Result of a baseline planner (no lower-bound guarantees).
struct BaselineResult {
  Plan plan;
  double total_utility = 0.0;
  /// Events whose attendance ended below xi_j — with minimum-participant
  /// requirements enforced these events "cannot be held" (Sec. I), so a
  /// GEP-style planner silently produces cancelled events.
  int events_below_lower_bound = 0;
  /// Total utility counting only events at/above their lower bound (the
  /// utility users actually receive once under-subscribed events are
  /// cancelled). This is the metric that motivates GEPC over GEP.
  double effective_utility = 0.0;
};

/// The GEP problem of [4]: identical to GEPC minus constraint 4 (no
/// participation lower bounds). Solved with the utility-ordered greedy
/// insertion that also implements the paper framework's second step.
/// Serves as the "existing EBSN technique" baseline of the introduction.
Result<BaselineResult> SolveGepNoLowerBounds(const Instance& instance);

/// Uniformly random feasible assignment: users in random order greedily
/// take random feasible events. The weakest sensible baseline.
Result<BaselineResult> SolveRandomBaseline(const Instance& instance,
                                           uint64_t seed);

/// Utility of `plan` counting only events whose attendance reaches xi_j
/// (under-subscribed events are treated as cancelled).
double EffectiveUtility(const Instance& instance, const Plan& plan);

/// The Social Event Organization restriction of Li et al. [3] (Sec. VI):
/// each user attends AT MOST ONE event (so time conflicts and tours
/// degenerate — the only user-side check is the round trip fitting the
/// budget), events keep their upper bounds. Under this restriction the
/// problem is polynomial: we solve it OPTIMALLY as a min-cost max-flow
/// (utilities negated) over the user/event bipartite graph, making it both
/// a related-work baseline and an upper-bound reference for what
/// single-assignment planning can achieve. Lower bounds are ignored, like
/// the original SEO formulation; the shortfall is reported.
Result<BaselineResult> SolveSingleAssignmentOptimal(const Instance& instance);

}  // namespace gepc

#endif  // GEPC_GEPC_BASELINES_H_
