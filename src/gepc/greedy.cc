#include "gepc/greedy.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace gepc {

Result<XiGepcResult> SolveXiGepcGreedy(const Instance& instance,
                                       const CopyMap& copies,
                                       const GreedyOptions& options) {
  GEPC_RETURN_IF_ERROR(instance.Validate());

  const int n = instance.num_users();
  const int m = instance.num_events();
  XiGepcResult result{CopyPlan(n, copies.num_copies()), {}};
  if (copies.num_copies() == 0) return result;

  // Copies of one event are interchangeable, so we track how many copies of
  // each event are still unclaimed and hand out ids from the back.
  std::vector<int> remaining(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    remaining[static_cast<size_t>(j)] =
        static_cast<int>(copies.copies_of(j).size());
  }
  int total_remaining = copies.num_copies();

  Rng rng(options.seed);
  std::vector<UserId> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(&order);

  std::vector<EventId> favorites;
  for (UserId i : order) {
    if (total_remaining == 0) break;
    // u_i's favorite events, best first (Line 7 of Algorithm 2 repeatedly
    // extracts the max; one descending sweep is equivalent because adding a
    // pick only ever tightens the conflict/budget constraints).
    favorites.clear();
    for (int j = 0; j < m; ++j) {
      if (remaining[static_cast<size_t>(j)] > 0 &&
          instance.utility(i, j) > 0.0) {
        favorites.push_back(j);
      }
    }
    std::sort(favorites.begin(), favorites.end(), [&](EventId a, EventId b) {
      const double ua = instance.utility(i, a);
      const double ub = instance.utility(i, b);
      if (ua != ub) return ua > ub;
      return a < b;
    });

    for (EventId j : favorites) {
      if (remaining[static_cast<size_t>(j)] == 0) continue;
      const auto& copy_list = copies.copies_of(j);
      const int copy =
          copy_list[static_cast<size_t>(remaining[static_cast<size_t>(j)] - 1)];
      if (!CanHoldCopy(instance, copies, result.copy_plan, i, copy)) continue;
      result.copy_plan.Assign(i, copy);
      --remaining[static_cast<size_t>(j)];
      --total_remaining;
    }
  }
  return result;
}

}  // namespace gepc
