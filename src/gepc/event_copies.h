#ifndef GEPC_GEPC_EVENT_COPIES_H_
#define GEPC_GEPC_EVENT_COPIES_H_

#include <vector>

#include "core/instance.h"
#include "core/plan.h"
#include "core/types.h"

namespace gepc {

/// The paper's xi-GEPC transform (Sec. III-A): every event e_j is replaced
/// by xi_j identical copies; assigning each copy to exactly one user meets
/// the participation lower bound exactly. Copies of the same event
/// time-conflict with each other by construction (a user can attend an
/// event only once).
class CopyMap {
 public:
  /// Builds the copy list from the instance's current lower bounds.
  explicit CopyMap(const Instance& instance);

  /// m^+ = sum_j xi_j.
  int num_copies() const { return static_cast<int>(event_of_copy_.size()); }

  /// Original event of a copy.
  EventId event_of(int copy) const {
    return event_of_copy_[static_cast<size_t>(copy)];
  }

  /// Copy ids belonging to event j (xi_j of them).
  const std::vector<int>& copies_of(EventId j) const {
    return copies_of_event_[static_cast<size_t>(j)];
  }

  /// True iff the two copies cannot share a user's plan: same source event,
  /// or their source events time-conflict.
  bool CopiesConflict(const Instance& instance, int a, int b) const {
    const EventId ea = event_of(a);
    const EventId eb = event_of(b);
    return ea == eb || instance.EventsConflict(ea, eb);
  }

 private:
  std::vector<EventId> event_of_copy_;
  std::vector<std::vector<int>> copies_of_event_;
};

/// A partial assignment of copies to users produced by the xi-GEPC
/// algorithms, before collapsing into a Plan.
struct CopyPlan {
  /// copies_of_user[i] = copy ids user i holds.
  std::vector<std::vector<int>> copies_of_user;
  /// user_of_copy[c] = holder, or -1 while unassigned.
  std::vector<int> user_of_copy;

  CopyPlan(int num_users, int num_copies)
      : copies_of_user(static_cast<size_t>(num_users)),
        user_of_copy(static_cast<size_t>(num_copies), -1) {}

  void Assign(int user, int copy);
  void Unassign(int copy);
  int UnassignedCopies() const;
};

/// Collapses a copy plan into a Plan over the original events. Copies of
/// one event held by one user (which the conflict rules exclude, but the
/// collapse is defensive) merge into a single attendance.
Plan CollapseToPlan(const Instance& instance, const CopyMap& copies,
                    const CopyPlan& copy_plan);

/// Tour cost of user i if they attend exactly the distinct events behind
/// `copy_ids` (plus optionally `extra_copy`, -1 for none).
double CopyTourCost(const Instance& instance, const CopyMap& copies,
                    UserId i, const std::vector<int>& copy_ids,
                    int extra_copy = -1);

/// True iff `copy` can join user i's copies: no copy conflict and the tour
/// stays within budget.
bool CanHoldCopy(const Instance& instance, const CopyMap& copies,
                 const CopyPlan& copy_plan, UserId i, int copy);

}  // namespace gepc

#endif  // GEPC_GEPC_EVENT_COPIES_H_
