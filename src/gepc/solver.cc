#include "gepc/solver.h"

#include "gepc/regret_greedy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gepc {

namespace {

/// Cached registry handles for the solver's phase metrics (see
/// docs/observability.md for the catalogue).
struct SolverMetrics {
  std::shared_ptr<obs::Counter> solves;
  std::shared_ptr<obs::Histogram> total_ms;
  std::shared_ptr<obs::Histogram> xi_ms;
  std::shared_ptr<obs::Histogram> topup_ms;
  std::shared_ptr<obs::Histogram> local_search_ms;

  static const SolverMetrics& Get() {
    static const SolverMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      SolverMetrics m;
      m.solves = registry.GetCounter("gepc_solver_solves_total",
                                     "SolveGepc invocations");
      m.total_ms = registry.GetHistogram("gepc_solver_total_ms",
                                         "SolveGepc end-to-end latency");
      m.xi_ms = registry.GetHistogram(
          "gepc_solver_xi_ms", "xi-GEPC step latency (GAP/greedy/regret)");
      m.topup_ms =
          registry.GetHistogram("gepc_solver_topup_ms", "top-up pass latency");
      m.local_search_ms = registry.GetHistogram(
          "gepc_solver_local_search_ms", "local-search refinement latency");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

const char* GepcAlgorithmName(GepcAlgorithm algorithm) {
  switch (algorithm) {
    case GepcAlgorithm::kGapBased:
      return "GAP";
    case GepcAlgorithm::kGreedy:
      return "Greedy";
    case GepcAlgorithm::kRegret:
      return "Regret";
  }
  return "unknown";
}

Result<GepcResult> SolveGepc(const Instance& instance,
                             const GepcOptions& options) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  const SolverMetrics& om = SolverMetrics::Get();
  om.solves->Increment();
  obs::ScopedTimerMs total_timer(om.total_ms.get());
  GEPC_TRACE_SPAN("gepc.solve");

  const CopyMap copies(instance);

  Result<XiGepcResult> xi_result = Status::Internal("unset");
  {
    obs::ScopedTimerMs xi_timer(om.xi_ms.get());
    GEPC_TRACE_SPAN("gepc.xi_solve");
    if (options.algorithm == GepcAlgorithm::kGapBased) {
      xi_result = SolveXiGepcGapBased(instance, copies, options.gap_based);
      if (!xi_result.ok() &&
          xi_result.status().code() == StatusCode::kInfeasible &&
          options.fallback_to_greedy) {
        xi_result = SolveXiGepcGreedy(instance, copies, options.greedy);
      }
    } else if (options.algorithm == GepcAlgorithm::kRegret) {
      xi_result = SolveXiGepcRegret(instance, copies);
    } else {
      xi_result = SolveXiGepcGreedy(instance, copies, options.greedy);
    }
  }
  if (!xi_result.ok()) return xi_result.status();

  GepcResult result;
  result.adjust_stats = xi_result->adjust_stats;
  result.unplaced_copies = xi_result->copy_plan.UnassignedCopies();
  result.plan = CollapseToPlan(instance, copies, xi_result->copy_plan);

  if (options.run_topup) {
    obs::ScopedTimerMs topup_timer(om.topup_ms.get());
    GEPC_TRACE_SPAN("gepc.topup");
    result.topup_stats = TopUpPlan(instance, &result.plan);
  }
  if (options.refine_with_local_search) {
    obs::ScopedTimerMs refine_timer(om.local_search_ms.get());
    GEPC_TRACE_SPAN("gepc.local_search");
    GEPC_ASSIGN_OR_RETURN(
        result.local_search_stats,
        RefinePlan(instance, &result.plan, options.local_search));
  }

  result.total_utility = result.plan.TotalUtility(instance);
  result.affinity_utility = options.local_search.affinity.Armed()
                                ? AffinityUtility(instance, result.plan,
                                                  options.local_search.affinity)
                                : result.total_utility;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (result.plan.attendance(j) < instance.event(j).lower_bound) {
      ++result.events_below_lower_bound;
    }
  }
  return result;
}

}  // namespace gepc
