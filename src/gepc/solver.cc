#include "gepc/solver.h"

#include "gepc/regret_greedy.h"

namespace gepc {

const char* GepcAlgorithmName(GepcAlgorithm algorithm) {
  switch (algorithm) {
    case GepcAlgorithm::kGapBased:
      return "GAP";
    case GepcAlgorithm::kGreedy:
      return "Greedy";
    case GepcAlgorithm::kRegret:
      return "Regret";
  }
  return "unknown";
}

Result<GepcResult> SolveGepc(const Instance& instance,
                             const GepcOptions& options) {
  GEPC_RETURN_IF_ERROR(instance.Validate());

  const CopyMap copies(instance);

  Result<XiGepcResult> xi_result = Status::Internal("unset");
  if (options.algorithm == GepcAlgorithm::kGapBased) {
    xi_result = SolveXiGepcGapBased(instance, copies, options.gap_based);
    if (!xi_result.ok() &&
        xi_result.status().code() == StatusCode::kInfeasible &&
        options.fallback_to_greedy) {
      xi_result = SolveXiGepcGreedy(instance, copies, options.greedy);
    }
  } else if (options.algorithm == GepcAlgorithm::kRegret) {
    xi_result = SolveXiGepcRegret(instance, copies);
  } else {
    xi_result = SolveXiGepcGreedy(instance, copies, options.greedy);
  }
  if (!xi_result.ok()) return xi_result.status();

  GepcResult result;
  result.adjust_stats = xi_result->adjust_stats;
  result.unplaced_copies = xi_result->copy_plan.UnassignedCopies();
  result.plan = CollapseToPlan(instance, copies, xi_result->copy_plan);

  if (options.run_topup) {
    result.topup_stats = TopUpPlan(instance, &result.plan);
  }
  if (options.refine_with_local_search) {
    GEPC_ASSIGN_OR_RETURN(
        result.local_search_stats,
        RefinePlan(instance, &result.plan, options.local_search));
  }

  result.total_utility = result.plan.TotalUtility(instance);
  for (int j = 0; j < instance.num_events(); ++j) {
    if (result.plan.attendance(j) < instance.event(j).lower_bound) {
      ++result.events_below_lower_bound;
    }
  }
  return result;
}

}  // namespace gepc
