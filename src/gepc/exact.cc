#include "gepc/exact.h"

#include <algorithm>
#include <vector>

#include "core/feasibility.h"
#include "gepc/user_menus.h"

namespace gepc {

namespace {

class Search {
 public:
  Search(const Instance& instance, const ExactOptions& options,
         std::vector<UserMenu> menus)
      : instance_(instance), options_(options), menus_(std::move(menus)) {
    const int n = instance.num_users();
    // Suffix sums of per-user best utility for the optimistic bound.
    suffix_best_.assign(static_cast<size_t>(n) + 1, 0.0);
    for (int i = n - 1; i >= 0; --i) {
      suffix_best_[static_cast<size_t>(i)] =
          suffix_best_[static_cast<size_t>(i) + 1] +
          menus_[static_cast<size_t>(i)].best_utility;
    }
    // How many of users i..n-1 can attend event j at all.
    const int m = instance.num_events();
    suffix_attendable_.assign(
        (static_cast<size_t>(n) + 1) * static_cast<size_t>(m), 0);
    for (int i = n - 1; i >= 0; --i) {
      for (int j = 0; j < m; ++j) {
        suffix_attendable_[Idx(i, j)] =
            suffix_attendable_[Idx(i + 1, j)] +
            ((menus_[static_cast<size_t>(i)].attendable & (1u << j)) ? 1 : 0);
      }
    }
    counts_.assign(static_cast<size_t>(m), 0);
    chosen_.assign(static_cast<size_t>(n), 0);
  }

  Status Run() {
    return Recurse(0, 0.0);
  }

  bool found() const { return found_; }
  double best_utility() const { return best_utility_; }
  const std::vector<uint32_t>& best_choice() const { return best_choice_; }
  int64_t nodes() const { return nodes_; }

 private:
  size_t Idx(int i, int j) const {
    return static_cast<size_t>(i) * static_cast<size_t>(instance_.num_events()) +
           static_cast<size_t>(j);
  }

  Status Recurse(int user, double utility) {
    if (++nodes_ > options_.max_nodes) {
      return Status::Internal("exact solver exceeded its node budget");
    }
    const int n = instance_.num_users();
    const int m = instance_.num_events();
    if (user == n) {
      for (int j = 0; j < m; ++j) {
        if (counts_[static_cast<size_t>(j)] <
            instance_.event(j).lower_bound) {
          return Status::OK();
        }
      }
      if (!found_ || utility > best_utility_) {
        found_ = true;
        best_utility_ = utility;
        best_choice_ = chosen_;
      }
      return Status::OK();
    }
    // Optimistic utility bound.
    if (found_ &&
        utility + suffix_best_[static_cast<size_t>(user)] <=
            best_utility_ + 1e-12) {
      return Status::OK();
    }
    // Lower-bound reachability: every event must still be able to reach xi.
    for (int j = 0; j < m; ++j) {
      if (counts_[static_cast<size_t>(j)] + suffix_attendable_[Idx(user, j)] <
          instance_.event(j).lower_bound) {
        return Status::OK();
      }
    }

    const UserMenu& menu = menus_[static_cast<size_t>(user)];
    for (size_t s = 0; s < menu.subsets.size(); ++s) {
      const uint32_t mask = menu.subsets[s];
      bool over_capacity = false;
      for (int j = 0; j < m; ++j) {
        if (!(mask & (1u << j))) continue;
        if (counts_[static_cast<size_t>(j)] + 1 >
            instance_.event(j).upper_bound) {
          over_capacity = true;
          break;
        }
      }
      if (over_capacity) continue;
      for (int j = 0; j < m; ++j) {
        if (mask & (1u << j)) ++counts_[static_cast<size_t>(j)];
      }
      chosen_[static_cast<size_t>(user)] = mask;
      GEPC_RETURN_IF_ERROR(Recurse(user + 1, utility + menu.utilities[s]));
      for (int j = 0; j < m; ++j) {
        if (mask & (1u << j)) --counts_[static_cast<size_t>(j)];
      }
    }
    return Status::OK();
  }

  const Instance& instance_;
  const ExactOptions& options_;
  std::vector<UserMenu> menus_;
  std::vector<double> suffix_best_;
  std::vector<int> suffix_attendable_;
  std::vector<int> counts_;
  std::vector<uint32_t> chosen_;
  std::vector<uint32_t> best_choice_;
  bool found_ = false;
  double best_utility_ = 0.0;
  int64_t nodes_ = 0;
};

}  // namespace

Result<ExactResult> SolveGepcExact(const Instance& instance,
                                   const ExactOptions& options) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  if (instance.num_users() > options.max_users ||
      instance.num_events() > options.max_events ||
      instance.num_events() > 31) {
    return Status::InvalidArgument(
        "instance too large for the exact solver (raise ExactOptions limits)");
  }

  // Menus are built through the budget-reachability grid: seeding each
  // user's feasible singles costs O(cells touched) instead of O(m).
  const ReachabilityFilter filter(instance);
  std::vector<UserMenu> menus;
  menus.reserve(static_cast<size_t>(instance.num_users()));
  for (int i = 0; i < instance.num_users(); ++i) {
    GEPC_ASSIGN_OR_RETURN(
        UserMenu menu,
        BuildUserMenu(instance, i, /*sort_by_utility_desc=*/true, &filter));
    menus.push_back(std::move(menu));
  }

  Search search(instance, options, std::move(menus));
  GEPC_RETURN_IF_ERROR(search.Run());

  ExactResult result;
  result.explored_nodes = search.nodes();
  result.plan = Plan(instance.num_users(), instance.num_events());
  if (!search.found()) return result;
  result.feasible = true;
  result.total_utility = search.best_utility();
  for (int i = 0; i < instance.num_users(); ++i) {
    const uint32_t mask = search.best_choice()[static_cast<size_t>(i)];
    for (int j = 0; j < instance.num_events(); ++j) {
      if (mask & (1u << j)) result.plan.Add(i, j);
    }
  }
  return result;
}

}  // namespace gepc
