#ifndef GEPC_GEPC_GAP_BASED_H_
#define GEPC_GEPC_GAP_BASED_H_

#include "common/result.h"
#include "core/instance.h"
#include "gap/shmoys_tardos.h"
#include "gepc/conflict_adjust.h"
#include "gepc/event_copies.h"

namespace gepc {

/// Options for the GAP-based xi-GEPC algorithm (Sec. III-A).
struct GapBasedOptions {
  /// The eps of the reduction's budget relaxation T_i = (2 + eps) B_i.
  double epsilon = 0.1;
  /// Cap on utility normalization: GAP costs are c = 1 - mu / mu_max so
  /// they stay in [0, 1] as the analysis assumes; mu_max is computed from
  /// the instance unless overridden here (> 0).
  double utility_scale = 0.0;
  GapSolveOptions gap;
};

/// Result of one xi-GEPC solve (both algorithms produce this shape).
struct XiGepcResult {
  CopyPlan copy_plan;
  ConflictAdjustStats adjust_stats;  // zeros for the greedy algorithm
};

/// The GAP-based approximation of Sec. III-A:
///   1. copy each event xi_j times (CopyMap);
///   2. reduce to GAP with p = 2 d(u_i, e_j), T_i = (2+eps) B_i,
///      c = 1 - mu(u_i, e_j)/mu_max, ineligible when mu = 0;
///   3. solve the GAP LP relaxation and round with Shmoys-Tardos [5][6];
///   4. run Conflict Adjusting (Algorithm 1) to repair time conflicts and
///      budget overshoot.
/// Approximation ratio (paper): 1/(Uc_max - 1) - O(eps).
Result<XiGepcResult> SolveXiGepcGapBased(const Instance& instance,
                                         const CopyMap& copies,
                                         const GapBasedOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GEPC_GAP_BASED_H_
