#ifndef GEPC_GEPC_USER_MENUS_H_
#define GEPC_GEPC_USER_MENUS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "core/types.h"
#include "spatial/reachability.h"

namespace gepc {

/// Largest event count the subset bitmasks can represent. Menus are a
/// small-instance device shared by the exact branch-and-bound and the ILP
/// formulation; instances beyond this make BuildUserMenu fail loudly
/// (kInvalidArgument) instead of silently computing garbage masks.
inline constexpr int kMaxUserMenuEvents = 31;

/// One user's menu of individually feasible plans: every conflict-free,
/// within-budget subset of positive-utility events, as bitmasks over event
/// ids (bit j = event j; see kMaxUserMenuEvents).
struct UserMenu {
  std::vector<uint32_t> subsets;  ///< always contains the empty set
  std::vector<double> utilities;  ///< aligned with `subsets`
  double best_utility = 0.0;
  uint32_t attendable = 0;  ///< union of all subsets
};

/// Enumerates user i's feasible subsets by breadth-first extension (a
/// subset is feasible only if all its subsets are, because conflicts are
/// pairwise and tour costs are monotone under insertion). When
/// `sort_by_utility_desc` is set, subsets come highest-utility-first
/// (useful for branch-and-bound incumbents). A non-null `filter` (built
/// over the same instance) replaces the O(m) seed scan with a grid lookup
/// of the user's budget-reachable events; the result is identical either
/// way. Returns kInvalidArgument when the instance has more than
/// kMaxUserMenuEvents events.
Result<UserMenu> BuildUserMenu(const Instance& instance, UserId i,
                               bool sort_by_utility_desc,
                               const ReachabilityFilter* filter = nullptr);

}  // namespace gepc

#endif  // GEPC_GEPC_USER_MENUS_H_
