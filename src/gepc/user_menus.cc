#include "gepc/user_menus.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/feasibility.h"
#include "obs/metrics.h"

namespace gepc {

Result<UserMenu> BuildUserMenu(const Instance& instance, UserId i,
                               bool sort_by_utility_desc,
                               const ReachabilityFilter* filter) {
  static const auto menus_total = obs::Registry::Global().GetCounter(
      "gepc_menu_builds_total", "user menus enumerated");
  static const auto menu_ms = obs::Registry::Global().GetHistogram(
      "gepc_menu_build_ms", "per-user menu enumeration latency");
  menus_total->Increment();
  obs::ScopedTimerMs timer(menu_ms.get());
  const int m = instance.num_events();
  if (m > kMaxUserMenuEvents) {
    return Status::InvalidArgument(
        "user menus support at most " + std::to_string(kMaxUserMenuEvents) +
        " events (instance has " + std::to_string(m) +
        "); use the approximate solvers for large instances");
  }
  UserMenu menu;
  // Events the user could attend alone. The grid prefilter hands back the
  // budget-reachable candidates directly; the brute-force path checks the
  // same round-trip bound against every event.
  std::vector<EventId> singles;
  if (filter != nullptr) {
    for (EventId j : filter->AttendableEvents(i)) {
      if (instance.utility(i, j) > 0.0) singles.push_back(j);
    }
  } else {
    for (int j = 0; j < m; ++j) {
      if (instance.utility(i, j) <= 0.0) continue;
      if (2.0 * instance.UserEventDistance(i, j) + instance.event(j).fee >
          instance.user(i).budget + 1e-9) {
        continue;
      }
      singles.push_back(j);
    }
  }
  // Grow feasible subsets incrementally (every subset of a feasible set is
  // feasible for conflicts, and tours are monotone, so BFS over additions
  // visits everything feasible).
  menu.subsets.push_back(0);
  menu.utilities.push_back(0.0);
  std::vector<std::vector<EventId>> members = {{}};
  for (size_t head = 0; head < menu.subsets.size(); ++head) {
    const uint32_t mask = menu.subsets[head];
    const std::vector<EventId> base = members[head];
    for (EventId j : singles) {
      if (mask & (1u << j)) continue;
      if (!base.empty() && j < base.back()) continue;  // canonical order
      bool conflict = false;
      for (EventId held : base) {
        if (instance.EventsConflict(held, j)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      std::vector<EventId> grown = base;
      grown.push_back(j);
      if (TourCost(instance, i, grown) > instance.user(i).budget + 1e-9) {
        continue;
      }
      menu.subsets.push_back(mask | (1u << j));
      menu.utilities.push_back(menu.utilities[head] + instance.utility(i, j));
      members.push_back(std::move(grown));
    }
  }
  for (size_t s = 0; s < menu.subsets.size(); ++s) {
    menu.best_utility = std::max(menu.best_utility, menu.utilities[s]);
    menu.attendable |= menu.subsets[s];
  }
  if (!sort_by_utility_desc) return menu;
  // Visit high-utility subsets first so good incumbents appear early.
  std::vector<size_t> order(menu.subsets.size());
  for (size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return menu.utilities[a] > menu.utilities[b];
  });
  UserMenu sorted;
  sorted.best_utility = menu.best_utility;
  sorted.attendable = menu.attendable;
  for (size_t s : order) {
    sorted.subsets.push_back(menu.subsets[s]);
    sorted.utilities.push_back(menu.utilities[s]);
  }
  return sorted;
}

}  // namespace gepc
