#include "gepc/analysis.h"

#include <algorithm>

namespace gepc {

int UcOf(const Instance& instance, UserId user) {
  int count = 0;
  const double reach = instance.user(user).budget / 2.0;
  for (int j = 0; j < instance.num_events(); ++j) {
    // Fees consume budget exactly like travel, shrinking the radius.
    if (instance.UserEventDistance(user, j) + instance.event(j).fee / 2.0 <=
        reach + 1e-12) {
      ++count;
    }
  }
  return count;
}

int UcMax(const Instance& instance) {
  int uc_max = 0;
  for (int i = 0; i < instance.num_users(); ++i) {
    uc_max = std::max(uc_max, UcOf(instance, i));
  }
  return uc_max;
}

double GreedyRatioFloor(const Instance& instance) {
  const int uc_max = UcMax(instance);
  if (uc_max <= 0) return 0.0;
  return 1.0 / (2.0 * uc_max);
}

double GapRatioFloor(const Instance& instance, double eps) {
  const int uc_max = UcMax(instance);
  if (uc_max <= 1) return 0.0;
  return std::max(0.0, 1.0 / (uc_max - 1) - eps);
}

}  // namespace gepc
