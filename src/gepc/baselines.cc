#include "gepc/baselines.h"

#include <vector>

#include "common/rng.h"
#include "flow/min_cost_flow.h"
#include "core/feasibility.h"
#include "gepc/topup.h"
#include "spatial/reachability.h"

namespace gepc {

namespace {

void Finalize(const Instance& instance, BaselineResult* result) {
  result->total_utility = result->plan.TotalUtility(instance);
  result->events_below_lower_bound = 0;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (result->plan.attendance(j) < instance.event(j).lower_bound) {
      ++result->events_below_lower_bound;
    }
  }
  result->effective_utility = EffectiveUtility(instance, result->plan);
}

}  // namespace

Result<BaselineResult> SolveGepNoLowerBounds(const Instance& instance) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  BaselineResult result;
  result.plan = Plan(instance.num_users(), instance.num_events());
  // GEP == GEPC without constraint 4; the utility-ordered insertion pass
  // (our stand-in for the arrangement algorithms of [4]) IS the solver.
  // Candidates are enumerated through the budget-reachability grid.
  const ReachabilityFilter filter(instance);
  TopUpPlan(instance, &result.plan, &filter);
  Finalize(instance, &result);
  return result;
}

Result<BaselineResult> SolveRandomBaseline(const Instance& instance,
                                           uint64_t seed) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  BaselineResult result;
  result.plan = Plan(instance.num_users(), instance.num_events());

  Rng rng(seed);
  std::vector<UserId> users(static_cast<size_t>(instance.num_users()));
  for (int i = 0; i < instance.num_users(); ++i) {
    users[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(&users);
  std::vector<EventId> events(static_cast<size_t>(instance.num_events()));
  for (int j = 0; j < instance.num_events(); ++j) {
    events[static_cast<size_t>(j)] = j;
  }

  for (UserId i : users) {
    rng.Shuffle(&events);
    for (EventId j : events) {
      if (result.plan.attendance(j) >= instance.event(j).upper_bound) {
        continue;
      }
      if (CanAttend(instance, result.plan, i, j)) result.plan.Add(i, j);
    }
  }
  Finalize(instance, &result);
  return result;
}

Result<BaselineResult> SolveSingleAssignmentOptimal(const Instance& instance) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  const int n = instance.num_users();
  const int m = instance.num_events();

  // Nodes: 0 source | 1..n users | n+1..n+m events | n+m+1 sink.
  const int source = 0;
  const int sink = n + m + 1;
  MinCostFlow flow(sink + 1);
  for (int i = 0; i < n; ++i) {
    flow.AddEdge(source, 1 + i, 1, 0.0);
    // Bypass: a user may stay home at zero cost, so min-cost max-flow
    // maximizes total utility instead of forcing assignments.
    flow.AddEdge(1 + i, sink, 1, 0.0);
  }
  struct PairEdge {
    int edge_id;
    UserId user;
    EventId event;
  };
  // The grid prefilter hands each user exactly the events whose round trip
  // (plus fee) fits their budget — the same pairs the old O(n * m) scan
  // admitted, found in O(cells touched) per user.
  const ReachabilityFilter filter(instance);
  std::vector<PairEdge> pairs;
  for (int i = 0; i < n; ++i) {
    for (EventId j : filter.AttendableEvents(i)) {
      const double mu = instance.utility(i, j);
      if (mu <= 0.0) continue;
      pairs.push_back(
          PairEdge{flow.AddEdge(1 + i, 1 + n + j, 1, -mu), i, j});
    }
  }
  for (int j = 0; j < m; ++j) {
    flow.AddEdge(1 + n + j, sink, instance.event(j).upper_bound, 0.0);
  }
  GEPC_ASSIGN_OR_RETURN(MinCostFlow::FlowStats stats,
                        flow.Solve(source, sink));
  (void)stats;

  BaselineResult result;
  result.plan = Plan(n, m);
  for (const PairEdge& pair : pairs) {
    if (flow.FlowOn(pair.edge_id) > 0) {
      result.plan.Add(pair.user, pair.event);
    }
  }
  Finalize(instance, &result);
  return result;
}

double EffectiveUtility(const Instance& instance, const Plan& plan) {
  double total = 0.0;
  for (int j = 0; j < instance.num_events(); ++j) {
    if (plan.attendance(j) < instance.event(j).lower_bound) continue;
    for (UserId i : plan.attendees_of(j)) {
      total += instance.utility(i, j);
    }
  }
  return total;
}

}  // namespace gepc
