#include "gepc/regret_greedy.h"

#include <limits>
#include <vector>

namespace gepc {

namespace {

/// Feasibility/utility scan for one event's next copy.
struct EventChoice {
  int best_user = -1;
  double best_utility = 0.0;
  double second_utility = -1.0;  // -1: no second option

  double Regret() const {
    if (best_user < 0) return -1.0;
    if (second_utility < 0.0) {
      // Single feasible user: must-place-now priority.
      return std::numeric_limits<double>::infinity();
    }
    return best_utility - second_utility;
  }
};

}  // namespace

Result<XiGepcResult> SolveXiGepcRegret(const Instance& instance,
                                       const CopyMap& copies) {
  GEPC_RETURN_IF_ERROR(instance.Validate());

  const int n = instance.num_users();
  const int m = instance.num_events();
  XiGepcResult result{CopyPlan(n, copies.num_copies()), {}};
  if (copies.num_copies() == 0) return result;

  std::vector<int> remaining(static_cast<size_t>(m));
  int total_remaining = 0;
  for (int j = 0; j < m; ++j) {
    remaining[static_cast<size_t>(j)] =
        static_cast<int>(copies.copies_of(j).size());
    total_remaining += remaining[static_cast<size_t>(j)];
  }

  while (total_remaining > 0) {
    // Score every event that still has copies to hand out.
    EventChoice best_choice;
    int best_event = -1;
    double best_regret = -1.0;
    for (int j = 0; j < m; ++j) {
      if (remaining[static_cast<size_t>(j)] == 0) continue;
      const auto& copy_list = copies.copies_of(j);
      const int copy = copy_list[static_cast<size_t>(
          remaining[static_cast<size_t>(j)] - 1)];
      EventChoice choice;
      for (int i = 0; i < n; ++i) {
        if (!CanHoldCopy(instance, copies, result.copy_plan, i, copy)) {
          continue;
        }
        const double mu = instance.utility(i, j);
        if (choice.best_user < 0 || mu > choice.best_utility) {
          choice.second_utility =
              choice.best_user < 0 ? -1.0 : choice.best_utility;
          choice.best_utility = mu;
          choice.best_user = i;
        } else if (mu > choice.second_utility) {
          choice.second_utility = mu;
        }
      }
      const double regret = choice.Regret();
      if (regret > best_regret ||
          (regret == best_regret && best_event >= 0 &&
           choice.best_utility > best_choice.best_utility)) {
        best_regret = regret;
        best_event = j;
        best_choice = choice;
      }
    }

    if (best_event < 0 || best_choice.best_user < 0) {
      break;  // every surviving copy is unplaceable (reported as orphans)
    }
    const auto& copy_list = copies.copies_of(best_event);
    const int copy = copy_list[static_cast<size_t>(
        remaining[static_cast<size_t>(best_event)] - 1)];
    result.copy_plan.Assign(best_choice.best_user, copy);
    --remaining[static_cast<size_t>(best_event)];
    --total_remaining;
  }
  return result;
}

}  // namespace gepc
