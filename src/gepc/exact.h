#ifndef GEPC_GEPC_EXACT_H_
#define GEPC_GEPC_EXACT_H_

#include <cstdint>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"

namespace gepc {

/// Limits for the exact solver (GEPC is NP-hard — Theorem 1 — so this is
/// exponential and intended as a small-instance oracle for tests and for
/// measuring the approximation ratios empirically).
struct ExactOptions {
  /// Refuse instances larger than this (kInvalidArgument).
  int max_users = 12;
  int max_events = 14;
  /// Abort the search beyond this many explored nodes (kInternal).
  int64_t max_nodes = 50'000'000;
};

struct ExactResult {
  /// True iff some plan satisfies all four constraints; when false the
  /// instance has unsatisfiable lower bounds and `plan` is empty.
  bool feasible = false;
  Plan plan;
  double total_utility = 0.0;
  int64_t explored_nodes = 0;
};

/// Exhaustive branch-and-bound over per-user feasible event subsets:
/// enumerates each user's conflict-free within-budget subsets, branches
/// user by user, prunes on an optimistic utility bound and on lower-bound
/// reachability, and returns the utility-optimal feasible plan.
Result<ExactResult> SolveGepcExact(const Instance& instance,
                                   const ExactOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GEPC_EXACT_H_
