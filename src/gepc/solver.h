#ifndef GEPC_GEPC_SOLVER_H_
#define GEPC_GEPC_SOLVER_H_

#include <string>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"
#include "gepc/gap_based.h"
#include "gepc/greedy.h"
#include "gepc/local_search.h"
#include "gepc/topup.h"

namespace gepc {

/// Which xi-GEPC algorithm drives the two-step framework.
enum class GepcAlgorithm {
  kGapBased,  ///< Sec. III-A: GAP LP + Shmoys-Tardos + Conflict Adjusting
  kGreedy,    ///< Sec. III-B: random user order, per-user greedy
  kRegret,    ///< extension: deterministic regret insertion (order-free)
};

const char* GepcAlgorithmName(GepcAlgorithm algorithm);

/// End-to-end options for SolveGepc.
struct GepcOptions {
  GepcAlgorithm algorithm = GepcAlgorithm::kGreedy;
  GapBasedOptions gap_based;
  GreedyOptions greedy;
  /// Run the second framework step (fill capacities up to eta_j). Disabling
  /// yields the bare xi-GEPC plan (used by the ablation bench).
  bool run_topup = true;
  /// If the GAP LP reports infeasible (some event copy has no eligible
  /// user), fall back to the greedy algorithm instead of failing.
  bool fallback_to_greedy = true;
  /// Run the local-search refiner (ADD/REPLACE/TRANSFER hill climbing) on
  /// the final plan — an extension beyond the paper; never lowers utility
  /// or breaks feasibility.
  bool refine_with_local_search = false;
  LocalSearchOptions local_search;
};

/// Everything a GEPC solve reports.
struct GepcResult {
  Plan plan;
  double total_utility = 0.0;
  /// Affinity-aware score total_utility + lambda * affinity-pairs when
  /// options.local_search.affinity is armed; == total_utility otherwise.
  double affinity_utility = 0.0;
  /// Events whose final attendance is below xi_j (best-effort shortfall;
  /// 0 when the instance's lower bounds are satisfiable by the algorithm).
  int events_below_lower_bound = 0;
  /// Event copies the xi-GEPC step could not place on any user.
  int unplaced_copies = 0;
  ConflictAdjustStats adjust_stats;
  TopUpStats topup_stats;
  LocalSearchStats local_search_stats;  ///< zeros unless refinement was on
};

/// Solves the GEPC problem (Definition 1) with the paper's two-step
/// framework (Sec. III): first the xi-GEPC sub-problem (exactly xi_j users
/// per event) with the selected algorithm, then a utility-ordered top-up to
/// the upper bounds. The returned plan always satisfies constraints 1-3
/// (conflicts, budgets, upper bounds); lower bounds (constraint 4) are met
/// except for the reported shortfall, mirroring the paper's best-effort
/// approximation behaviour.
Result<GepcResult> SolveGepc(const Instance& instance,
                             const GepcOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GEPC_SOLVER_H_
