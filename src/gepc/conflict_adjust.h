#ifndef GEPC_GEPC_CONFLICT_ADJUST_H_
#define GEPC_GEPC_CONFLICT_ADJUST_H_

#include "core/instance.h"
#include "gepc/event_copies.h"

namespace gepc {

/// Statistics of one Conflict Adjusting run.
struct ConflictAdjustStats {
  int removed = 0;     ///< copies deleted from conflicted plans
  int reassigned = 0;  ///< deleted copies that found a new user
  int orphaned = 0;    ///< deleted copies no user could absorb
};

/// Algorithm 1 (Conflict Adjusting) of Sec. III-A. The GAP relaxation
/// ignores time conflicts, so its rounded assignment can hand one user two
/// overlapping copies. For each user, while their plan still conflicts, the
/// conflicting copy with the smallest utility is removed and offered to the
/// other users in decreasing order of their utility for it; the first user
/// who can take it conflict-free and within budget receives it. Copies no
/// one can absorb stay unassigned (counted as orphaned; the paper's
/// approximation analysis tolerates this).
///
/// Also removes over-budget copies the same way: the GAP reduction's load
/// bound T_i = (2+eps) B_i does not guarantee the real tour fits B_i, so
/// after de-conflicting we shed lowest-utility copies from over-budget
/// users, reusing the identical reassignment loop.
ConflictAdjustStats AdjustConflicts(const Instance& instance,
                                    const CopyMap& copies,
                                    CopyPlan* copy_plan);

}  // namespace gepc

#endif  // GEPC_GEPC_CONFLICT_ADJUST_H_
