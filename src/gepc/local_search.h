#ifndef GEPC_GEPC_LOCAL_SEARCH_H_
#define GEPC_GEPC_LOCAL_SEARCH_H_

#include <cstdint>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"
#include "gepc/affinity.h"

namespace gepc {

/// Options for the local-search refiner.
struct LocalSearchOptions {
  /// Stop after this many full passes without an improving move.
  int max_passes = 8;
  /// Hard cap on accepted moves (0 = unlimited).
  int64_t max_moves = 0;
  /// Minimum utility gain for a move to be accepted (guards float noise).
  double min_gain = 1e-9;
  /// Enable the three move families independently (for ablations).
  bool enable_add = true;
  bool enable_replace = true;
  bool enable_transfer = true;
  /// When armed, moves are scored by the affinity-aware utility
  /// mu'(u, e) = mu(u, e) + lambda * friends-attending (affinity.h), which
  /// makes gains assignment-dependent. Unarmed behaviour is byte-identical
  /// to the plain refiner. The graph must cover instance.num_users().
  AffinityParams affinity;
};

/// What one RefinePlan run did.
struct LocalSearchStats {
  int64_t add_moves = 0;       ///< event inserted into a user's plan
  int64_t replace_moves = 0;   ///< user swapped one event for a better one
  int64_t transfer_moves = 0;  ///< attendance moved to a higher-mu user
  int passes = 0;
  double utility_gain = 0.0;
};

/// Hill-climbs `plan`'s total utility with feasibility-preserving moves:
///
///  * ADD      — insert (u, e) with mu > 0 where capacity/conflicts/budget
///               allow (the top-up move, re-run to fixpoint);
///  * REPLACE  — within one user, drop event a for event b with
///               mu(u, b) > mu(u, a), if b fits after removing a and a's
///               event stays at/above its lower bound;
///  * TRANSFER — move an attendance of event e from user u to user v with
///               mu(v, e) > mu(u, e) (attendance count unchanged, so both
///               bounds stay satisfied).
///
/// Every accepted move strictly increases the (affinity-aware, if armed)
/// total utility, so the search terminates. The refined plan keeps
/// constraints 1-3 and never lowers any event below a lower bound it
/// already met. This is a post-processing step the paper does not have —
/// an extension evaluated by bench_ablation.
Result<LocalSearchStats> RefinePlan(const Instance& instance, Plan* plan,
                                    const LocalSearchOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GEPC_LOCAL_SEARCH_H_
