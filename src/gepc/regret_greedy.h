#ifndef GEPC_GEPC_REGRET_GREEDY_H_
#define GEPC_GEPC_REGRET_GREEDY_H_

#include "common/result.h"
#include "core/instance.h"
#include "gepc/event_copies.h"
#include "gepc/gap_based.h"

namespace gepc {

/// Regret-based xi-GEPC heuristic (extension; not in the paper).
///
/// Algorithm 2's outcome depends on the random user visiting order
/// (Sec. III-B, Example 5). This variant removes that dependence by
/// assigning event copies instead of users, hardest-to-place first: at
/// every step, for each unassigned copy compute the best and second-best
/// feasible (user, copy) utilities; commit the copy with the largest
/// regret = best - second_best (ties by best utility). Greedy regret
/// insertion is the classic remedy for order-sensitive assignment
/// heuristics; bench_ablation compares it against Algorithm 2.
///
/// Complexity O((m^+)^2 n) worst case (each commit rescans the surviving
/// copies); deterministic — no seed.
Result<XiGepcResult> SolveXiGepcRegret(const Instance& instance,
                                       const CopyMap& copies);

}  // namespace gepc

#endif  // GEPC_GEPC_REGRET_GREEDY_H_
