#include "gepc/gap_based.h"

#include <algorithm>

namespace gepc {

Result<XiGepcResult> SolveXiGepcGapBased(const Instance& instance,
                                         const CopyMap& copies,
                                         const GapBasedOptions& options) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }

  const int n = instance.num_users();
  const int num_copies = copies.num_copies();

  XiGepcResult result{CopyPlan(n, num_copies), {}};
  if (num_copies == 0) return result;  // no lower bounds to satisfy

  double mu_max = options.utility_scale;
  if (mu_max <= 0.0) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < instance.num_events(); ++j) {
        mu_max = std::max(mu_max, instance.utility(i, j));
      }
    }
    if (mu_max <= 0.0) mu_max = 1.0;
  }

  // GAP reduction of Sec. III-A: machines = users, jobs = event copies.
  GapInstance gap(n, num_copies);
  for (int i = 0; i < n; ++i) {
    gap.set_capacity(i, (2.0 + options.epsilon) * instance.user(i).budget);
  }
  for (int c = 0; c < num_copies; ++c) {
    const EventId j = copies.event_of(c);
    for (int i = 0; i < n; ++i) {
      const double mu = instance.utility(i, j);
      if (mu <= 0.0) continue;  // "will not or cannot attend"
      gap.SetPair(i, c,
                  2.0 * instance.UserEventDistance(i, j) + instance.event(j).fee,
                  1.0 - mu / mu_max);
    }
  }

  Result<GapAssignment> assignment = SolveGapShmoysTardos(gap, options.gap);
  if (!assignment.ok()) {
    if (assignment.status().code() == StatusCode::kInfeasible) {
      // Some copy has no eligible user at all, or the LP is over-tight;
      // surface the structured status so callers can fall back to greedy.
      return assignment.status();
    }
    return assignment.status();
  }

  for (int c = 0; c < num_copies; ++c) {
    const int user = assignment->machine_of_job[static_cast<size_t>(c)];
    if (user >= 0) result.copy_plan.Assign(user, c);
  }

  result.adjust_stats = AdjustConflicts(instance, copies, &result.copy_plan);
  return result;
}

}  // namespace gepc
