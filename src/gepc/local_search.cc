#include "gepc/local_search.h"

#include <algorithm>
#include <vector>

#include "core/feasibility.h"

namespace gepc {

namespace {

/// True iff user u can hold `candidate` after removing `without` (-1 keeps
/// everything): conflict-free and within budget.
bool FitsAfterSwap(const Instance& instance, const Plan& plan, UserId u,
                   EventId without, EventId candidate) {
  std::vector<EventId> events;
  for (EventId e : plan.events_of(u)) {
    if (e != without) events.push_back(e);
  }
  for (EventId e : events) {
    if (instance.EventsConflict(e, candidate)) return false;
  }
  events.push_back(candidate);
  return TourCost(instance, u, std::move(events)) <=
         instance.user(u).budget + 1e-9;
}

}  // namespace

Result<LocalSearchStats> RefinePlan(const Instance& instance, Plan* plan,
                                    const LocalSearchOptions& options) {
  if (plan == nullptr) {
    return Status::InvalidArgument("plan must not be null");
  }
  if (plan->num_users() != instance.num_users() ||
      plan->num_events() != instance.num_events()) {
    return Status::InvalidArgument("plan does not match the instance");
  }
  if (options.max_passes <= 0) {
    return Status::InvalidArgument("max_passes must be positive");
  }
  const AffinityParams& aff = options.affinity;
  const bool social = aff.Armed();
  if (social && aff.graph->num_users() != instance.num_users()) {
    return Status::InvalidArgument(
        "friendship graph does not cover the instance's users");
  }
  // 2*lambda per friend: the mover gains lambda per attending friend and
  // each of those friends gains lambda back. Unarmed, every score below
  // stays the bare mu, so behaviour is byte-identical to the plain refiner.
  auto friends_at = [&](UserId u, EventId j) {
    return FriendsAttending(*aff.graph, *plan, u, j);
  };

  LocalSearchStats stats;
  auto moves_left = [&] {
    return options.max_moves == 0 ||
           stats.add_moves + stats.replace_moves + stats.transfer_moves <
               options.max_moves;
  };

  const int n = instance.num_users();
  const int m = instance.num_events();
  bool improved = true;
  while (improved && stats.passes < options.max_passes && moves_left()) {
    improved = false;
    ++stats.passes;

    // ---- ADD: any feasible positive-utility insertion ------------------
    if (options.enable_add) {
      for (int i = 0; i < n && moves_left(); ++i) {
        for (int j = 0; j < m && moves_left(); ++j) {
          double gain = instance.utility(i, j);
          if (social) gain += 2.0 * aff.lambda * friends_at(i, j);
          if (gain <= options.min_gain) continue;
          if (plan->attendance(j) >= instance.event(j).upper_bound) continue;
          if (!CanAttend(instance, *plan, i, j)) continue;
          plan->Add(i, j);
          ++stats.add_moves;
          stats.utility_gain += gain;
          improved = true;
        }
      }
    }

    // ---- REPLACE: drop a for a strictly better b within one user -------
    if (options.enable_replace) {
      for (int i = 0; i < n && moves_left(); ++i) {
        bool user_changed = true;
        while (user_changed && moves_left()) {
          user_changed = false;
          const std::vector<EventId> held = plan->events_of(i);
          for (EventId a : held) {
            // Dropping a must not push its event below a met lower bound.
            if (plan->attendance(a) <= instance.event(a).lower_bound) {
              continue;
            }
            double score_a = instance.utility(i, a);
            if (social) score_a += 2.0 * aff.lambda * friends_at(i, a);
            EventId best_b = kInvalidEvent;
            double best_gain = options.min_gain;
            for (int b = 0; b < m; ++b) {
              if (plan->Contains(i, b)) continue;
              double score_b = instance.utility(i, b);
              if (social) score_b += 2.0 * aff.lambda * friends_at(i, b);
              const double gain = score_b - score_a;
              if (gain <= best_gain) continue;
              if (plan->attendance(b) >= instance.event(b).upper_bound) {
                continue;
              }
              if (instance.utility(i, b) <= 0.0) continue;
              if (!FitsAfterSwap(instance, *plan, i, a, b)) continue;
              best_b = b;
              best_gain = gain;
            }
            if (best_b != kInvalidEvent) {
              plan->Remove(i, a);
              plan->Add(i, best_b);
              ++stats.replace_moves;
              stats.utility_gain += best_gain;
              improved = true;
              user_changed = true;
              break;  // held is stale; rescan this user
            }
          }
        }
      }
    }

    // ---- TRANSFER: hand an attendance to a user who values it more -----
    if (options.enable_transfer) {
      for (int j = 0; j < m && moves_left(); ++j) {
        bool event_changed = true;
        while (event_changed && moves_left()) {
          event_changed = false;
          const std::vector<UserId> attendees = plan->attendees_of(j);
          for (UserId u : attendees) {
            double score_u = instance.utility(u, j);
            if (social) score_u += 2.0 * aff.lambda * friends_at(u, j);
            UserId best_v = kInvalidUser;
            double best_gain = options.min_gain;
            for (int v = 0; v < n; ++v) {
              if (plan->Contains(v, j)) continue;
              double score_v = instance.utility(v, j);
              if (social) {
                // u departs before v arrives: if they are friends, v does
                // not get credit for u's attendance.
                int fv = friends_at(v, j);
                if (aff.graph->AreFriends(u, v)) --fv;
                score_v += 2.0 * aff.lambda * fv;
              }
              const double gain = score_v - score_u;
              if (gain <= best_gain) continue;
              if (instance.utility(v, j) <= 0.0) continue;
              if (!FitsAfterSwap(instance, *plan, v, kInvalidEvent, j)) {
                continue;
              }
              best_v = v;
              best_gain = gain;
            }
            if (best_v != kInvalidUser) {
              plan->Remove(u, j);
              plan->Add(best_v, j);
              ++stats.transfer_moves;
              stats.utility_gain += best_gain;
              improved = true;
              event_changed = true;
              break;  // attendees is stale; rescan this event
            }
          }
        }
      }
    }
  }
  return stats;
}

}  // namespace gepc
