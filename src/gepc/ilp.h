#ifndef GEPC_GEPC_ILP_H_
#define GEPC_GEPC_ILP_H_

#include "common/result.h"
#include "core/instance.h"
#include "gepc/exact.h"
#include "lp/branch_and_bound.h"

namespace gepc {

/// Limits for the ILP formulation (exponential in events-per-user).
struct GepcIlpOptions {
  int max_users = 12;
  int max_events = 14;
  MipOptions mip;
};

/// Exact GEPC via a set-packing integer program over per-user feasible
/// subsets: one 0/1 variable z_{i,S} per user i and feasible subset S
/// (conflict-free, within budget — enumerated by BuildUserMenu, which also
/// linearizes the non-linear tour-cost constraint away), with
///
///   sum_S z_{i,S} = 1                      for every user,
///   xi_j <= sum_{(i,S): j in S} z_{i,S} <= eta_j   for every event,
///   maximize sum utility(S) z_{i,S},
///
/// solved by the generic 0/1 branch-and-bound MIP on top of the simplex.
/// An independent second exact method: tests cross-check it against the
/// combinatorial SolveGepcExact.
Result<ExactResult> SolveGepcIlp(const Instance& instance,
                                 const GepcIlpOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GEPC_ILP_H_
