#include "gepc/conflict_adjust.h"

#include <algorithm>
#include <vector>

namespace gepc {

namespace {

/// Copies in user i's plan that conflict with at least one other copy there.
std::vector<int> ConflictedCopies(const Instance& instance,
                                  const CopyMap& copies,
                                  const std::vector<int>& held) {
  std::vector<int> conflicted;
  for (size_t a = 0; a < held.size(); ++a) {
    for (size_t b = 0; b < held.size(); ++b) {
      if (a == b) continue;
      if (copies.CopiesConflict(instance, held[a], held[b])) {
        conflicted.push_back(held[a]);
        break;
      }
    }
  }
  return conflicted;
}

/// Offers `copy` to every user except `exclude` in decreasing order of
/// utility; assigns to the first that can hold it. Returns true on success.
bool Reassign(const Instance& instance, const CopyMap& copies,
              CopyPlan* copy_plan, int copy, UserId exclude) {
  const EventId event = copies.event_of(copy);
  std::vector<UserId> candidates;
  candidates.reserve(static_cast<size_t>(instance.num_users()));
  for (int i = 0; i < instance.num_users(); ++i) {
    if (i != exclude && instance.utility(i, event) > 0.0) {
      candidates.push_back(i);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](UserId a, UserId b) {
    const double ua = instance.utility(a, event);
    const double ub = instance.utility(b, event);
    if (ua != ub) return ua > ub;
    return a < b;
  });
  for (UserId candidate : candidates) {
    if (CanHoldCopy(instance, copies, *copy_plan, candidate, copy)) {
      copy_plan->Assign(candidate, copy);
      return true;
    }
  }
  return false;
}

}  // namespace

ConflictAdjustStats AdjustConflicts(const Instance& instance,
                                    const CopyMap& copies,
                                    CopyPlan* copy_plan) {
  ConflictAdjustStats stats;

  auto shed_copy = [&](UserId i, int copy) {
    copy_plan->Unassign(copy);
    ++stats.removed;
    if (Reassign(instance, copies, copy_plan, copy, i)) {
      ++stats.reassigned;
    } else {
      ++stats.orphaned;
    }
  };

  for (int i = 0; i < instance.num_users(); ++i) {
    // Phase 1 (Algorithm 1 proper): while P_i conflicts, drop the
    // lowest-utility conflicting copy and offer it around.
    while (true) {
      const auto& held = copy_plan->copies_of_user[static_cast<size_t>(i)];
      std::vector<int> conflicted = ConflictedCopies(instance, copies, held);
      if (conflicted.empty()) break;
      const int victim = *std::min_element(
          conflicted.begin(), conflicted.end(), [&](int a, int b) {
            const double ua = instance.utility(i, copies.event_of(a));
            const double ub = instance.utility(i, copies.event_of(b));
            if (ua != ub) return ua < ub;
            return a < b;
          });
      shed_copy(i, victim);
    }

    // Phase 2: shed lowest-utility copies until the tour fits the budget
    // (the GAP load bound is (2+eps)-relaxed, so overshoot is possible).
    while (true) {
      const auto& held = copy_plan->copies_of_user[static_cast<size_t>(i)];
      if (held.empty()) break;
      const double cost = CopyTourCost(instance, copies, i, held);
      if (cost <= instance.user(i).budget + 1e-9) break;
      const int victim =
          *std::min_element(held.begin(), held.end(), [&](int a, int b) {
            const double ua = instance.utility(i, copies.event_of(a));
            const double ub = instance.utility(i, copies.event_of(b));
            if (ua != ub) return ua < ub;
            return a < b;
          });
      shed_copy(i, victim);
    }
  }
  return stats;
}

}  // namespace gepc
