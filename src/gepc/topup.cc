#include "gepc/topup.h"

#include <algorithm>
#include <vector>

#include "core/feasibility.h"

namespace gepc {

namespace {

TopUpStats TopUpImpl(const Instance& instance,
                     const std::vector<UserId>& users, Plan* plan,
                     const ReachabilityFilter* filter) {
  struct Candidate {
    UserId user;
    EventId event;
    double utility;
  };
  std::vector<Candidate> candidates;
  const auto consider = [&](UserId i, EventId j) {
    const double mu = instance.utility(i, j);
    if (mu > 0.0 && !plan->Contains(i, j)) {
      candidates.push_back(Candidate{i, j, mu});
    }
  };
  for (UserId i : users) {
    if (filter != nullptr) {
      for (EventId j : filter->AttendableEvents(i)) consider(i, j);
    } else {
      for (int j = 0; j < instance.num_events(); ++j) consider(i, j);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.utility != b.utility) return a.utility > b.utility;
              if (a.user != b.user) return a.user < b.user;
              return a.event < b.event;
            });

  TopUpStats stats;
  for (const Candidate& c : candidates) {
    if (plan->attendance(c.event) >= instance.event(c.event).upper_bound) {
      continue;
    }
    if (!CanAttend(instance, *plan, c.user, c.event)) continue;
    plan->Add(c.user, c.event);
    ++stats.added;
  }
  return stats;
}

}  // namespace

TopUpStats TopUpPlan(const Instance& instance, Plan* plan,
                     const ReachabilityFilter* filter) {
  std::vector<UserId> users(static_cast<size_t>(instance.num_users()));
  for (int i = 0; i < instance.num_users(); ++i) {
    users[static_cast<size_t>(i)] = i;
  }
  return TopUpImpl(instance, users, plan, filter);
}

TopUpStats TopUpUsers(const Instance& instance,
                      const std::vector<UserId>& users, Plan* plan,
                      const ReachabilityFilter* filter) {
  return TopUpImpl(instance, users, plan, filter);
}

}  // namespace gepc
