#ifndef GEPC_GAP_EXACT_GAP_H_
#define GEPC_GAP_EXACT_GAP_H_

#include <cstdint>

#include "common/result.h"
#include "gap/gap_instance.h"

namespace gepc {

/// Limits for the exact GAP solver (GAP is NP-hard; this is a small-scale
/// oracle for measuring the Shmoys-Tardos pipeline's real quality gap and
/// for tests).
struct ExactGapOptions {
  int max_machines = 16;
  int max_jobs = 24;
  int64_t max_nodes = 50'000'000;
};

struct ExactGapResult {
  /// False iff no assignment fits every machine's capacity.
  bool feasible = false;
  GapAssignment assignment;
  double total_cost = 0.0;
  int64_t explored_nodes = 0;
};

/// Branch-and-bound over jobs (hardest-first ordering): each job tries its
/// eligible machines in cost order; pruning on the sum of per-job minimum
/// remaining costs. Returns the cost-optimal capacity-feasible assignment.
Result<ExactGapResult> SolveGapExact(const GapInstance& gap,
                                     const ExactGapOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GAP_EXACT_GAP_H_
