#include "gap/gap_instance.h"

#include <string>

namespace gepc {

Status GapInstance::Validate() const {
  if (num_machines_ <= 0 || num_jobs_ < 0) {
    return Status::InvalidArgument("GAP needs >= 1 machine and >= 0 jobs");
  }
  for (int i = 0; i < num_machines_; ++i) {
    if (capacity_[static_cast<size_t>(i)] < 0.0) {
      return Status::InvalidArgument("machine " + std::to_string(i) +
                                     " has negative capacity");
    }
  }
  for (int j = 0; j < num_jobs_; ++j) {
    bool any = false;
    for (int i = 0; i < num_machines_; ++i) {
      if (processing(i, j) < 0.0) {
        return Status::InvalidArgument("negative processing time at (" +
                                       std::to_string(i) + ", " +
                                       std::to_string(j) + ")");
      }
      if (Eligible(i, j)) any = true;
    }
    if (!any) {
      return Status::Infeasible("job " + std::to_string(j) +
                                " has no eligible machine");
    }
  }
  return Status::OK();
}

double FractionalAssignment::TotalCost(const GapInstance& gap) const {
  double total = 0.0;
  for (size_t j = 0; j < job_shares.size(); ++j) {
    for (const Share& s : job_shares[j]) {
      total += s.fraction * gap.cost(s.machine, static_cast<int>(j));
    }
  }
  return total;
}

std::vector<double> FractionalAssignment::Loads(const GapInstance& gap) const {
  std::vector<double> loads(static_cast<size_t>(gap.num_machines()), 0.0);
  for (size_t j = 0; j < job_shares.size(); ++j) {
    for (const Share& s : job_shares[j]) {
      loads[static_cast<size_t>(s.machine)] +=
          s.fraction * gap.processing(s.machine, static_cast<int>(j));
    }
  }
  return loads;
}

double GapAssignment::TotalCost(const GapInstance& gap) const {
  double total = 0.0;
  for (size_t j = 0; j < machine_of_job.size(); ++j) {
    if (machine_of_job[j] >= 0) {
      total += gap.cost(machine_of_job[j], static_cast<int>(j));
    }
  }
  return total;
}

std::vector<double> GapAssignment::Loads(const GapInstance& gap) const {
  std::vector<double> loads(static_cast<size_t>(gap.num_machines()), 0.0);
  for (size_t j = 0; j < machine_of_job.size(); ++j) {
    if (machine_of_job[j] >= 0) {
      loads[static_cast<size_t>(machine_of_job[j])] +=
          gap.processing(machine_of_job[j], static_cast<int>(j));
    }
  }
  return loads;
}

int GapAssignment::UnplacedJobs() const {
  int unplaced = 0;
  for (int machine : machine_of_job) {
    if (machine < 0) ++unplaced;
  }
  return unplaced;
}

}  // namespace gepc
