#ifndef GEPC_GAP_SHMOYS_TARDOS_H_
#define GEPC_GAP_SHMOYS_TARDOS_H_

#include "common/result.h"
#include "gap/gap_instance.h"
#include "gap/gap_lp.h"

namespace gepc {

/// Rounds a fractional GAP solution to an integral assignment with the
/// Shmoys-Tardos [6] scheme:
///  1. each machine's fractional jobs are sorted by processing time
///     (largest first) and packed into ceil(sum x_ij) unit "slots";
///  2. the induced job/slot bipartite fractional matching is integral, so a
///     single min-cost-flow run yields an integral matching whose cost is
///     at most the fractional cost and whose per-machine load is at most
///     T_i + max_j p_ij (the (1, 2)-guarantee the paper's analysis uses).
/// Jobs the flow cannot match (only on degenerate inputs) get machine -1.
Result<GapAssignment> RoundFractional(const GapInstance& gap,
                                      const FractionalAssignment& fractional);

/// Which LP engine SolveGapShmoysTardos uses for the relaxation.
enum class GapLpEngine {
  /// Exact simplex below `auto_simplex_limit` candidate pairs, MWU above.
  kAuto,
  kSimplex,
  kMwu,
};

struct GapSolveOptions {
  GapLpEngine engine = GapLpEngine::kAuto;
  /// kAuto switches to MWU when (#eligible pairs after candidate capping)
  /// exceeds this...
  int64_t auto_simplex_limit = 200'000;
  /// ...or when the estimated dense tableau (rows x columns, with one row
  /// per job and per touched machine) exceeds this many cells. Keeps the
  /// dense simplex off instances where a single pivot would already be
  /// prohibitive.
  int64_t auto_max_tableau_cells = 20'000'000;
  GapLpOptions lp;
  GapMwuOptions mwu;
};

/// End-to-end GAP approximation: LP relaxation + Shmoys-Tardos rounding.
Result<GapAssignment> SolveGapShmoysTardos(const GapInstance& gap,
                                           const GapSolveOptions& options = {});

/// Baseline used in tests: each job greedily takes the cheapest machine with
/// remaining capacity (no guarantee). Jobs that fit nowhere get -1.
GapAssignment SolveGapGreedy(const GapInstance& gap);

}  // namespace gepc

#endif  // GEPC_GAP_SHMOYS_TARDOS_H_
