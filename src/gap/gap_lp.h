#ifndef GEPC_GAP_GAP_LP_H_
#define GEPC_GAP_GAP_LP_H_

#include <cstdint>

#include "common/result.h"
#include "gap/gap_instance.h"
#include "lp/simplex.h"

namespace gepc {

/// Options for the exact LP-relaxation engine.
struct GapLpOptions {
  /// Keep only the `max_candidates_per_job` cheapest eligible machines per
  /// job before building the LP (0 = keep all). Restriction keeps the dense
  /// simplex tractable at bench scale; if the restricted LP is infeasible
  /// the solver automatically retries unrestricted.
  int max_candidates_per_job = 0;
  SimplexOptions simplex;
};

/// Solves the GAP LP relaxation
///   min sum c_ij x_ij
///   s.t. sum_i x_ij = 1 (each job assigned), sum_j p_ij x_ij <= T_i,
///        x >= 0 over eligible pairs
/// exactly with the two-phase simplex. Returns the fractional assignment or
/// kInfeasible.
Result<FractionalAssignment> SolveGapLpSimplex(const GapInstance& gap,
                                               const GapLpOptions& options = {});

/// Options for the approximate engine.
struct GapMwuOptions {
  /// Subgradient / multiplicative-weight iterations.
  int iterations = 300;
  /// Initial step size for the multiplier update.
  double step = 1.0;
  /// Fraction of the final iterations averaged into the output (Polyak-style
  /// tail averaging); in (0, 1].
  double tail_fraction = 0.5;
  /// Restrict each job's oracle to its `max_candidates_per_job` cheapest
  /// eligible machines (0 = all); the oracle cost drops from
  /// O(jobs * machines) to O(jobs * cap) per iteration.
  int max_candidates_per_job = 32;
};

/// Approximately solves the same relaxation with a Lagrangian subgradient /
/// multiplicative-weights scheme in the spirit of the fractional
/// packing-covering framework of Plotkin-Shmoys-Tardos [5] that the paper's
/// GAP step cites: machine-load multipliers are raised on overloaded
/// machines, each job independently picks its cheapest penalized machine,
/// and the tail of the iterate sequence is averaged into a fractional
/// solution. Runs in O(iterations * machines * jobs) with no LP tableau, so
/// it scales far beyond the simplex engine; loads may overshoot T_i by a
/// small factor that the Shmoys-Tardos rounding guarantee absorbs.
Result<FractionalAssignment> SolveGapLpMwu(const GapInstance& gap,
                                           const GapMwuOptions& options = {});

}  // namespace gepc

#endif  // GEPC_GAP_GAP_LP_H_
