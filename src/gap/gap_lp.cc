#include "gap/gap_lp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lp/linear_program.h"
#include "obs/metrics.h"

namespace gepc {

namespace {

/// One workspace per thread: consecutive GAP relaxations (and the retry
/// after a candidate-cap infeasibility) share a single tableau arena, so the
/// per-solve allocation count is O(1) once the arena has grown to the
/// instance family's working size.
LpWorkspace& ThreadWorkspace() {
  thread_local LpWorkspace workspace;
  return workspace;
}

/// Eligible (machine, job) pairs that survive the per-job candidate cap.
struct CandidateSet {
  // For each job, the candidate machines (cheapest-first when capped).
  std::vector<std::vector<int>> machines_of_job;
};

CandidateSet BuildCandidates(const GapInstance& gap, int max_per_job) {
  CandidateSet set;
  set.machines_of_job.resize(static_cast<size_t>(gap.num_jobs()));
  for (int j = 0; j < gap.num_jobs(); ++j) {
    auto& machines = set.machines_of_job[static_cast<size_t>(j)];
    for (int i = 0; i < gap.num_machines(); ++i) {
      if (gap.Eligible(i, j)) machines.push_back(i);
    }
    if (max_per_job > 0 &&
        static_cast<int>(machines.size()) > max_per_job) {
      std::partial_sort(machines.begin(), machines.begin() + max_per_job,
                        machines.end(), [&](int a, int b) {
                          return gap.cost(a, j) < gap.cost(b, j);
                        });
      machines.resize(static_cast<size_t>(max_per_job));
    }
  }
  return set;
}

Result<FractionalAssignment> SolveWithCandidates(const GapInstance& gap,
                                                 const CandidateSet& cands,
                                                 const SimplexOptions& simplex) {
  // Variable layout: one x_ij per candidate pair, in job-major order.
  struct Var {
    int machine;
    int job;
  };
  std::vector<Var> vars;
  std::vector<std::vector<int>> vars_of_machine(
      static_cast<size_t>(gap.num_machines()));
  std::vector<std::vector<int>> vars_of_job(
      static_cast<size_t>(gap.num_jobs()));
  for (int j = 0; j < gap.num_jobs(); ++j) {
    for (int i : cands.machines_of_job[static_cast<size_t>(j)]) {
      const int v = static_cast<int>(vars.size());
      vars.push_back(Var{i, j});
      vars_of_machine[static_cast<size_t>(i)].push_back(v);
      vars_of_job[static_cast<size_t>(j)].push_back(v);
    }
  }

  LinearProgram lp(LinearProgram::Sense::kMinimize,
                   static_cast<int>(vars.size()));
  for (size_t v = 0; v < vars.size(); ++v) {
    lp.set_objective(static_cast<int>(v),
                     gap.cost(vars[v].machine, vars[v].job));
  }
  for (int j = 0; j < gap.num_jobs(); ++j) {
    std::vector<std::pair<int, double>> terms;
    for (int v : vars_of_job[static_cast<size_t>(j)]) terms.emplace_back(v, 1.0);
    lp.AddConstraint(std::move(terms), Relation::kEqual, 1.0);
  }
  for (int i = 0; i < gap.num_machines(); ++i) {
    if (vars_of_machine[static_cast<size_t>(i)].empty()) continue;
    std::vector<std::pair<int, double>> terms;
    for (int v : vars_of_machine[static_cast<size_t>(i)]) {
      terms.emplace_back(v, gap.processing(vars[static_cast<size_t>(v)].machine,
                                           vars[static_cast<size_t>(v)].job));
    }
    lp.AddConstraint(std::move(terms), Relation::kLessEqual, gap.capacity(i));
  }

  static const auto solves = obs::Registry::Global().GetCounter(
      "gepc_gap_lp_solves_total", "GAP LP relaxations solved via simplex");
  static const auto arena_allocs = obs::Registry::Global().GetCounter(
      "gepc_gap_lp_arena_allocs_total",
      "Tableau arena (re)allocations across GAP LP solves; flat when the "
      "workspace reuse contract holds");

  LpWorkspace& workspace = ThreadWorkspace();
  const int64_t allocs_before = workspace.allocation_count();
  GEPC_ASSIGN_OR_RETURN(LpSolution solution, SolveLp(lp, simplex, &workspace));
  solves->Increment();
  arena_allocs->Increment(
      static_cast<uint64_t>(workspace.allocation_count() - allocs_before));

  FractionalAssignment frac;
  frac.job_shares.resize(static_cast<size_t>(gap.num_jobs()));
  for (size_t v = 0; v < vars.size(); ++v) {
    const double x = solution.x[v];
    if (x > 1e-9) {
      frac.job_shares[static_cast<size_t>(vars[v].job)].push_back(
          FractionalAssignment::Share{vars[v].machine, x});
    }
  }
  // Normalize each job's shares to sum exactly 1 (simplex rounding noise).
  for (auto& shares : frac.job_shares) {
    double total = 0.0;
    for (const auto& s : shares) total += s.fraction;
    if (total > 0.0) {
      for (auto& s : shares) s.fraction /= total;
    }
  }
  return frac;
}

}  // namespace

Result<FractionalAssignment> SolveGapLpSimplex(const GapInstance& gap,
                                               const GapLpOptions& options) {
  GEPC_RETURN_IF_ERROR(gap.Validate());
  CandidateSet cands = BuildCandidates(gap, options.max_candidates_per_job);
  Result<FractionalAssignment> result =
      SolveWithCandidates(gap, cands, options.simplex);
  if (!result.ok() && result.status().code() == StatusCode::kInfeasible &&
      options.max_candidates_per_job > 0) {
    // The candidate cap can cut off the only feasible machines; retry with
    // the full eligible set before reporting infeasible.
    CandidateSet full = BuildCandidates(gap, 0);
    return SolveWithCandidates(gap, full, options.simplex);
  }
  return result;
}

Result<FractionalAssignment> SolveGapLpMwu(const GapInstance& gap,
                                           const GapMwuOptions& options) {
  GEPC_RETURN_IF_ERROR(gap.Validate());
  if (options.iterations <= 0 || options.tail_fraction <= 0.0 ||
      options.tail_fraction > 1.0) {
    return Status::InvalidArgument("bad MWU options");
  }
  const int n = gap.num_machines();
  const int m = gap.num_jobs();

  const CandidateSet cands =
      BuildCandidates(gap, options.max_candidates_per_job);

  std::vector<double> multiplier(static_cast<size_t>(n), 0.0);
  std::vector<double> loads(static_cast<size_t>(n));
  // Accumulated tail-averaged fractional mass per (job, machine); sparse via
  // per-job map from machine to mass.
  std::vector<std::vector<FractionalAssignment::Share>> mass(
      static_cast<size_t>(m));
  const int tail_start = options.iterations -
                         static_cast<int>(options.iterations *
                                          options.tail_fraction);
  int averaged = 0;

  std::vector<int> choice(static_cast<size_t>(m), -1);
  for (int t = 0; t < options.iterations; ++t) {
    // Oracle: each job picks the machine with minimum penalized cost.
    std::fill(loads.begin(), loads.end(), 0.0);
    for (int j = 0; j < m; ++j) {
      double best = GapInstance::kIneligible;
      int best_machine = -1;
      for (int i : cands.machines_of_job[static_cast<size_t>(j)]) {
        const double penalized =
            gap.cost(i, j) +
            multiplier[static_cast<size_t>(i)] * gap.processing(i, j);
        if (penalized < best) {
          best = penalized;
          best_machine = i;
        }
      }
      choice[static_cast<size_t>(j)] = best_machine;
      if (best_machine >= 0) {
        loads[static_cast<size_t>(best_machine)] +=
            gap.processing(best_machine, j);
      }
    }

    // Subgradient step on the load multipliers (normalized by capacity so
    // the step size is scale-free); diminishing step ~ 1/sqrt(t).
    const double step = options.step / std::sqrt(static_cast<double>(t + 1));
    for (int i = 0; i < n; ++i) {
      const double cap = std::max(gap.capacity(i), 1e-12);
      const double violation = (loads[static_cast<size_t>(i)] - cap) / cap;
      multiplier[static_cast<size_t>(i)] =
          std::max(0.0, multiplier[static_cast<size_t>(i)] + step * violation);
    }

    if (t >= tail_start) {
      ++averaged;
      for (int j = 0; j < m; ++j) {
        const int i = choice[static_cast<size_t>(j)];
        if (i < 0) continue;
        auto& shares = mass[static_cast<size_t>(j)];
        auto it = std::find_if(shares.begin(), shares.end(),
                               [&](const auto& s) { return s.machine == i; });
        if (it == shares.end()) {
          shares.push_back(FractionalAssignment::Share{i, 1.0});
        } else {
          it->fraction += 1.0;
        }
      }
    }
  }

  FractionalAssignment frac;
  frac.job_shares.resize(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    auto& shares = mass[static_cast<size_t>(j)];
    for (auto& s : shares) s.fraction /= static_cast<double>(averaged);
    frac.job_shares[static_cast<size_t>(j)] = std::move(shares);
  }
  return frac;
}

}  // namespace gepc
