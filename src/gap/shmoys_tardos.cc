#include "gap/shmoys_tardos.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "flow/min_cost_flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gepc {

namespace {

constexpr double kFracEps = 1e-9;

}  // namespace

Result<GapAssignment> RoundFractional(const GapInstance& gap,
                                      const FractionalAssignment& fractional) {
  const int n = gap.num_machines();
  const int m = gap.num_jobs();
  if (static_cast<int>(fractional.job_shares.size()) != m) {
    return Status::InvalidArgument("fractional solution has wrong job count");
  }

  // Gather each machine's fractional jobs.
  struct JobShare {
    int job;
    double fraction;
  };
  std::vector<std::vector<JobShare>> machine_jobs(static_cast<size_t>(n));
  for (int j = 0; j < m; ++j) {
    for (const auto& share : fractional.job_shares[static_cast<size_t>(j)]) {
      if (share.fraction <= kFracEps) continue;
      if (share.machine < 0 || share.machine >= n) {
        return Status::InvalidArgument("fractional share names a bad machine");
      }
      machine_jobs[static_cast<size_t>(share.machine)].push_back(
          JobShare{j, share.fraction});
    }
  }

  // Slot construction: per machine, jobs sorted by processing time
  // descending are packed into unit-capacity slots. Because each slot k+1
  // only holds jobs no larger than everything in slot k, matching each slot
  // to at most one of its jobs keeps the load within T_i + max p_ij.
  struct SlotEdge {
    int job;
    int slot;  // global slot id
    double cost;
  };
  std::vector<SlotEdge> edges;
  std::vector<int> slot_machine;  // global slot id -> machine
  for (int i = 0; i < n; ++i) {
    auto& jobs = machine_jobs[static_cast<size_t>(i)];
    if (jobs.empty()) continue;
    std::sort(jobs.begin(), jobs.end(), [&](const JobShare& a,
                                            const JobShare& b) {
      const double pa = gap.processing(i, a.job);
      const double pb = gap.processing(i, b.job);
      if (pa != pb) return pa > pb;
      return a.job < b.job;
    });
    int current_slot = static_cast<int>(slot_machine.size());
    slot_machine.push_back(i);
    double fill = 0.0;
    for (const JobShare& js : jobs) {
      double remaining = js.fraction;
      while (remaining > kFracEps) {
        const double room = 1.0 - fill;
        const double used = std::min(room, remaining);
        if (used > kFracEps) {
          edges.push_back(SlotEdge{js.job, current_slot,
                                   gap.cost(i, js.job)});
        }
        fill += used;
        remaining -= used;
        if (fill >= 1.0 - kFracEps && remaining > kFracEps) {
          current_slot = static_cast<int>(slot_machine.size());
          slot_machine.push_back(i);
          fill = 0.0;
        }
      }
    }
  }

  // Min-cost flow: source -> job (1) -> slot (1) -> sink (1).
  const int num_slots = static_cast<int>(slot_machine.size());
  const int source = 0;
  const int job_base = 1;
  const int slot_base = job_base + m;
  const int sink = slot_base + num_slots;
  MinCostFlow flow(sink + 1);
  for (int j = 0; j < m; ++j) flow.AddEdge(source, job_base + j, 1, 0.0);
  std::vector<int> edge_ids;
  edge_ids.reserve(edges.size());
  for (const SlotEdge& e : edges) {
    edge_ids.push_back(
        flow.AddEdge(job_base + e.job, slot_base + e.slot, 1, e.cost));
  }
  for (int s = 0; s < num_slots; ++s) {
    flow.AddEdge(slot_base + s, sink, 1, 0.0);
  }
  GEPC_ASSIGN_OR_RETURN(MinCostFlow::FlowStats stats, flow.Solve(source, sink));
  (void)stats;

  GapAssignment assignment;
  assignment.machine_of_job.assign(static_cast<size_t>(m), -1);
  for (size_t k = 0; k < edges.size(); ++k) {
    if (flow.FlowOn(edge_ids[k]) > 0) {
      assignment.machine_of_job[static_cast<size_t>(edges[k].job)] =
          slot_machine[static_cast<size_t>(edges[k].slot)];
    }
  }
  return assignment;
}

Result<GapAssignment> SolveGapShmoysTardos(const GapInstance& gap,
                                           const GapSolveOptions& options) {
  GEPC_RETURN_IF_ERROR(gap.Validate());

  GapLpEngine engine = options.engine;
  if (engine == GapLpEngine::kAuto) {
    int64_t pairs = 0;
    for (int j = 0; j < gap.num_jobs(); ++j) {
      int eligible = 0;
      for (int i = 0; i < gap.num_machines(); ++i) {
        if (gap.Eligible(i, j)) ++eligible;
      }
      if (options.lp.max_candidates_per_job > 0) {
        eligible = std::min(eligible, options.lp.max_candidates_per_job);
      }
      pairs += eligible;
    }
    // Rows: one per job plus one per machine the candidates can touch;
    // columns: variables plus slacks/artificials (~ rows). A dense pivot
    // costs rows * cols, so cap the whole tableau.
    const int64_t rows =
        gap.num_jobs() +
        std::min(static_cast<int64_t>(gap.num_machines()), pairs);
    const int64_t cols = pairs + rows;
    const bool simplex_fits = pairs <= options.auto_simplex_limit &&
                              rows * cols <= options.auto_max_tableau_cells;
    engine = simplex_fits ? GapLpEngine::kSimplex : GapLpEngine::kMwu;
  }

  static const auto lp_ms = obs::Registry::Global().GetHistogram(
      "gepc_gap_lp_ms", "GAP LP relaxation latency (simplex or MWU)");
  static const auto round_ms = obs::Registry::Global().GetHistogram(
      "gepc_gap_round_ms", "Shmoys-Tardos rounding latency");

  FractionalAssignment fractional;
  {
    obs::ScopedTimerMs timer(lp_ms.get());
    GEPC_TRACE_SPAN("gap.lp");
    if (engine == GapLpEngine::kSimplex) {
      GEPC_ASSIGN_OR_RETURN(fractional, SolveGapLpSimplex(gap, options.lp));
    } else {
      GEPC_ASSIGN_OR_RETURN(fractional, SolveGapLpMwu(gap, options.mwu));
    }
  }
  obs::ScopedTimerMs timer(round_ms.get());
  GEPC_TRACE_SPAN("gap.round");
  return RoundFractional(gap, fractional);
}

GapAssignment SolveGapGreedy(const GapInstance& gap) {
  GapAssignment assignment;
  assignment.machine_of_job.assign(static_cast<size_t>(gap.num_jobs()), -1);
  std::vector<double> load(static_cast<size_t>(gap.num_machines()), 0.0);
  for (int j = 0; j < gap.num_jobs(); ++j) {
    int best = -1;
    double best_cost = GapInstance::kIneligible;
    for (int i = 0; i < gap.num_machines(); ++i) {
      if (!gap.Eligible(i, j)) continue;
      if (load[static_cast<size_t>(i)] + gap.processing(i, j) >
          gap.capacity(i)) {
        continue;
      }
      if (gap.cost(i, j) < best_cost) {
        best_cost = gap.cost(i, j);
        best = i;
      }
    }
    if (best >= 0) {
      assignment.machine_of_job[static_cast<size_t>(j)] = best;
      load[static_cast<size_t>(best)] += gap.processing(best, j);
    }
  }
  return assignment;
}

}  // namespace gepc
