#ifndef GEPC_GAP_GAP_INSTANCE_H_
#define GEPC_GAP_GAP_INSTANCE_H_

#include <limits>
#include <vector>

#include "common/status.h"

namespace gepc {

/// Generalized Assignment Problem: n machines, m jobs; assigning job j to
/// machine i takes processing time p(i,j) and costs c(i,j); machine i can
/// work at most T_i. Objective: assign every job to exactly one machine at
/// minimum total cost, respecting loads.
///
/// The paper reduces the xi-GEPC problem (with event copies) to GAP with
/// p = 2 d(u_i, e_j), T_i = (2 + eps) B_i, c = 1 - mu(u_i, e_j)
/// (Sec. III-A); this class is that reduction's target.
class GapInstance {
 public:
  /// Sentinel cost marking a (machine, job) pair as ineligible.
  static constexpr double kIneligible = std::numeric_limits<double>::infinity();

  GapInstance(int num_machines, int num_jobs)
      : num_machines_(num_machines),
        num_jobs_(num_jobs),
        processing_(static_cast<size_t>(num_machines) *
                        static_cast<size_t>(num_jobs),
                    0.0),
        cost_(static_cast<size_t>(num_machines) * static_cast<size_t>(num_jobs),
              kIneligible),
        capacity_(static_cast<size_t>(num_machines), 0.0) {}

  int num_machines() const { return num_machines_; }
  int num_jobs() const { return num_jobs_; }

  double processing(int machine, int job) const {
    return processing_[Index(machine, job)];
  }
  double cost(int machine, int job) const { return cost_[Index(machine, job)]; }
  double capacity(int machine) const {
    return capacity_[static_cast<size_t>(machine)];
  }

  /// Marks the pair eligible with the given time / cost.
  void SetPair(int machine, int job, double processing, double cost) {
    processing_[Index(machine, job)] = processing;
    cost_[Index(machine, job)] = cost;
  }
  void set_capacity(int machine, double capacity) {
    capacity_[static_cast<size_t>(machine)] = capacity;
  }

  /// Eligible means finite cost AND the job alone fits the machine.
  bool Eligible(int machine, int job) const {
    return cost_[Index(machine, job)] != kIneligible &&
           processing_[Index(machine, job)] <=
               capacity_[static_cast<size_t>(machine)];
  }

  /// Checks dimensions, non-negative processing times / capacities, and that
  /// every job has at least one eligible machine (otherwise trivially
  /// infeasible).
  Status Validate() const;

 private:
  size_t Index(int machine, int job) const {
    return static_cast<size_t>(machine) * static_cast<size_t>(num_jobs_) +
           static_cast<size_t>(job);
  }

  int num_machines_;
  int num_jobs_;
  std::vector<double> processing_;
  std::vector<double> cost_;
  std::vector<double> capacity_;
};

/// A fractional GAP solution: for each job, the machines carrying positive
/// fraction (fractions over a job sum to 1).
struct FractionalAssignment {
  struct Share {
    int machine;
    double fraction;
  };
  std::vector<std::vector<Share>> job_shares;

  /// Total fractional cost sum c(i,j) x_ij.
  double TotalCost(const GapInstance& gap) const;

  /// Fractional load of each machine.
  std::vector<double> Loads(const GapInstance& gap) const;
};

/// An integral GAP solution.
struct GapAssignment {
  /// machine_of_job[j] = machine of job j, or -1 if the job stayed unplaced
  /// (only possible for engines run on infeasible/over-tight instances).
  std::vector<int> machine_of_job;

  double TotalCost(const GapInstance& gap) const;
  std::vector<double> Loads(const GapInstance& gap) const;
  int UnplacedJobs() const;
};

}  // namespace gepc

#endif  // GEPC_GAP_GAP_INSTANCE_H_
