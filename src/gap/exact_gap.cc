#include "gap/exact_gap.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace gepc {

namespace {

class GapSearch {
 public:
  GapSearch(const GapInstance& gap, const ExactGapOptions& options)
      : gap_(gap), options_(options) {
    const int m = gap.num_jobs();
    // Candidate machines per job, cheapest first.
    candidates_.resize(static_cast<size_t>(m));
    min_cost_.assign(static_cast<size_t>(m), 0.0);
    for (int j = 0; j < m; ++j) {
      auto& machines = candidates_[static_cast<size_t>(j)];
      for (int i = 0; i < gap.num_machines(); ++i) {
        if (gap.Eligible(i, j)) machines.push_back(i);
      }
      std::sort(machines.begin(), machines.end(), [&](int a, int b) {
        return gap.cost(a, j) < gap.cost(b, j);
      });
      min_cost_[static_cast<size_t>(j)] =
          machines.empty() ? 0.0 : gap.cost(machines.front(), j);
    }
    // Branch hardest jobs (fewest options) first.
    order_.resize(static_cast<size_t>(m));
    for (int j = 0; j < m; ++j) order_[static_cast<size_t>(j)] = j;
    std::sort(order_.begin(), order_.end(), [&](int a, int b) {
      const size_t ca = candidates_[static_cast<size_t>(a)].size();
      const size_t cb = candidates_[static_cast<size_t>(b)].size();
      if (ca != cb) return ca < cb;
      return a < b;
    });
    // Suffix sums of minimum job costs for the lower bound.
    suffix_min_.assign(static_cast<size_t>(m) + 1, 0.0);
    for (int k = m - 1; k >= 0; --k) {
      suffix_min_[static_cast<size_t>(k)] =
          suffix_min_[static_cast<size_t>(k) + 1] +
          min_cost_[static_cast<size_t>(order_[static_cast<size_t>(k)])];
    }
    load_.assign(static_cast<size_t>(gap.num_machines()), 0.0);
    machine_of_job_.assign(static_cast<size_t>(m), -1);
  }

  Status Run() { return Recurse(0, 0.0); }

  bool found() const { return found_; }
  double best_cost() const { return best_cost_; }
  const std::vector<int>& best_assignment() const { return best_; }
  int64_t nodes() const { return nodes_; }

 private:
  Status Recurse(int depth, double cost) {
    if (++nodes_ > options_.max_nodes) {
      return Status::Internal("exact GAP solver exceeded its node budget");
    }
    if (depth == gap_.num_jobs()) {
      if (!found_ || cost < best_cost_) {
        found_ = true;
        best_cost_ = cost;
        best_ = machine_of_job_;
      }
      return Status::OK();
    }
    if (found_ &&
        cost + suffix_min_[static_cast<size_t>(depth)] >= best_cost_ - 1e-12) {
      return Status::OK();
    }
    const int job = order_[static_cast<size_t>(depth)];
    for (int machine : candidates_[static_cast<size_t>(job)]) {
      const double p = gap_.processing(machine, job);
      if (load_[static_cast<size_t>(machine)] + p >
          gap_.capacity(machine) + 1e-12) {
        continue;
      }
      load_[static_cast<size_t>(machine)] += p;
      machine_of_job_[static_cast<size_t>(job)] = machine;
      GEPC_RETURN_IF_ERROR(
          Recurse(depth + 1, cost + gap_.cost(machine, job)));
      load_[static_cast<size_t>(machine)] -= p;
      machine_of_job_[static_cast<size_t>(job)] = -1;
    }
    return Status::OK();
  }

  const GapInstance& gap_;
  const ExactGapOptions& options_;
  std::vector<std::vector<int>> candidates_;
  std::vector<double> min_cost_;
  std::vector<int> order_;
  std::vector<double> suffix_min_;
  std::vector<double> load_;
  std::vector<int> machine_of_job_;
  std::vector<int> best_;
  bool found_ = false;
  double best_cost_ = std::numeric_limits<double>::infinity();
  int64_t nodes_ = 0;
};

}  // namespace

Result<ExactGapResult> SolveGapExact(const GapInstance& gap,
                                     const ExactGapOptions& options) {
  if (gap.num_machines() > options.max_machines ||
      gap.num_jobs() > options.max_jobs) {
    return Status::InvalidArgument(
        "GAP instance too large for the exact solver (raise limits)");
  }
  GEPC_RETURN_IF_ERROR(gap.Validate());

  GapSearch search(gap, options);
  GEPC_RETURN_IF_ERROR(search.Run());

  ExactGapResult result;
  result.explored_nodes = search.nodes();
  result.assignment.machine_of_job.assign(
      static_cast<size_t>(gap.num_jobs()), -1);
  if (!search.found()) return result;
  result.feasible = true;
  result.total_cost = search.best_cost();
  result.assignment.machine_of_job = search.best_assignment();
  return result;
}

}  // namespace gepc
