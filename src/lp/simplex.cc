#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "lp/epsilon_policy.h"
#include "lp/flat_tableau.h"

namespace gepc {

EpsilonPolicy EpsilonPolicy::FromOptions(const SimplexOptions& options) {
  EpsilonPolicy policy;
  policy.reduced_cost = options.epsilon;
  policy.pivot = options.epsilon;
  policy.ratio_tie = options.epsilon;
  policy.degenerate_step = options.epsilon;
  return policy;
}

Status ValidateSimplexOptions(const SimplexOptions& options) {
  if (!(options.epsilon > 0.0) || options.epsilon > 1e-2) {
    return Status::InvalidArgument(
        "SimplexOptions.epsilon must be in (0, 1e-2], got " +
        std::to_string(options.epsilon));
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument(
        "SimplexOptions.max_iterations must be >= 0 (0 = default cap), got " +
        std::to_string(options.max_iterations));
  }
  if (options.degenerate_pivots_before_bland < 1) {
    return Status::InvalidArgument(
        "SimplexOptions.degenerate_pivots_before_bland must be >= 1, got " +
        std::to_string(options.degenerate_pivots_before_bland));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LpWorkspace
// ---------------------------------------------------------------------------

LpWorkspace::LpWorkspace() : tableau_(new lp_internal::FlatTableau()) {}
LpWorkspace::~LpWorkspace() = default;
LpWorkspace::LpWorkspace(LpWorkspace&&) noexcept = default;
LpWorkspace& LpWorkspace::operator=(LpWorkspace&&) noexcept = default;

int64_t LpWorkspace::allocation_count() const {
  return tableau_->allocation_count();
}
size_t LpWorkspace::arena_bytes() const { return tableau_->arena_bytes(); }

// ---------------------------------------------------------------------------
// Legacy engine: dense full-tableau primal simplex, one row-major matrix
// allocated per solve. Kept behind SimplexEngine::kLegacy for one release so
// lp_differential_test can compare it against the flat core directly.
// ---------------------------------------------------------------------------

namespace {

/// Layout:
///   columns [0, n)                    original variables
///   columns [n, n + s)                slack / surplus variables
///   columns [n + s, n + s + a)        artificial variables (phase 1 only)
/// rows    [0, m)                      constraints (B^{-1} A | B^{-1} b)
class LegacyTableau {
 public:
  LegacyTableau(const LinearProgram& lp, const SimplexOptions& options)
      : options_(options), policy_(EpsilonPolicy::FromOptions(options)) {
    n_ = lp.num_vars();
    m_ = lp.num_constraints();

    // Normalized rows: summed duplicate terms, rhs >= 0.
    struct Row {
      std::vector<double> coef;  // dense over original vars
      Relation relation;
      double rhs;
    };
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(m_));
    for (int r = 0; r < m_; ++r) {
      const auto& c = lp.constraint(r);
      Row row{std::vector<double>(static_cast<size_t>(n_), 0.0), c.relation,
              c.rhs};
      for (const auto& [var, coef] : c.terms) {
        row.coef[static_cast<size_t>(var)] += coef;
      }
      if (row.rhs < 0.0) {
        for (double& v : row.coef) v = -v;
        row.rhs = -row.rhs;
        if (row.relation == Relation::kLessEqual) {
          row.relation = Relation::kGreaterEqual;
        } else if (row.relation == Relation::kGreaterEqual) {
          row.relation = Relation::kLessEqual;
        }
      }
      rows.push_back(std::move(row));
    }

    int num_slack = 0;
    int num_artificial = 0;
    for (const Row& row : rows) {
      if (row.relation != Relation::kEqual) ++num_slack;
      if (row.relation != Relation::kLessEqual) ++num_artificial;
    }
    slack_begin_ = n_;
    artificial_begin_ = n_ + num_slack;
    cols_ = n_ + num_slack + num_artificial;

    a_.assign(static_cast<size_t>(m_) * static_cast<size_t>(cols_), 0.0);
    b_.assign(static_cast<size_t>(m_), 0.0);
    basis_.assign(static_cast<size_t>(m_), -1);
    row_active_.assign(static_cast<size_t>(m_), true);

    int next_slack = slack_begin_;
    int next_artificial = artificial_begin_;
    for (int r = 0; r < m_; ++r) {
      const Row& row = rows[static_cast<size_t>(r)];
      for (int v = 0; v < n_; ++v) At(r, v) = row.coef[static_cast<size_t>(v)];
      b_[static_cast<size_t>(r)] = row.rhs;
      switch (row.relation) {
        case Relation::kLessEqual:
          At(r, next_slack) = 1.0;
          basis_[static_cast<size_t>(r)] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          At(r, next_slack++) = -1.0;
          At(r, next_artificial) = 1.0;
          basis_[static_cast<size_t>(r)] = next_artificial++;
          break;
        case Relation::kEqual:
          At(r, next_artificial) = 1.0;
          basis_[static_cast<size_t>(r)] = next_artificial++;
          break;
      }
    }
  }

  /// Runs phase 1 (if artificials exist) and phase 2 with cost `cost`
  /// (minimization over all columns; zero-extended past its size).
  /// Returns OK / kInfeasible / kInternal.
  Status Optimize(const std::vector<double>& cost) {
    if (artificial_begin_ < cols_) {
      std::vector<double> phase1(static_cast<size_t>(cols_), 0.0);
      for (int c = artificial_begin_; c < cols_; ++c) {
        phase1[static_cast<size_t>(c)] = 1.0;
      }
      GEPC_RETURN_IF_ERROR(RunSimplex(phase1, /*forbid_artificials=*/false));
      if (PhaseObjective(phase1) > policy_.phase1_feasible) {
        return Status::Infeasible("phase-1 optimum is positive");
      }
      GEPC_RETURN_IF_ERROR(DriveOutArtificials());
    }
    std::vector<double> full_cost(static_cast<size_t>(cols_), 0.0);
    std::copy(cost.begin(), cost.end(), full_cost.begin());
    return RunSimplex(full_cost, /*forbid_artificials=*/true);
  }

  /// Value of original variable v in the current basic solution.
  double VariableValue(int v) const {
    for (int r = 0; r < m_; ++r) {
      if (row_active_[static_cast<size_t>(r)] &&
          basis_[static_cast<size_t>(r)] == v) {
        return b_[static_cast<size_t>(r)];
      }
    }
    return 0.0;
  }

  double value_clamp() const { return policy_.value_clamp; }

 private:
  double& At(int r, int c) {
    return a_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
              static_cast<size_t>(c)];
  }
  double At(int r, int c) const {
    return a_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
              static_cast<size_t>(c)];
  }

  double PhaseObjective(const std::vector<double>& cost) const {
    double value = 0.0;
    for (int r = 0; r < m_; ++r) {
      if (!row_active_[static_cast<size_t>(r)]) continue;
      value += cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])] *
               b_[static_cast<size_t>(r)];
    }
    return value;
  }

  /// Reduced costs r_j = c_j - c_B^T (B^{-1} A_j); tableau rows already hold
  /// B^{-1} A, so z_j is a plain dot product with the basic costs.
  void ComputeReducedCosts(const std::vector<double>& cost,
                           std::vector<double>* reduced) const {
    reduced->assign(static_cast<size_t>(cols_), 0.0);
    for (int c = 0; c < cols_; ++c) {
      double z = 0.0;
      for (int r = 0; r < m_; ++r) {
        if (!row_active_[static_cast<size_t>(r)]) continue;
        const double cb =
            cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
        if (cb != 0.0) z += cb * At(r, c);
      }
      (*reduced)[static_cast<size_t>(c)] = cost[static_cast<size_t>(c)] - z;
    }
  }

  void Pivot(int pivot_row, int pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    for (int c = 0; c < cols_; ++c) At(pivot_row, c) /= pivot;
    b_[static_cast<size_t>(pivot_row)] /= pivot;
    At(pivot_row, pivot_col) = 1.0;  // cancel rounding
    for (int r = 0; r < m_; ++r) {
      if (r == pivot_row || !row_active_[static_cast<size_t>(r)]) continue;
      const double factor = At(r, pivot_col);
      if (factor == 0.0) continue;
      for (int c = 0; c < cols_; ++c) At(r, c) -= factor * At(pivot_row, c);
      At(r, pivot_col) = 0.0;
      b_[static_cast<size_t>(r)] -= factor * b_[static_cast<size_t>(pivot_row)];
    }
    basis_[static_cast<size_t>(pivot_row)] = pivot_col;
  }

  Status RunSimplex(const std::vector<double>& cost, bool forbid_artificials) {
    const int64_t max_iter = options_.max_iterations > 0
                                 ? options_.max_iterations
                                 : 200LL * (m_ + cols_) + 10000;
    std::vector<double> reduced;
    int degenerate_streak = 0;
    bool use_bland = false;
    for (int64_t iter = 0; iter < max_iter; ++iter) {
      ComputeReducedCosts(cost, &reduced);
      const int col_limit = forbid_artificials ? artificial_begin_ : cols_;
      int entering = -1;
      if (use_bland) {
        for (int c = 0; c < col_limit; ++c) {
          if (reduced[static_cast<size_t>(c)] < -policy_.reduced_cost) {
            entering = c;
            break;
          }
        }
      } else {
        double best = -policy_.reduced_cost;
        for (int c = 0; c < col_limit; ++c) {
          if (reduced[static_cast<size_t>(c)] < best) {
            best = reduced[static_cast<size_t>(c)];
            entering = c;
          }
        }
      }
      if (entering < 0) return Status::OK();  // optimal

      // Ratio test; Bland tie-break on the smallest basis index.
      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < m_; ++r) {
        if (!row_active_[static_cast<size_t>(r)]) continue;
        const double a = At(r, entering);
        if (a <= policy_.pivot) continue;
        const double ratio = b_[static_cast<size_t>(r)] / a;
        if (ratio < best_ratio - policy_.ratio_tie ||
            (ratio < best_ratio + policy_.ratio_tie &&
             (leaving < 0 || basis_[static_cast<size_t>(r)] <
                                 basis_[static_cast<size_t>(leaving)]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving < 0) {
        return Status::Internal("LP is unbounded below");
      }
      if (best_ratio < policy_.degenerate_step) {
        if (++degenerate_streak >= options_.degenerate_pivots_before_bland) {
          use_bland = true;
        }
      } else {
        degenerate_streak = 0;
      }
      Pivot(leaving, entering);
    }
    return Status::Internal("simplex iteration limit reached");
  }

  /// After phase 1: pivot still-basic artificials out on any non-artificial
  /// column; rows that cannot pivot are redundant and get deactivated.
  Status DriveOutArtificials() {
    for (int r = 0; r < m_; ++r) {
      if (!row_active_[static_cast<size_t>(r)]) continue;
      if (basis_[static_cast<size_t>(r)] < artificial_begin_) continue;
      if (std::fabs(b_[static_cast<size_t>(r)]) > policy_.drive_out_rhs) {
        return Status::Internal("artificial variable basic at non-zero level");
      }
      int pivot_col = -1;
      for (int c = 0; c < artificial_begin_; ++c) {
        if (std::fabs(At(r, c)) > policy_.pivot) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col < 0) {
        row_active_[static_cast<size_t>(r)] = false;  // redundant constraint
      } else {
        Pivot(r, pivot_col);
      }
    }
    return Status::OK();
  }

  SimplexOptions options_;
  EpsilonPolicy policy_;
  int n_ = 0;     // original variables
  int m_ = 0;     // constraint rows
  int cols_ = 0;  // total columns incl. slack + artificial
  int slack_begin_ = 0;
  int artificial_begin_ = 0;
  std::vector<double> a_;  // m x cols, row-major
  std::vector<double> b_;  // rhs, length m
  std::vector<int> basis_;
  std::vector<bool> row_active_;
};

Result<LpSolution> SolveLpLegacy(const LinearProgram& lp,
                                 const SimplexOptions& options) {
  LegacyTableau tableau(lp, options);

  // Internally we always minimize; flip the sign for maximization.
  std::vector<double> cost(lp.objective());
  const bool maximize = lp.sense() == LinearProgram::Sense::kMaximize;
  if (maximize) {
    for (double& c : cost) c = -c;
  }
  GEPC_RETURN_IF_ERROR(tableau.Optimize(cost));

  LpSolution solution;
  solution.x.resize(static_cast<size_t>(lp.num_vars()));
  for (int v = 0; v < lp.num_vars(); ++v) {
    double value = tableau.VariableValue(v);
    if (std::fabs(value) < tableau.value_clamp()) value = 0.0;
    solution.x[static_cast<size_t>(v)] = value;
  }
  double objective = 0.0;
  for (int v = 0; v < lp.num_vars(); ++v) {
    objective += lp.objective(v) * solution.x[static_cast<size_t>(v)];
  }
  solution.objective_value = objective;
  return solution;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options) {
  return SolveLp(lp, options, nullptr);
}

Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options,
                           LpWorkspace* workspace) {
  GEPC_RETURN_IF_ERROR(lp.Validate());
  GEPC_RETURN_IF_ERROR(ValidateSimplexOptions(options));

  if (options.engine == SimplexEngine::kLegacy) {
    return SolveLpLegacy(lp, options);
  }

  GEPC_ASSIGN_OR_RETURN(
      CertifiedLpResult certified,
      lp_internal::SolveLpFlat(
          lp, options, workspace != nullptr ? workspace->tableau() : nullptr));
  switch (certified.outcome) {
    case LpOutcome::kInfeasible:
      // Same shape the legacy engine reports, so callers' fallback logic
      // (e.g. the GAP candidate-cap retry) is engine-agnostic.
      return Status::Infeasible("phase-1 optimum is positive");
    case LpOutcome::kUnbounded:
      return Status::Internal("LP is unbounded below");
    case LpOutcome::kOptimal:
      break;
  }
  return std::move(certified.solution);
}

Result<CertifiedLpResult> SolveLpCertified(const LinearProgram& lp,
                                           const SimplexOptions& options,
                                           LpWorkspace* workspace) {
  GEPC_RETURN_IF_ERROR(lp.Validate());
  GEPC_RETURN_IF_ERROR(ValidateSimplexOptions(options));
  return lp_internal::SolveLpFlat(
      lp, options, workspace != nullptr ? workspace->tableau() : nullptr);
}

}  // namespace gepc
