#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "lp/epsilon_policy.h"
#include "lp/flat_tableau.h"

namespace gepc {

EpsilonPolicy EpsilonPolicy::FromOptions(const SimplexOptions& options) {
  EpsilonPolicy policy;
  policy.reduced_cost = options.epsilon;
  policy.pivot = options.epsilon;
  policy.ratio_tie = options.epsilon;
  policy.degenerate_step = options.epsilon;
  return policy;
}

Status ValidateSimplexOptions(const SimplexOptions& options) {
  if (!(options.epsilon > 0.0) || options.epsilon > 1e-2) {
    return Status::InvalidArgument(
        "SimplexOptions.epsilon must be in (0, 1e-2], got " +
        std::to_string(options.epsilon));
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument(
        "SimplexOptions.max_iterations must be >= 0 (0 = default cap), got " +
        std::to_string(options.max_iterations));
  }
  if (options.degenerate_pivots_before_bland < 1) {
    return Status::InvalidArgument(
        "SimplexOptions.degenerate_pivots_before_bland must be >= 1, got " +
        std::to_string(options.degenerate_pivots_before_bland));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LpWorkspace
// ---------------------------------------------------------------------------

LpWorkspace::LpWorkspace() : tableau_(new lp_internal::FlatTableau()) {}
LpWorkspace::~LpWorkspace() = default;
LpWorkspace::LpWorkspace(LpWorkspace&&) noexcept = default;
LpWorkspace& LpWorkspace::operator=(LpWorkspace&&) noexcept = default;

int64_t LpWorkspace::allocation_count() const {
  return tableau_->allocation_count();
}
size_t LpWorkspace::arena_bytes() const { return tableau_->arena_bytes(); }

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options) {
  return SolveLp(lp, options, nullptr);
}

Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options,
                           LpWorkspace* workspace) {
  GEPC_RETURN_IF_ERROR(lp.Validate());
  GEPC_RETURN_IF_ERROR(ValidateSimplexOptions(options));

  GEPC_ASSIGN_OR_RETURN(
      CertifiedLpResult certified,
      lp_internal::SolveLpFlat(
          lp, options, workspace != nullptr ? workspace->tableau() : nullptr));
  switch (certified.outcome) {
    case LpOutcome::kInfeasible:
      // Status (not a zero solution), so callers' fallback logic (e.g. the
      // GAP candidate-cap retry) can branch on feasibility directly.
      return Status::Infeasible("phase-1 optimum is positive");
    case LpOutcome::kUnbounded:
      return Status::Internal("LP is unbounded below");
    case LpOutcome::kOptimal:
      break;
  }
  return std::move(certified.solution);
}

Result<CertifiedLpResult> SolveLpCertified(const LinearProgram& lp,
                                           const SimplexOptions& options,
                                           LpWorkspace* workspace) {
  GEPC_RETURN_IF_ERROR(lp.Validate());
  GEPC_RETURN_IF_ERROR(ValidateSimplexOptions(options));
  return lp_internal::SolveLpFlat(
      lp, options, workspace != nullptr ? workspace->tableau() : nullptr);
}

}  // namespace gepc
