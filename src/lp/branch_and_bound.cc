#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gepc {

namespace {

class MipSearch {
 public:
  MipSearch(const LinearProgram& lp, const MipOptions& options)
      : lp_(lp),
        options_(options),
        maximize_(lp.sense() == LinearProgram::Sense::kMaximize),
        fixed_(static_cast<size_t>(lp.num_vars()), -1) {}

  Status Run() { return Recurse(); }

  bool found() const { return found_; }
  const std::vector<double>& best_x() const { return best_x_; }
  double best_objective() const { return best_objective_; }
  int64_t nodes() const { return nodes_; }

 private:
  /// Relaxation with 0/1 box and current fixings as extra rows. Every node
  /// has the same tableau shape, so one workspace serves the whole search
  /// with O(1) allocations after the root solve.
  Result<LpSolution> SolveRelaxation() {
    LinearProgram node = lp_;
    for (int v = 0; v < lp_.num_vars(); ++v) {
      const int fix = fixed_[static_cast<size_t>(v)];
      if (fix < 0) {
        node.AddConstraint({{v, 1.0}}, Relation::kLessEqual, 1.0);
      } else {
        node.AddConstraint({{v, 1.0}}, Relation::kEqual,
                           static_cast<double>(fix));
      }
    }
    return SolveLp(node, options_.simplex, &workspace_);
  }

  /// True iff `candidate` cannot beat the incumbent.
  bool Bounded(double candidate) const {
    if (!found_) return false;
    return maximize_ ? candidate <= best_objective_ + 1e-12
                     : candidate >= best_objective_ - 1e-12;
  }

  Status Recurse() {
    if (++nodes_ > options_.max_nodes) {
      return Status::Internal("MIP node budget exceeded");
    }
    Result<LpSolution> relaxation = SolveRelaxation();
    if (!relaxation.ok()) {
      if (relaxation.status().code() == StatusCode::kInfeasible) {
        return Status::OK();  // dead branch
      }
      return relaxation.status();
    }
    if (Bounded(relaxation->objective_value)) return Status::OK();

    // Most fractional variable.
    int branch_var = -1;
    double worst_distance = options_.integrality_tolerance;
    for (int v = 0; v < lp_.num_vars(); ++v) {
      const double value = relaxation->x[static_cast<size_t>(v)];
      const double distance = std::fabs(value - std::round(value));
      if (distance > worst_distance) {
        worst_distance = distance;
        branch_var = v;
      }
    }
    if (branch_var < 0) {
      // Integral: candidate incumbent.
      if (!found_ || (maximize_
                          ? relaxation->objective_value > best_objective_
                          : relaxation->objective_value < best_objective_)) {
        found_ = true;
        best_objective_ = relaxation->objective_value;
        best_x_ = relaxation->x;
        for (double& value : best_x_) value = std::round(value);
      }
      return Status::OK();
    }

    // Try the rounded-near side first (better incumbents earlier).
    const double value = relaxation->x[static_cast<size_t>(branch_var)];
    const int first = value >= 0.5 ? 1 : 0;
    for (int side : {first, 1 - first}) {
      fixed_[static_cast<size_t>(branch_var)] = side;
      GEPC_RETURN_IF_ERROR(Recurse());
      fixed_[static_cast<size_t>(branch_var)] = -1;
    }
    return Status::OK();
  }

  const LinearProgram& lp_;
  const MipOptions& options_;
  const bool maximize_;
  LpWorkspace workspace_;
  std::vector<int> fixed_;  // -1 free, 0/1 fixed
  std::vector<double> best_x_;
  double best_objective_ = 0.0;
  bool found_ = false;
  int64_t nodes_ = 0;
};

}  // namespace

Result<MipSolution> SolveBinaryMip(const LinearProgram& lp,
                                   const MipOptions& options) {
  GEPC_RETURN_IF_ERROR(lp.Validate());
  MipSearch search(lp, options);
  GEPC_RETURN_IF_ERROR(search.Run());
  if (!search.found()) {
    return Status::Infeasible("no 0/1 assignment satisfies the constraints");
  }
  MipSolution solution;
  solution.objective_value = search.best_objective();
  solution.x = search.best_x();
  solution.explored_nodes = search.nodes();
  return solution;
}

}  // namespace gepc
