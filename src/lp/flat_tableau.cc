#include "lp/flat_tableau.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/epsilon_policy.h"

namespace gepc {
namespace lp_internal {

namespace {

/// Nearest power of two to v > 0 (ties in log space round up). Scaling by
/// exact powers of two never changes a mantissa, so equilibration alters
/// only the DECISIONS the pivot loops make against absolute tolerances,
/// never the arithmetic itself — and unscaling on extraction is exact.
double Pow2Near(double v) {
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [.5,1)
  return std::ldexp(1.0, frac >= 0.70710678118654752 ? exp : exp - 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// FlatTableau: arena management + tableau construction
// ---------------------------------------------------------------------------

void FlatTableau::Layout(int row_cap, int col_cap) {
  row_cap_ = row_cap;
  col_cap_ = col_cap;
  const size_t rc = static_cast<size_t>(row_cap);
  const size_t cc = static_cast<size_t>(col_cap);

  const size_t doubles_needed = rc * cc + rc + 4 * cc;
  const size_t ints_needed = 2 * rc + 2 * cc;
  const size_t flags_needed = 2 * rc;
  if (doubles_.size() < doubles_needed || ints_.size() < ints_needed ||
      flags_.size() < flags_needed) {
    doubles_.resize(doubles_needed);
    ints_.resize(ints_needed);
    flags_.resize(flags_needed);
    ++allocations_;
  }

  tab_ = doubles_.data();
  rhs_ = tab_ + rc * cc;
  cost_ = rhs_ + rc;
  reduced_ = cost_ + cc;
  pricing_ = reduced_ + cc;
  norms_ = pricing_ + cc;

  basis_ = ints_.data();
  identity_col_ = basis_ + rc;
  ext_to_store_ = identity_col_ + rc;
  store_to_ext_ = ext_to_store_ + cc;

  row_active_ = flags_.data();
  row_flipped_ = row_active_ + rc;
}

Status FlatTableau::Reset(const LinearProgram& lp) {
  const int n = lp.num_vars();
  const int m = lp.num_constraints();

  // Pass 1: count slack / artificial columns after rhs >= 0 normalization
  // (a flipped row also flips its relation, which can change both counts).
  int num_slack = 0;
  int num_artificial = 0;
  for (int r = 0; r < m; ++r) {
    const auto& c = lp.constraint(r);
    Relation rel = c.relation;
    if (c.rhs < 0.0) {
      if (rel == Relation::kLessEqual) {
        rel = Relation::kGreaterEqual;
      } else if (rel == Relation::kGreaterEqual) {
        rel = Relation::kLessEqual;
      }
    }
    if (rel != Relation::kEqual) ++num_slack;
    if (rel != Relation::kLessEqual) ++num_artificial;
  }

  structural_ = n;
  slack_ = num_slack;
  artificial_ = num_artificial;
  rows_ = m;
  cols_ = n + num_slack + num_artificial;

  // Reuse the arenas when everything fits; grow with 25% headroom (plus a
  // small constant so tiny programs still land a little slack) otherwise.
  if (rows_ > row_cap_ || cols_ > col_cap_) {
    const int row_cap = std::max(row_cap_, rows_ + rows_ / 4 + 4);
    const int col_cap = std::max(col_cap_, cols_ + cols_ / 4 + 8);
    Layout(row_cap, col_cap);
  }

  // Zero only the region this program uses; stale headroom is never read.
  for (int r = 0; r < rows_; ++r) {
    double* row = tab_ + static_cast<size_t>(r) * col_cap_;
    std::fill(row, row + cols_, 0.0);
  }
  std::fill(rhs_, rhs_ + rows_, 0.0);

  // Column permutation between slack-first storage order
  // [slacks | structural | artificial] and the external (legacy) order
  // [structural | slacks | artificial].
  for (int v = 0; v < n; ++v) ext_to_store_[v] = slack_ + v;
  for (int k = 0; k < slack_; ++k) ext_to_store_[n + k] = k;
  for (int k = 0; k < artificial_; ++k) {
    ext_to_store_[n + slack_ + k] = n + slack_ + k;
  }
  for (int ext = 0; ext < cols_; ++ext) store_to_ext_[ext_to_store_[ext]] = ext;

  // Equilibration pre-pass: one row sweep, then one column sweep, both
  // rounded to exact powers of two. Raw programs can span coefficients
  // from 1e-3 to 1e3, which makes the solver's absolute tolerances (pivot
  // admission, reduced-cost optimality) mean wildly different things row
  // to row; after this sweep every row and column has a max-magnitude
  // entry near 1. The scales are undone on extraction (exactly — they are
  // powers of two), so callers never see scaled values.
  row_scale_.assign(static_cast<size_t>(m), 1.0);
  col_scale_.assign(static_cast<size_t>(n), 1.0);
  dense_row_.assign(static_cast<size_t>(n), 0.0);
  {
    std::vector<double> col_max(static_cast<size_t>(n), 0.0);
    for (int r = 0; r < m; ++r) {
      const auto& c = lp.constraint(r);
      std::fill(dense_row_.begin(), dense_row_.end(), 0.0);
      for (const auto& [var, coef] : c.terms) {
        dense_row_[static_cast<size_t>(var)] += coef;
      }
      double row_max = 0.0;
      for (double v : dense_row_) row_max = std::max(row_max, std::fabs(v));
      if (row_max > 0.0) {
        row_scale_[static_cast<size_t>(r)] = Pow2Near(1.0 / row_max);
      }
      for (int v = 0; v < n; ++v) {
        col_max[static_cast<size_t>(v)] =
            std::max(col_max[static_cast<size_t>(v)],
                     std::fabs(dense_row_[static_cast<size_t>(v)]) *
                         row_scale_[static_cast<size_t>(r)]);
      }
    }
    for (int v = 0; v < n; ++v) {
      if (col_max[static_cast<size_t>(v)] > 0.0) {
        col_scale_[static_cast<size_t>(v)] =
            Pow2Near(1.0 / col_max[static_cast<size_t>(v)]);
      }
    }
  }

  // Pass 2: normalize each row (sum duplicate terms, rhs >= 0), scale and
  // place its coefficients, slack and artificial. Slack and artificial
  // columns are placed AFTER scaling with unit coefficients — they live in
  // row-scaled units, which is fine because they are never reported.
  int next_slack = 0;
  int next_artificial = slack_ + structural_;
  for (int r = 0; r < m; ++r) {
    const auto& c = lp.constraint(r);
    std::fill(dense_row_.begin(), dense_row_.end(), 0.0);
    for (const auto& [var, coef] : c.terms) {
      dense_row_[static_cast<size_t>(var)] += coef;
    }
    Relation rel = c.relation;
    double rhs = c.rhs;
    bool flipped = false;
    if (rhs < 0.0) {
      for (double& v : dense_row_) v = -v;
      rhs = -rhs;
      flipped = true;
      if (rel == Relation::kLessEqual) {
        rel = Relation::kGreaterEqual;
      } else if (rel == Relation::kGreaterEqual) {
        rel = Relation::kLessEqual;
      }
    }

    double* row = tab_ + static_cast<size_t>(r) * col_cap_;
    const double rscale = row_scale_[static_cast<size_t>(r)];
    for (int v = 0; v < n; ++v) {
      row[slack_ + v] = dense_row_[static_cast<size_t>(v)] * rscale *
                        col_scale_[static_cast<size_t>(v)];
    }
    rhs_[r] = rhs * rscale;
    row_active_[r] = 1;
    row_flipped_[r] = flipped ? 1 : 0;
    switch (rel) {
      case Relation::kLessEqual:
        row[next_slack] = 1.0;
        basis_[r] = next_slack;
        identity_col_[r] = next_slack;
        ++next_slack;
        break;
      case Relation::kGreaterEqual:
        row[next_slack] = -1.0;
        row[next_artificial] = 1.0;
        basis_[r] = next_artificial;
        identity_col_[r] = next_artificial;
        ++next_slack;
        ++next_artificial;
        break;
      case Relation::kEqual:
        row[next_artificial] = 1.0;
        basis_[r] = next_artificial;
        identity_col_[r] = next_artificial;
        ++next_artificial;
        break;
    }
  }
  return Status::OK();
}

TableauView FlatTableau::View() {
  TableauView view;
  view.tab = tab_;
  view.rhs = rhs_;
  view.basis = basis_;
  view.row_active = row_active_;
  view.rows = rows_;
  view.cols = cols_;
  view.stride = col_cap_;
  return view;
}

// ---------------------------------------------------------------------------
// FlatSimplex: the pivot kernel, operating on a TableauView
// ---------------------------------------------------------------------------

namespace {

enum class RunOutcome { kOptimal, kUnbounded, kIterationLimit };

class FlatSimplex {
 public:
  FlatSimplex(FlatTableau* tableau, const SimplexOptions& options)
      : t_(*tableau),
        view_(tableau->View()),
        options_(options),
        policy_(EpsilonPolicy::FromOptions(options)) {}

  /// Runs phase 1 + phase 2 for `lp` and fills `out` (outcome, solution and
  /// certificate). Non-OK only for internal failures (iteration cap,
  /// drive-out inconsistency).
  Status Optimize(const LinearProgram& lp, CertifiedLpResult* out) {
    const bool maximize = lp.sense() == LinearProgram::Sense::kMaximize;
    const int cols = view_.cols;
    double* cost = t_.cost();

    if (t_.num_artificial() > 0) {
      std::fill(cost, cost + cols, 0.0);
      for (int c = t_.artificial_store_begin(); c < cols; ++c) cost[c] = 1.0;
      const RunOutcome phase1 = RunSimplex(/*forbid_artificials=*/false);
      if (phase1 == RunOutcome::kIterationLimit) {
        return Status::Internal("simplex iteration limit reached");
      }
      if (phase1 == RunOutcome::kUnbounded) {
        // Phase-1 cost is bounded below by 0; reaching this means the
        // tableau lost coherence.
        return Status::Internal("phase-1 objective reported unbounded");
      }
      if (PhaseObjective() > policy_.phase1_feasible) {
        out->outcome = LpOutcome::kInfeasible;
        // The phase-1 duals y = c1_B B^{-1} are exactly a Farkas witness:
        // optimality gives y^T A_j <= c1_j = 0 for every non-artificial
        // column, and y^T b is the positive phase-1 optimum.
        ExtractRowMultipliers(/*negate=*/false, &out->farkas);
        return Status::OK();
      }
      GEPC_RETURN_IF_ERROR(DriveOutArtificials());
    }

    std::fill(cost, cost + cols, 0.0);
    for (int v = 0; v < t_.num_structural(); ++v) {
      // Column-scaled objective: the scaled program minimizes c'x' with
      // c'_v = c_v * C_v and x_v = C_v * x'_v, so objectives match.
      const double c = lp.objective(v) * t_.col_scale(v);
      cost[t_.structural_store(v)] = maximize ? -c : c;
    }
    const RunOutcome phase2 = RunSimplex(/*forbid_artificials=*/true);
    if (phase2 == RunOutcome::kIterationLimit) {
      return Status::Internal("simplex iteration limit reached");
    }
    if (phase2 == RunOutcome::kUnbounded) {
      out->outcome = LpOutcome::kUnbounded;
      ExtractRay(&out->ray);
      return Status::OK();
    }

    out->outcome = LpOutcome::kOptimal;
    ExtractSolution(lp, &out->solution);
    // For maximization the internal duals solve the negated minimization;
    // negating them restores the conventions documented on
    // CertifiedLpResult.
    ExtractRowMultipliers(/*negate=*/maximize, &out->dual);
    out->reduced_costs.resize(static_cast<size_t>(t_.num_structural()));
    for (int v = 0; v < t_.num_structural(); ++v) {
      // rc'_v = C_v * rc_v; dividing by the power-of-two scale is exact.
      out->reduced_costs[static_cast<size_t>(v)] =
          t_.reduced()[t_.structural_store(v)] / t_.col_scale(v);
    }
    return Status::OK();
  }

 private:
  bool structural_store_col(int c) const {
    return c >= t_.num_slack() && c < t_.num_slack() + t_.num_structural();
  }

  /// Reduced costs r = c - c_B^T (B^{-1} A) for every storage column.
  /// Accumulates z = c_B^T (B^{-1} A) row-by-row so the inner loop is a
  /// contiguous axpy over the flat buffer (the cache-friendly transpose of
  /// the legacy column-at-a-time loop; identical FP operation order per
  /// element, so the two engines agree bit-for-bit).
  void ComputeReducedCosts() {
    const int cols = view_.cols;
    const double* cost = t_.cost();
    double* z = t_.pricing();
    double* reduced = t_.reduced();
    std::fill(z, z + cols, 0.0);
    for (int r = 0; r < view_.rows; ++r) {
      if (!view_.row_active[r]) continue;
      const double cb = cost[view_.basis[r]];
      if (cb == 0.0) continue;
      const double* row = view_.row(r);
      for (int c = 0; c < cols; ++c) z[c] += cb * row[c];
    }
    for (int c = 0; c < cols; ++c) reduced[c] = cost[c] - z[c];
  }

  /// Squared column norms (plus 1 for the implicit objective-row entry)
  /// for steepest-edge pricing; recomputed per iteration.
  void ComputeColumnNorms() {
    const int cols = view_.cols;
    double* norms = t_.norms();
    std::fill(norms, norms + cols, 1.0);
    for (int r = 0; r < view_.rows; ++r) {
      if (!view_.row_active[r]) continue;
      const double* row = view_.row(r);
      for (int c = 0; c < cols; ++c) norms[c] += row[c] * row[c];
    }
  }

  double PhaseObjective() const {
    const double* cost = t_.cost();
    double value = 0.0;
    for (int r = 0; r < view_.rows; ++r) {
      if (!view_.row_active[r]) continue;
      value += cost[view_.basis[r]] * view_.rhs[r];
    }
    return value;
  }

  void Pivot(int pivot_row, int pivot_col) {
    const int cols = view_.cols;
    double* prow = view_.row(pivot_row);
    const double pivot = prow[pivot_col];
    for (int c = 0; c < cols; ++c) prow[c] /= pivot;
    view_.rhs[pivot_row] /= pivot;
    prow[pivot_col] = 1.0;  // cancel rounding
    const double pivot_rhs = view_.rhs[pivot_row];
    for (int r = 0; r < view_.rows; ++r) {
      if (r == pivot_row || !view_.row_active[r]) continue;
      double* row = view_.row(r);
      const double factor = row[pivot_col];
      if (factor == 0.0) continue;
      for (int c = 0; c < cols; ++c) row[c] -= factor * prow[c];
      row[pivot_col] = 0.0;
      view_.rhs[r] -= factor * pivot_rhs;
      // A basic rhs within update-noise of zero is zero. Without the snap,
      // a rounding- or ratio-tie-sized negative seeds catastrophic drift: a
      // later degenerate pivot on that row enters at rhs / a with a as
      // small as the pivot tolerance, amplifying the negativity by orders
      // of magnitude and silently losing primal feasibility.
      const double noise =
          policy_.ratio_tie * (1.0 + std::fabs(factor * pivot_rhs));
      if (view_.rhs[r] < 0.0 && view_.rhs[r] >= -noise) view_.rhs[r] = 0.0;
    }
    view_.basis[pivot_row] = pivot_col;
  }

  /// One simplex phase over the current cost row. Entering-column scans run
  /// in EXTERNAL column order (structural, slack, artificial — the legacy
  /// numbering) so Dantzig tie-breaks, Bland's rule and therefore the whole
  /// pivot sequence match the legacy engine exactly.
  RunOutcome RunSimplex(bool forbid_artificials) {
    const int cols = view_.cols;
    const int ext_limit =
        forbid_artificials ? t_.num_structural() + t_.num_slack() : cols;
    const int64_t max_iter =
        options_.max_iterations > 0
            ? options_.max_iterations
            : 200LL * (view_.rows + cols) + 10000;
    const double* reduced = t_.reduced();
    int degenerate_streak = 0;
    bool use_bland = options_.pivot_rule == SimplexPivotRule::kBland;
    const bool steepest =
        options_.pivot_rule == SimplexPivotRule::kSteepestEdge;

    for (int64_t iter = 0; iter < max_iter; ++iter) {
      ComputeReducedCosts();
      int entering = -1;  // storage column
      if (use_bland) {
        for (int ext = 0; ext < ext_limit; ++ext) {
          const int c = t_.ext_to_store(ext);
          if (reduced[c] < -policy_.reduced_cost) {
            entering = c;
            break;
          }
        }
      } else if (steepest) {
        ComputeColumnNorms();
        const double* norms = t_.norms();
        double best_score = 0.0;
        for (int ext = 0; ext < ext_limit; ++ext) {
          const int c = t_.ext_to_store(ext);
          const double rc = reduced[c];
          if (rc >= -policy_.reduced_cost) continue;
          const double score = rc * rc / norms[c];
          if (score > best_score) {
            best_score = score;
            entering = c;
          }
        }
      } else {
        double best = -policy_.reduced_cost;
        for (int ext = 0; ext < ext_limit; ++ext) {
          const int c = t_.ext_to_store(ext);
          if (reduced[c] < best) {
            best = reduced[c];
            entering = c;
          }
        }
      }
      if (entering < 0) return RunOutcome::kOptimal;

      // Two-pass Harris-style ratio test. Pass 1 finds the tightest ratio
      // (clamped at zero: rounding can leave a basic rhs a hair negative,
      // and a negative step would drive the entering variable — and the
      // returned x — negative while still reporting "optimal"). Pass 2
      // picks among the rows inside the tie window: the LARGEST pivot
      // element by default (dividing a row by a near-tolerance pivot
      // scales it by up to 1/epsilon and wrecks the dense tableau — this
      // preference is the main stability lever an unfactorized tableau
      // has), or the smallest external basis index under Bland's rule
      // (the termination guarantee needs index order, not stability).
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < view_.rows; ++r) {
        if (!view_.row_active[r]) continue;
        const double a = view_.at(r, entering);
        if (a <= policy_.pivot) continue;
        best_ratio = std::min(best_ratio, std::max(0.0, view_.rhs[r]) / a);
      }
      if (best_ratio == std::numeric_limits<double>::infinity()) {
        unbounded_entering_ = entering;
        return RunOutcome::kUnbounded;
      }
      int leaving = -1;
      double leaving_pivot = 0.0;
      for (int r = 0; r < view_.rows; ++r) {
        if (!view_.row_active[r]) continue;
        const double a = view_.at(r, entering);
        if (a <= policy_.pivot) continue;
        if (std::max(0.0, view_.rhs[r]) / a > best_ratio + policy_.ratio_tie) {
          continue;
        }
        const bool better =
            use_bland
                ? (leaving < 0 || t_.store_to_ext(view_.basis[r]) <
                                      t_.store_to_ext(view_.basis[leaving]))
                : a > leaving_pivot;
        if (better) {
          leaving = r;
          leaving_pivot = a;
        }
      }
      if (best_ratio < policy_.degenerate_step) {
        if (++degenerate_streak >= options_.degenerate_pivots_before_bland) {
          use_bland = true;
        }
      } else {
        degenerate_streak = 0;
      }
      Pivot(leaving, entering);
    }
    return RunOutcome::kIterationLimit;
  }

  /// After phase 1: pivot still-basic artificials out on any non-artificial
  /// column (scanned in external order); rows that cannot pivot are
  /// redundant and get deactivated.
  Status DriveOutArtificials() {
    const int art_begin = t_.artificial_store_begin();
    const int ext_nonartificial = t_.num_structural() + t_.num_slack();
    for (int r = 0; r < view_.rows; ++r) {
      if (!view_.row_active[r]) continue;
      if (view_.basis[r] < art_begin) continue;
      if (std::fabs(view_.rhs[r]) > policy_.drive_out_rhs) {
        return Status::Internal("artificial variable basic at non-zero level");
      }
      int pivot_col = -1;
      for (int ext = 0; ext < ext_nonartificial; ++ext) {
        const int c = t_.ext_to_store(ext);
        if (std::fabs(view_.at(r, c)) > policy_.pivot) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col < 0) {
        view_.row_active[r] = 0;  // redundant constraint
      } else {
        // The artificial is basic at (numerically) zero level — make that
        // exact before the exchange. Otherwise rhs / a enters the new
        // basic variable at up to drive_out_rhs / pivot-tolerance (and
        // with either sign, since the pivot element may be negative),
        // which silently destroys primal feasibility.
        view_.rhs[r] = 0.0;
        Pivot(r, pivot_col);
      }
    }
    return Status::OK();
  }

  void ExtractSolution(const LinearProgram& lp, LpSolution* solution) {
    const int n = t_.num_structural();
    solution->x.assign(static_cast<size_t>(n), 0.0);
    for (int r = 0; r < view_.rows; ++r) {
      if (!view_.row_active[r]) continue;
      const int c = view_.basis[r];
      if (structural_store_col(c)) {
        const int v = c - t_.num_slack();
        // x_v = C_v * x'_v (exact: C_v is a power of two). The ratio test
        // keeps basic values nonnegative up to rounding noise; clamp the
        // residual, because a large column scale would otherwise inflate
        // it into a visibly negative x_v.
        solution->x[static_cast<size_t>(v)] =
            std::max(0.0, view_.rhs[r]) * t_.col_scale(v);
      }
    }
    double objective = 0.0;
    for (int v = 0; v < n; ++v) {
      double& value = solution->x[static_cast<size_t>(v)];
      if (std::fabs(value) < policy_.value_clamp) value = 0.0;
      objective += lp.objective(v) * value;
    }
    solution->objective_value = objective;
  }

  /// Row multipliers y = cost_B^T B^{-1}, read off the final reduced costs
  /// of each row's initial-identity column (y_r = c_id - reduced_id), then
  /// mapped back to the caller's row orientation (sign flip for rows that
  /// were rhs-normalized; global negation for maximization duals).
  void ExtractRowMultipliers(bool negate, std::vector<double>* y) {
    y->assign(static_cast<size_t>(view_.rows), 0.0);
    const double* cost = t_.cost();
    const double* reduced = t_.reduced();
    for (int r = 0; r < view_.rows; ++r) {
      if (!view_.row_active[r]) continue;  // redundant rows keep y_r = 0
      const int id = t_.identity_col(r);
      // y_r = R_r * y'_r: the identity column is unscaled, so its reduced
      // cost prices the ROW-SCALED constraint.
      double value = (cost[id] - reduced[id]) * t_.row_scale(r);
      if (t_.row_flipped(r)) value = -value;
      if (negate) value = -value;
      (*y)[static_cast<size_t>(r)] = value;
    }
  }

  /// Recession direction from the failed ratio test: the entering column
  /// rises with every basic variable moving at -tableau[r][entering]. Only
  /// structural components are reported (slack motion is implied by the
  /// row relations); ratio-test noise below the pivot tolerance clamps
  /// to 0.
  void ExtractRay(std::vector<double>* ray) {
    const int n = t_.num_structural();
    ray->assign(static_cast<size_t>(n), 0.0);
    // Components unscale as d_v = C_v * d'_v; the verifier normalizes the
    // overall magnitude away but the RELATIVE scales must be right.
    if (structural_store_col(unbounded_entering_)) {
      const int v = unbounded_entering_ - t_.num_slack();
      (*ray)[static_cast<size_t>(v)] = t_.col_scale(v);
    }
    for (int r = 0; r < view_.rows; ++r) {
      if (!view_.row_active[r]) continue;
      const int c = view_.basis[r];
      if (!structural_store_col(c)) continue;
      const int v = c - t_.num_slack();
      const double direction = -view_.at(r, unbounded_entering_);
      (*ray)[static_cast<size_t>(v)] =
          direction < 0.0 ? 0.0 : direction * t_.col_scale(v);
    }
  }

  FlatTableau& t_;
  TableauView view_;
  SimplexOptions options_;
  EpsilonPolicy policy_;
  int unbounded_entering_ = -1;
};

}  // namespace

Result<CertifiedLpResult> SolveLpFlat(const LinearProgram& lp,
                                      const SimplexOptions& options,
                                      FlatTableau* tableau) {
  FlatTableau local;
  FlatTableau* t = tableau != nullptr ? tableau : &local;
  GEPC_RETURN_IF_ERROR(t->Reset(lp));
  FlatSimplex simplex(t, options);
  CertifiedLpResult out;
  GEPC_RETURN_IF_ERROR(simplex.Optimize(lp, &out));
  return out;
}

}  // namespace lp_internal
}  // namespace gepc
