#ifndef GEPC_LP_LINEAR_PROGRAM_H_
#define GEPC_LP_LINEAR_PROGRAM_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gepc {

/// Relation of a linear constraint row to its right-hand side.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// A linear program over variables x_0..x_{num_vars-1}, each implicitly
/// bounded x_k >= 0 (sufficient for the GAP relaxation of Sec. III-A, where
/// x_ij <= 1 is implied by the assignment equalities). Rows are stored
/// sparsely; the GAP LP has only 2 non-zeros per column.
class LinearProgram {
 public:
  enum class Sense { kMinimize, kMaximize };

  /// One sparse constraint row: sum_k coef_k * x_{var_k}  (rel)  rhs.
  struct Constraint {
    std::vector<std::pair<int, double>> terms;
    Relation relation = Relation::kLessEqual;
    double rhs = 0.0;
  };

  LinearProgram(Sense sense, int num_vars)
      : sense_(sense), objective_(static_cast<size_t>(num_vars), 0.0) {}

  Sense sense() const { return sense_; }
  int num_vars() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  /// Sets the objective coefficient of variable `var`.
  void set_objective(int var, double coefficient) {
    objective_[static_cast<size_t>(var)] = coefficient;
  }
  double objective(int var) const {
    return objective_[static_cast<size_t>(var)];
  }
  const std::vector<double>& objective() const { return objective_; }

  /// Appends a constraint row; returns its index. Terms with duplicate
  /// variable indices are summed by the solver.
  int AddConstraint(std::vector<std::pair<int, double>> terms,
                    Relation relation, double rhs) {
    constraints_.push_back(Constraint{std::move(terms), relation, rhs});
    return num_constraints() - 1;
  }

  const Constraint& constraint(int row) const {
    return constraints_[static_cast<size_t>(row)];
  }

  /// Checks all variable indices are in range.
  Status Validate() const;

 private:
  Sense sense_;
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

/// An optimal solution returned by SolveLp.
struct LpSolution {
  double objective_value = 0.0;
  std::vector<double> x;
};

}  // namespace gepc

#endif  // GEPC_LP_LINEAR_PROGRAM_H_
