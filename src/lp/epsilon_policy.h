#ifndef GEPC_LP_EPSILON_POLICY_H_
#define GEPC_LP_EPSILON_POLICY_H_

namespace gepc {

struct SimplexOptions;

/// Every floating-point tolerance the simplex cores use, in one place.
///
/// Both LP engines (the legacy row-per-vector tableau and the flat
/// arena-backed tableau) derive their comparisons from the same policy so
/// the differential suite can compare them pivot-for-pivot. Historically
/// these thresholds were scattered literals inside simplex.cc; the values
/// below are those literals, now named and shared.
struct EpsilonPolicy {
  /// A column enters only if its reduced cost is below -reduced_cost.
  double reduced_cost = 1e-9;
  /// Ratio-test rows with pivot element <= pivot are skipped (too unstable
  /// to divide by); also the drive-out scan's "non-zero entry" threshold.
  double pivot = 1e-9;
  /// Two ratios within ratio_tie of each other count as tied; ties break
  /// on the smallest basis index (Bland) to resist cycling.
  double ratio_tie = 1e-9;
  /// A pivot step shorter than degenerate_step counts as degenerate and
  /// advances the streak that eventually forces Bland's rule.
  double degenerate_step = 1e-9;
  /// Phase-1 optimum above this value proves the program infeasible.
  double phase1_feasible = 1e-7;
  /// An artificial variable basic above this level after phase 1 is an
  /// internal error (phase 1 claimed feasibility it cannot back up).
  double drive_out_rhs = 1e-7;
  /// Solution values with magnitude below value_clamp are snapped to 0
  /// before the objective is recomputed.
  double value_clamp = 1e-11;

  /// Policy derived from user options: the four pivot-loop tolerances track
  /// options.epsilon (the documented "reduced-cost / pivot tolerance"), the
  /// feasibility and clamping constants stay fixed.
  static EpsilonPolicy FromOptions(const SimplexOptions& options);
};

}  // namespace gepc

#endif  // GEPC_LP_EPSILON_POLICY_H_
