#include "lp/certificates.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace gepc {
namespace {

/// Dense rows rebuilt straight from the program (duplicate terms summed),
/// with the caller's original relations and rhs — no solver normalization,
/// so the checks below cannot inherit a solver-side sign mistake.
struct DenseRows {
  std::vector<std::vector<double>> coef;
  std::vector<Relation> relation;
  std::vector<double> rhs;
};

DenseRows BuildDenseRows(const LinearProgram& lp) {
  DenseRows rows;
  const int m = lp.num_constraints();
  const int n = lp.num_vars();
  rows.coef.assign(static_cast<size_t>(m),
                   std::vector<double>(static_cast<size_t>(n), 0.0));
  rows.relation.resize(static_cast<size_t>(m));
  rows.rhs.resize(static_cast<size_t>(m));
  for (int r = 0; r < m; ++r) {
    const auto& c = lp.constraint(r);
    rows.relation[static_cast<size_t>(r)] = c.relation;
    rows.rhs[static_cast<size_t>(r)] = c.rhs;
    for (const auto& [var, coef] : c.terms) {
      rows.coef[static_cast<size_t>(r)][static_cast<size_t>(var)] += coef;
    }
  }
  return rows;
}

double MaxAbs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

Status Violated(const std::string& what, int index, double value) {
  return Status::Internal("certificate check failed: " + what + " (index " +
                          std::to_string(index) + ", value " +
                          std::to_string(value) + ")");
}

/// Sign of the row multiplier required by the dual / Farkas conventions:
/// +1 means y_r >= 0, -1 means y_r <= 0, 0 means free. `flip` selects the
/// maximization column of the convention table.
int RequiredMultiplierSign(Relation rel, bool flip) {
  int sign = 0;
  switch (rel) {
    case Relation::kLessEqual:
      sign = -1;
      break;
    case Relation::kGreaterEqual:
      sign = +1;
      break;
    case Relation::kEqual:
      return 0;
  }
  return flip ? -sign : sign;
}

Status CheckMultiplierSigns(const DenseRows& rows, const std::vector<double>& y,
                            bool flip, double tol, const char* what) {
  for (size_t r = 0; r < y.size(); ++r) {
    const int sign = RequiredMultiplierSign(rows.relation[r], flip);
    if (sign > 0 && y[r] < -tol) {
      return Violated(std::string(what) + " multiplier must be >= 0",
                      static_cast<int>(r), y[r]);
    }
    if (sign < 0 && y[r] > tol) {
      return Violated(std::string(what) + " multiplier must be <= 0",
                      static_cast<int>(r), y[r]);
    }
  }
  return Status::OK();
}

Status VerifyOptimal(const LinearProgram& lp, const DenseRows& rows,
                     const CertifiedLpResult& certified, double tol) {
  const int m = lp.num_constraints();
  const int n = lp.num_vars();
  const bool maximize = lp.sense() == LinearProgram::Sense::kMaximize;
  const std::vector<double>& x = certified.solution.x;
  const std::vector<double>& y = certified.dual;
  if (static_cast<int>(x.size()) != n) {
    return Status::Internal("certificate check failed: solution size " +
                            std::to_string(x.size()) + " != num_vars " +
                            std::to_string(n));
  }
  if (static_cast<int>(y.size()) != m) {
    return Status::Internal("certificate check failed: dual size " +
                            std::to_string(y.size()) + " != num_constraints " +
                            std::to_string(m));
  }
  if (static_cast<int>(certified.reduced_costs.size()) != n) {
    return Status::Internal(
        "certificate check failed: reduced_costs size mismatch");
  }

  // Primal feasibility: x >= 0 and each row satisfied within tol (scaled by
  // the row magnitude so huge-coefficient rows are not held to an absolute
  // bar their own rounding cannot meet).
  for (int j = 0; j < n; ++j) {
    if (x[static_cast<size_t>(j)] < -tol) {
      return Violated("primal x must be >= 0", j, x[static_cast<size_t>(j)]);
    }
  }
  std::vector<double> activity(static_cast<size_t>(m), 0.0);
  for (int r = 0; r < m; ++r) {
    double ax = 0.0;
    double scale = std::fabs(rows.rhs[static_cast<size_t>(r)]);
    for (int j = 0; j < n; ++j) {
      ax += rows.coef[static_cast<size_t>(r)][static_cast<size_t>(j)] *
            x[static_cast<size_t>(j)];
      scale = std::max(
          scale,
          std::fabs(rows.coef[static_cast<size_t>(r)][static_cast<size_t>(j)] *
                    x[static_cast<size_t>(j)]));
    }
    activity[static_cast<size_t>(r)] = ax;
    const double slack = ax - rows.rhs[static_cast<size_t>(r)];
    const double row_tol = tol * std::max(1.0, scale);
    switch (rows.relation[static_cast<size_t>(r)]) {
      case Relation::kLessEqual:
        if (slack > row_tol) return Violated("primal row <= violated", r, slack);
        break;
      case Relation::kGreaterEqual:
        if (slack < -row_tol) {
          return Violated("primal row >= violated", r, slack);
        }
        break;
      case Relation::kEqual:
        if (std::fabs(slack) > row_tol) {
          return Violated("primal row = violated", r, slack);
        }
        break;
    }
  }

  // Dual feasibility: multiplier signs plus the dual constraints. The
  // reported reduced cost must agree with the recomputed dual slack.
  GEPC_RETURN_IF_ERROR(
      CheckMultiplierSigns(rows, y, /*flip=*/maximize, tol, "dual"));
  std::vector<double> dual_slack(static_cast<size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    double yta = 0.0;
    for (int r = 0; r < m; ++r) {
      yta += y[static_cast<size_t>(r)] *
             rows.coef[static_cast<size_t>(r)][static_cast<size_t>(j)];
    }
    const double cj = lp.objective(j);
    // min: c_j - y^T a_j >= 0; max: y^T a_j - c_j >= 0.
    const double slack = maximize ? yta - cj : cj - yta;
    dual_slack[static_cast<size_t>(j)] = slack;
    if (slack < -tol) return Violated("dual constraint violated", j, slack);
    const double reported = certified.reduced_costs[static_cast<size_t>(j)];
    if (std::fabs(reported - slack) > tol * std::max(1.0, std::fabs(slack))) {
      return Violated("reported reduced cost disagrees with dual slack", j,
                      reported - slack);
    }
  }

  // Complementary slackness, both directions.
  for (int j = 0; j < n; ++j) {
    const double prod =
        x[static_cast<size_t>(j)] * dual_slack[static_cast<size_t>(j)];
    if (std::fabs(prod) > tol * std::max(1.0, std::fabs(prod))) {
      if (std::fabs(prod) > tol) {
        return Violated("complementary slackness x_j * dual_slack_j != 0", j,
                        prod);
      }
    }
  }
  for (int r = 0; r < m; ++r) {
    const double prod =
        y[static_cast<size_t>(r)] *
        (activity[static_cast<size_t>(r)] - rows.rhs[static_cast<size_t>(r)]);
    if (std::fabs(prod) > tol) {
      return Violated("complementary slackness y_r * row_slack_r != 0", r,
                      prod);
    }
  }

  // Strong duality: b^T y == c^T x == reported objective.
  double primal_obj = 0.0;
  for (int j = 0; j < n; ++j) {
    primal_obj += lp.objective(j) * x[static_cast<size_t>(j)];
  }
  double dual_obj = 0.0;
  for (int r = 0; r < m; ++r) {
    dual_obj += rows.rhs[static_cast<size_t>(r)] * y[static_cast<size_t>(r)];
  }
  const double obj_scale =
      std::max({1.0, std::fabs(primal_obj), std::fabs(dual_obj)});
  if (std::fabs(primal_obj - dual_obj) > tol * obj_scale) {
    return Violated("strong duality b^T y != c^T x", -1, primal_obj - dual_obj);
  }
  if (std::fabs(primal_obj - certified.solution.objective_value) >
      tol * obj_scale) {
    return Violated("reported objective disagrees with c^T x", -1,
                    primal_obj - certified.solution.objective_value);
  }
  return Status::OK();
}

Status VerifyInfeasible(const LinearProgram& lp, const DenseRows& rows,
                        const CertifiedLpResult& certified, double tol) {
  const int m = lp.num_constraints();
  const int n = lp.num_vars();
  std::vector<double> y = certified.farkas;
  if (static_cast<int>(y.size()) != m) {
    return Status::Internal("certificate check failed: farkas size " +
                            std::to_string(y.size()) + " != num_constraints " +
                            std::to_string(m));
  }
  // Farkas vectors are scale-free; normalize to unit max-magnitude so the
  // strict-positivity margin below is meaningful regardless of solver
  // scaling.
  const double scale = MaxAbs(y);
  if (scale <= 0.0) {
    return Status::Internal("certificate check failed: farkas vector is zero");
  }
  for (double& v : y) v /= scale;

  GEPC_RETURN_IF_ERROR(
      CheckMultiplierSigns(rows, y, /*flip=*/false, tol, "farkas"));
  for (int j = 0; j < n; ++j) {
    double yta = 0.0;
    for (int r = 0; r < m; ++r) {
      yta += y[static_cast<size_t>(r)] *
             rows.coef[static_cast<size_t>(r)][static_cast<size_t>(j)];
    }
    if (yta > tol) return Violated("farkas y^T a_j must be <= 0", j, yta);
  }
  double bty = 0.0;
  for (int r = 0; r < m; ++r) {
    bty += rows.rhs[static_cast<size_t>(r)] * y[static_cast<size_t>(r)];
  }
  if (bty <= 10.0 * tol) {
    return Violated("farkas b^T y must be strictly positive", -1, bty);
  }
  return Status::OK();
}

Status VerifyUnbounded(const LinearProgram& lp, const DenseRows& rows,
                       const CertifiedLpResult& certified, double tol) {
  const int m = lp.num_constraints();
  const int n = lp.num_vars();
  const bool maximize = lp.sense() == LinearProgram::Sense::kMaximize;
  std::vector<double> d = certified.ray;
  if (static_cast<int>(d.size()) != n) {
    return Status::Internal("certificate check failed: ray size " +
                            std::to_string(d.size()) + " != num_vars " +
                            std::to_string(n));
  }
  const double scale = MaxAbs(d);
  if (scale <= 0.0) {
    return Status::Internal("certificate check failed: ray is zero");
  }
  for (double& v : d) v /= scale;

  for (int j = 0; j < n; ++j) {
    if (d[static_cast<size_t>(j)] < -tol) {
      return Violated("ray must be >= 0", j, d[static_cast<size_t>(j)]);
    }
  }
  for (int r = 0; r < m; ++r) {
    double ad = 0.0;
    for (int j = 0; j < n; ++j) {
      ad += rows.coef[static_cast<size_t>(r)][static_cast<size_t>(j)] *
            d[static_cast<size_t>(j)];
    }
    switch (rows.relation[static_cast<size_t>(r)]) {
      case Relation::kLessEqual:
        if (ad > tol) return Violated("ray a_r d must be <= 0", r, ad);
        break;
      case Relation::kGreaterEqual:
        if (ad < -tol) return Violated("ray a_r d must be >= 0", r, ad);
        break;
      case Relation::kEqual:
        if (std::fabs(ad) > tol) return Violated("ray a_r d must be 0", r, ad);
        break;
    }
  }
  double ctd = 0.0;
  for (int j = 0; j < n; ++j) {
    ctd += lp.objective(j) * d[static_cast<size_t>(j)];
  }
  if (maximize) {
    if (ctd <= 10.0 * tol) {
      return Violated("ray c^T d must be strictly positive (maximize)", -1,
                      ctd);
    }
  } else {
    if (ctd >= -10.0 * tol) {
      return Violated("ray c^T d must be strictly negative (minimize)", -1,
                      ctd);
    }
  }
  return Status::OK();
}

}  // namespace

Status VerifyLpCertificate(const LinearProgram& lp,
                           const CertifiedLpResult& certified,
                           double tolerance) {
  GEPC_RETURN_IF_ERROR(lp.Validate());
  if (!(tolerance > 0.0)) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  const DenseRows rows = BuildDenseRows(lp);
  switch (certified.outcome) {
    case LpOutcome::kOptimal:
      return VerifyOptimal(lp, rows, certified, tolerance);
    case LpOutcome::kInfeasible:
      return VerifyInfeasible(lp, rows, certified, tolerance);
    case LpOutcome::kUnbounded:
      return VerifyUnbounded(lp, rows, certified, tolerance);
  }
  return Status::Internal("unknown certificate outcome");
}

}  // namespace gepc
