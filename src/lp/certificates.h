#ifndef GEPC_LP_CERTIFICATES_H_
#define GEPC_LP_CERTIFICATES_H_

#include <vector>

#include "common/result.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace gepc {

/// How a certified LP solve ended. Unlike SolveLp (which folds infeasible
/// and unbounded into error Statuses), the certified API reports all three
/// outcomes as values, each carrying an independently checkable witness.
enum class LpOutcome {
  kOptimal,
  kInfeasible,
  kUnbounded,
};

/// An LP solve result plus the certificate that proves it, in terms of the
/// ORIGINAL program (rows as the caller stated them, including sense).
///
/// Conventions, with A the dense constraint matrix (duplicate terms
/// summed), rows related to b by <=, >= or =:
///
///  * kOptimal: `solution` holds x; `dual` holds one multiplier y_r per
///    constraint row with
///      minimize: y_r <= 0 for <= rows, y_r >= 0 for >= rows, free for =;
///                sum_r y_r a_rj <= c_j for every variable j;
///      maximize: y_r >= 0 for <= rows, y_r <= 0 for >= rows, free for =;
///                sum_r y_r a_rj >= c_j for every variable j;
///    complementary slackness x_j * (dual slack)_j = 0 and
///    y_r * (a_r x - b_r) = 0, and strong duality b^T y = c^T x.
///    `reduced_costs[j]` is the (nonnegative) dual-constraint slack of
///    variable j: c_j - sum_r y_r a_rj when minimizing, the negation when
///    maximizing.
///  * kInfeasible: `farkas` holds y_r with y_r <= 0 for <= rows, y_r >= 0
///    for >= rows, free for =, such that sum_r y_r a_rj <= 0 for every j
///    and b^T y > 0 — a Farkas proof that no x >= 0 satisfies the rows.
///  * kUnbounded: `ray` holds a direction d >= 0, d != 0, with
///    a_r d <= 0 for <= rows, >= 0 for >= rows, = 0 for = rows, and
///    c^T d < 0 when minimizing (> 0 when maximizing) — a recession
///    direction that improves the objective forever from any feasible
///    point (the solver reached phase 2, so one exists).
struct CertifiedLpResult {
  LpOutcome outcome = LpOutcome::kOptimal;
  LpSolution solution;                // kOptimal only
  std::vector<double> dual;           // kOptimal: one entry per constraint
  std::vector<double> reduced_costs;  // kOptimal: one entry per variable
  std::vector<double> farkas;         // kInfeasible: one entry per constraint
  std::vector<double> ray;            // kUnbounded: one entry per variable
};

/// Solves `lp` on the flat engine and returns the outcome with its
/// certificate. Statuses are reserved for genuine failures:
/// kInvalidArgument (malformed program / options) and kInternal (iteration
/// cap). `options.pivot_rule` is honored — every rule produces a
/// certificate for the vertex it reaches. `workspace` may be nullptr.
Result<CertifiedLpResult> SolveLpCertified(const LinearProgram& lp,
                                           const SimplexOptions& options = {},
                                           LpWorkspace* workspace = nullptr);

/// Independently verifies `certified` against `lp`: rebuilds the dense rows
/// straight from the program (no solver state involved) and numerically
/// checks every condition listed on CertifiedLpResult within `tolerance`.
/// Farkas vectors and rays are scale-free, so they are normalized to unit
/// max-magnitude before checking. Returns OK or kInternal naming the first
/// violated condition. This is what lp_certificate_test leans on, so LP
/// correctness does not rest on a second solver being right.
Status VerifyLpCertificate(const LinearProgram& lp,
                           const CertifiedLpResult& certified,
                           double tolerance = 1e-6);

}  // namespace gepc

#endif  // GEPC_LP_CERTIFICATES_H_
