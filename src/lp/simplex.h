#ifndef GEPC_LP_SIMPLEX_H_
#define GEPC_LP_SIMPLEX_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "lp/linear_program.h"

namespace gepc {

namespace lp_internal {
class FlatTableau;
}  // namespace lp_internal

/// Entering-column selection rule. The differential suite runs the same
/// corpus under every rule and demands agreement on status and objective —
/// the rules may reach different vertices of the same optimal face, never
/// different optima.
enum class SimplexPivotRule {
  /// Most negative reduced cost. The default.
  kDantzig,
  /// Lowest-index negative reduced cost from the first iteration on
  /// (termination guarantee; slower).
  kBland,
  /// Reduced cost normalized by the current tableau column norm
  /// (textbook steepest-edge pricing, recomputed per iteration). Fewer
  /// pivots on ill-conditioned programs; may reach a different vertex of
  /// the same optimal face than Dantzig.
  kSteepestEdge,
};

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  /// Reduced-cost / pivot tolerance; must be in (0, 1e-2].
  double epsilon = 1e-9;
  /// Hard iteration cap per phase (0 = 200 * (rows + cols) + 10000, the
  /// default); must be >= 0.
  int64_t max_iterations = 0;
  /// After this many consecutive degenerate pivots, switch from the
  /// configured pricing rule to Bland's rule (guarantees termination);
  /// must be >= 1.
  int degenerate_pivots_before_bland = 64;
  SimplexPivotRule pivot_rule = SimplexPivotRule::kDantzig;
};

/// Rejects out-of-range options loudly (kInvalidArgument) instead of
/// silently clamping them. Called by every solver entry point.
Status ValidateSimplexOptions(const SimplexOptions& options);

/// Reusable solver state: owns the arena the flat tableau lives in. Passing
/// the same workspace to consecutive SolveLp calls reuses the allocation
/// whenever the new program fits the arena's capacity headroom, which makes
/// per-solve heap traffic O(1) in steady state (the GAP loop and
/// branch-and-bound both lean on this). A workspace is not thread-safe; use
/// one per thread.
class LpWorkspace {
 public:
  LpWorkspace();
  ~LpWorkspace();
  LpWorkspace(LpWorkspace&&) noexcept;
  LpWorkspace& operator=(LpWorkspace&&) noexcept;
  LpWorkspace(const LpWorkspace&) = delete;
  LpWorkspace& operator=(const LpWorkspace&) = delete;

  /// Number of times the arena actually (re)allocated. Stays flat across
  /// solves that fit the current capacity — the reuse contract the
  /// bench_lp_core allocation columns measure.
  int64_t allocation_count() const;
  /// Current arena footprint in bytes.
  size_t arena_bytes() const;

  lp_internal::FlatTableau* tableau() { return tableau_.get(); }

 private:
  std::unique_ptr<lp_internal::FlatTableau> tableau_;
};

/// Solves `lp` exactly with the two-phase dense primal simplex method.
///
/// Returns the optimal solution, or:
///  * kInfeasible      — no x >= 0 satisfies the constraints;
///  * kInvalidArgument — malformed program or out-of-range options;
///  * kInternal        — unbounded objective or iteration cap hit.
///
/// This is the exact LP engine behind the GAP-based GEPC algorithm
/// (Sec. III-A) at small/medium scale and the oracle for the approximate
/// solver's tests; complexity is O(rows * cols) memory and typically a few
/// hundred pivots for the GAP relaxations we build.
Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options = {});

/// As above, but reuses `workspace` (may be nullptr).
Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options,
                           LpWorkspace* workspace);

}  // namespace gepc

#endif  // GEPC_LP_SIMPLEX_H_
