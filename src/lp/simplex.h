#ifndef GEPC_LP_SIMPLEX_H_
#define GEPC_LP_SIMPLEX_H_

#include <cstdint>

#include "common/result.h"
#include "lp/linear_program.h"

namespace gepc {

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  /// Reduced-cost / pivot tolerance.
  double epsilon = 1e-9;
  /// Hard iteration cap per phase (0 = 50 * (rows + cols), the default).
  int64_t max_iterations = 0;
  /// After this many consecutive degenerate pivots, switch from Dantzig
  /// pricing to Bland's rule (guarantees termination).
  int degenerate_pivots_before_bland = 64;
};

/// Solves `lp` exactly with the two-phase dense primal simplex method.
///
/// Returns the optimal solution, or:
///  * kInfeasible      — no x >= 0 satisfies the constraints;
///  * kInvalidArgument — malformed program (bad variable index);
///  * kInternal        — unbounded objective or iteration cap hit.
///
/// This is the exact LP engine behind the GAP-based GEPC algorithm
/// (Sec. III-A) at small/medium scale and the oracle for the approximate
/// solver's tests; complexity is O(rows * cols) memory and typically a few
/// hundred pivots for the GAP relaxations we build.
Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options = {});

}  // namespace gepc

#endif  // GEPC_LP_SIMPLEX_H_
