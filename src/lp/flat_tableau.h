#ifndef GEPC_LP_FLAT_TABLEAU_H_
#define GEPC_LP_FLAT_TABLEAU_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "lp/certificates.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace gepc {
namespace lp_internal {

/// Unmanaged view of a simplex tableau: raw pointers plus dimensions into
/// an arena someone else owns (the LoopModels Simplex.hpp unmanaged/managed
/// split). The pivot kernel works exclusively through this view, so it
/// never cares whether the storage came from a reused workspace or a
/// one-shot local tableau. Rows are contiguous with stride `stride`
/// (the column capacity), which is what makes the pivot-row axpy and the
/// reduced-cost accumulation plain vectorizable loops.
struct TableauView {
  double* tab = nullptr;      // rows x cols, row r at tab + r * stride
  double* rhs = nullptr;      // length rows
  int32_t* basis = nullptr;   // length rows; storage column basic in row r
  uint8_t* row_active = nullptr;  // length rows; 0 = deactivated (redundant)
  int rows = 0;
  int cols = 0;               // columns in use (slack + structural + artificial)
  int stride = 0;             // column capacity; >= cols

  double* row(int r) { return tab + static_cast<size_t>(r) * stride; }
  const double* row(int r) const {
    return tab + static_cast<size_t>(r) * stride;
  }
  double& at(int r, int c) { return row(r)[c]; }
  double at(int r, int c) const { return row(r)[c]; }
};

/// Managed owner of the flat tableau arena.
///
/// One contiguous double buffer holds the tableau, the rhs column and the
/// cost / reduced-cost / pricing scratch rows; one contiguous int32 buffer
/// holds the basis, the column permutations and the per-row metadata. Both
/// are allocated with capacity headroom and survive Reset(), so solving a
/// stream of same-shaped programs (the GAP event-copy loop, branch-and-
/// bound nodes) costs zero allocations after the first.
///
/// Storage column order is slack-first — [slacks | structural | artificial]
/// — following LoopModels' Simplex.hpp: the initial basis occupies a
/// contiguous left-adjacent block. The *external* order (structural
/// variables first, then slacks, then artificials, exactly the legacy
/// engine's column numbering) is kept as a permutation and drives every
/// order-sensitive scan — entering-column selection, ratio-test
/// tie-breaking, artificial drive-out — so the flat engine reproduces the
/// legacy engine's pivot sequence bit-for-bit under Dantzig pricing.
class FlatTableau {
 public:
  FlatTableau() = default;

  /// Builds the phase-0 tableau for `lp` (rows normalized to rhs >= 0,
  /// initial slack/artificial basis), reusing the arenas when capacity
  /// allows. Only fails on programs whose dimensions overflow int.
  Status Reset(const LinearProgram& lp);

  TableauView View();

  // --- dimensions (valid after Reset) ---
  int rows() const { return rows_; }
  int num_structural() const { return structural_; }
  int num_slack() const { return slack_; }
  int num_artificial() const { return artificial_; }
  int cols() const { return cols_; }

  /// First storage column that is an artificial variable.
  int artificial_store_begin() const { return slack_ + structural_; }

  // --- column permutations ---
  int ext_to_store(int ext) const { return ext_to_store_[ext]; }
  int store_to_ext(int store) const { return store_to_ext_[store]; }
  /// Storage column of structural variable v.
  int structural_store(int v) const { return slack_ + v; }

  // --- per-row metadata ---
  /// Storage column of the row's initial-identity column (its slack for <=
  /// rows, its artificial otherwise); the dual value of the row is read off
  /// this column's final reduced cost.
  int identity_col(int r) const { return identity_col_[r]; }
  /// True when normalization negated the row (rhs was negative); dual /
  /// Farkas multipliers for the row flip sign on the way out.
  bool row_flipped(int r) const { return row_flipped_[r] != 0; }

  // --- equilibration (power-of-two row/column scales, exact in FP) ---
  /// Scale applied to row r during Reset; duals unscale as y = R_r * y'.
  double row_scale(int r) const { return row_scale_[static_cast<size_t>(r)]; }
  /// Scale applied to structural column v; the primal unscales as
  /// x_v = C_v * x'_v and reduced costs as rc_v = rc'_v / C_v.
  double col_scale(int v) const { return col_scale_[static_cast<size_t>(v)]; }

  // --- scratch rows living in the arena ---
  double* cost() { return cost_; }          // length >= cols()
  double* reduced() { return reduced_; }    // length >= cols()
  double* pricing() { return pricing_; }    // length >= cols()
  double* norms() { return norms_; }        // length >= cols()

  // --- reuse accounting ---
  int64_t allocation_count() const { return allocations_; }
  size_t arena_bytes() const {
    return doubles_.capacity() * sizeof(double) +
           ints_.capacity() * sizeof(int32_t);
  }

 private:
  void Layout(int row_cap, int col_cap);

  std::vector<double> doubles_;
  std::vector<int32_t> ints_;
  std::vector<uint8_t> flags_;

  // Pointers into the arenas, set by Layout().
  double* tab_ = nullptr;
  double* rhs_ = nullptr;
  double* cost_ = nullptr;
  double* reduced_ = nullptr;
  double* pricing_ = nullptr;
  double* norms_ = nullptr;
  int32_t* basis_ = nullptr;
  int32_t* ext_to_store_ = nullptr;
  int32_t* store_to_ext_ = nullptr;
  int32_t* identity_col_ = nullptr;
  uint8_t* row_active_ = nullptr;
  uint8_t* row_flipped_ = nullptr;

  int rows_ = 0;
  int structural_ = 0;
  int slack_ = 0;
  int artificial_ = 0;
  int cols_ = 0;
  int row_cap_ = 0;
  int col_cap_ = 0;  // also the row stride
  int64_t allocations_ = 0;

  std::vector<double> dense_row_;  // Reset() scratch for duplicate summing
  std::vector<double> row_scale_;  // power-of-two equilibration, per row
  std::vector<double> col_scale_;  // ... per structural column
};

/// Runs the two-phase simplex for `lp` on the flat tableau and returns the
/// outcome with certificates. `tableau` may be nullptr (a local one is
/// used). This is the engine behind SolveLp(kFlat) and SolveLpCertified.
Result<CertifiedLpResult> SolveLpFlat(const LinearProgram& lp,
                                      const SimplexOptions& options,
                                      FlatTableau* tableau);

}  // namespace lp_internal
}  // namespace gepc

#endif  // GEPC_LP_FLAT_TABLEAU_H_
