#ifndef GEPC_LP_BRANCH_AND_BOUND_H_
#define GEPC_LP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace gepc {

/// Options for the 0/1 MIP solver.
struct MipOptions {
  /// Hard cap on explored branch-and-bound nodes.
  int64_t max_nodes = 100'000;
  /// Values within this of an integer count as integral.
  double integrality_tolerance = 1e-6;
  SimplexOptions simplex;
};

struct MipSolution {
  double objective_value = 0.0;
  std::vector<double> x;
  int64_t explored_nodes = 0;
};

/// Solves `lp` with every variable additionally restricted to {0, 1} by
/// LP-relaxation branch-and-bound: solve the relaxation with the simplex,
/// branch on the most fractional variable (adding x = 0 / x = 1 rows),
/// bound with the relaxation objective. Generic substrate used to
/// cross-check the combinatorial exact GAP solver; exponential in the worst
/// case (kInternal once max_nodes is hit).
///
/// Returns kInfeasible when no 0/1 point satisfies the constraints.
Result<MipSolution> SolveBinaryMip(const LinearProgram& lp,
                                   const MipOptions& options = {});

}  // namespace gepc

#endif  // GEPC_LP_BRANCH_AND_BOUND_H_
