#include "lp/linear_program.h"

namespace gepc {

Status LinearProgram::Validate() const {
  const int n = num_vars();
  for (int r = 0; r < num_constraints(); ++r) {
    for (const auto& [var, coef] : constraints_[static_cast<size_t>(r)].terms) {
      (void)coef;
      if (var < 0 || var >= n) {
        return Status::InvalidArgument(
            "constraint " + std::to_string(r) +
            " references variable " + std::to_string(var) +
            " outside [0, " + std::to_string(n) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace gepc
