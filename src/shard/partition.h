#ifndef GEPC_SHARD_PARTITION_H_
#define GEPC_SHARD_PARTITION_H_

#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "spatial/reachability.h"

namespace gepc {

/// user_shard value for users whose budget disk spans several shards (or
/// reaches none): they are withheld from the per-shard solves and assigned
/// during the merge pass.
inline constexpr int kBoundaryUser = -1;

/// A spatial cut of an instance into `num_shards` sub-instances.
///
/// Events are partitioned by recursive bisection of the occupied grid
/// cells (split the wider axis at the event-count-weighted median), so
/// every event belongs to exactly one shard and shards are spatially
/// contiguous blocks of cells. A user is *interior* to shard s when every
/// event they can reach within budget (ReachabilityFilter) lives in s —
/// solving s in isolation then sees the user's complete candidate set, so
/// no utility is lost by the cut. Everyone else is a *boundary* user.
struct ShardPartition {
  int num_shards = 1;
  /// Shard of each event (size m, values in [0, num_shards)).
  std::vector<int> event_shard;
  /// Shard of each interior user, kBoundaryUser otherwise (size n).
  std::vector<int> user_shard;
  /// Per-shard event / interior-user id lists, ascending (global ids).
  std::vector<std::vector<EventId>> shard_events;
  std::vector<std::vector<UserId>> shard_users;
  /// Users withheld for the merge pass, ascending.
  std::vector<UserId> boundary_users;

  friend bool operator==(const ShardPartition& a, const ShardPartition& b) {
    return a.num_shards == b.num_shards && a.event_shard == b.event_shard &&
           a.user_shard == b.user_shard && a.shard_events == b.shard_events &&
           a.shard_users == b.shard_users &&
           a.boundary_users == b.boundary_users;
  }
  friend bool operator!=(const ShardPartition& a, const ShardPartition& b) {
    return !(a == b);
  }
};

/// Fills shard_events / user_shard / shard_users / boundary_users from an
/// already-populated event_shard (values in [0, num_shards)): a user is
/// interior to shard s iff every budget-reachable event lives in s. Shared
/// by the bisection and Voronoi partitioners and by the incremental
/// migration path, so every caller classifies identically.
void FinishPartitionFromEventShards(const Instance& instance,
                                    const ReachabilityFilter& filter,
                                    ShardPartition* partition);

/// Cuts `instance` into `num_shards` spatial shards (clamped to >= 1).
/// Deterministic: depends only on event locations, the filter's grid and
/// the shard count. Shards may end up empty when events are concentrated
/// in fewer occupied cells than shards requested.
ShardPartition PartitionInstance(const Instance& instance,
                                 const ReachabilityFilter& filter,
                                 int num_shards);

}  // namespace gepc

#endif  // GEPC_SHARD_PARTITION_H_
