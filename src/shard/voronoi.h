#ifndef GEPC_SHARD_VORONOI_H_
#define GEPC_SHARD_VORONOI_H_

#include <vector>

#include "core/instance.h"
#include "geom/point.h"
#include "shard/partition.h"
#include "spatial/reachability.h"

namespace gepc {

/// Which spatial partitioner cuts an instance into shards.
enum class ShardPartitioner {
  /// Recursive bisection of the occupied grid cells (PR 2's static cut).
  kBisection,
  /// Centroidal-Voronoi cells: Lloyd iterations over the user density,
  /// seeded from the bisection cuts (or explicit sites). The partitioner
  /// behind online rebalancing — warm-starting Lloyd from the previous
  /// sites tracks a drifting user population without a full re-cut.
  kVoronoi,
};

/// Tuning for the Lloyd iteration.
struct VoronoiOptions {
  /// Centroid-update rounds. 0 runs a single assignment pass against the
  /// seed sites with no update — the mode the FP-exactness tests (and
  /// assignment-only queries) use. The loop also stops early as soon as an
  /// assignment pass changes nothing (a Lloyd fixed point).
  int max_iterations = 25;
  /// Explicit seed sites. Used when the size equals the requested shard
  /// count; otherwise seeds come from the recursive-bisection cuts (the
  /// per-shard event centroids, farthest-user supplemented).
  std::vector<Point> seed_sites;
};

/// What one Lloyd run produced.
struct VoronoiResult {
  /// Final sites, size num_shards.
  std::vector<Point> sites;
  /// Site of each user (nearest final site, ties to the lower index).
  std::vector<int> user_site;
  /// Centroid-update rounds actually performed.
  int iterations = 0;
  /// Total within-cell squared distance after each assignment pass
  /// (size iterations + 1). Non-increasing — the classic Lloyd descent —
  /// which the property tests assert.
  std::vector<double> cost_history;
};

/// Index of the site nearest to `p` (squared distance, ties to the lower
/// index). `sites` must be non-empty. Shared by the partitioner and the
/// incremental migration path so both classify identically, bit for bit.
int NearestSite(const std::vector<Point>& sites, const Point& p);

/// Seeds for `num_shards` sites from the current recursive-bisection cuts:
/// shard s's seed is the centroid of its events; shards left empty by the
/// bisection are supplemented with the user location farthest from the
/// sites chosen so far (deterministic, lowest index on ties).
std::vector<Point> BisectionSeedSites(const Instance& instance,
                                      const ReachabilityFilter& filter,
                                      int num_shards);

/// Lloyd's algorithm over the user locations: assign each user to the
/// nearest site, move every site to the centroid of its cell, repeat.
/// Deterministic — iteration order is user/site index order and empty cells
/// keep their site. Within-cell variance is monotone non-increasing.
VoronoiResult LloydUserSites(const Instance& instance,
                             const ReachabilityFilter& filter, int num_shards,
                             const VoronoiOptions& options = {});

/// Cuts `instance` into centroidal-Voronoi shards: Lloyd sites over the
/// user density, events assigned to their nearest site, users classified
/// interior/boundary exactly like PartitionInstance. `result_out`
/// (optional) receives the Lloyd run (sites, assignment, cost history).
ShardPartition PartitionInstanceVoronoi(const Instance& instance,
                                        const ReachabilityFilter& filter,
                                        int num_shards,
                                        const VoronoiOptions& options = {},
                                        VoronoiResult* result_out = nullptr);

}  // namespace gepc

#endif  // GEPC_SHARD_VORONOI_H_
