#include "shard/sharded_solver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/feasibility.h"
#include "exec/task_rng.h"
#include "fault/fault.h"
#include "exec/thread_pool.h"
#include "flow/min_cost_flow.h"
#include "gepc/topup.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gepc {

namespace {

/// Cached registry handles for the partition/solve/merge phase metrics.
struct ShardMetrics {
  std::shared_ptr<obs::Histogram> partition_ms;
  std::shared_ptr<obs::Histogram> solve_ms;
  std::shared_ptr<obs::Histogram> merge_ms;
  std::shared_ptr<obs::Counter> degraded;

  static const ShardMetrics& Get() {
    static const ShardMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      ShardMetrics m;
      m.partition_ms = registry.GetHistogram(
          "gepc_shard_partition_ms", "reachability filter + partition latency");
      m.solve_ms = registry.GetHistogram(
          "gepc_shard_solve_ms", "parallel per-shard solve phase latency");
      m.merge_ms = registry.GetHistogram(
          "gepc_shard_merge_ms", "splice + boundary flow + repair latency");
      m.degraded = registry.GetCounter(
          "gepc_shard_degraded_total",
          "shards re-solved with the greedy fallback after a failure");
      return m;
    }();
    return metrics;
  }
};

/// Copies the (users, events) slice of `instance` into a standalone
/// sub-instance. Only reads users()/events()/utility() — never the lazy
/// conflict cache — so it is safe to run concurrently for disjoint shards.
Instance BuildSubInstance(const Instance& instance,
                          const std::vector<UserId>& users,
                          const std::vector<EventId>& events) {
  std::vector<User> sub_users;
  sub_users.reserve(users.size());
  for (UserId i : users) sub_users.push_back(instance.user(i));
  std::vector<Event> sub_events;
  sub_events.reserve(events.size());
  for (EventId j : events) {
    Event event = instance.event(j);
    // A shard may hold fewer interior users than xi_j; the shard solve
    // fills what it can and the merge's repair pass covers the remainder
    // from the full user pool.
    event.lower_bound =
        std::min(event.lower_bound, static_cast<int>(users.size()));
    sub_events.push_back(std::move(event));
  }
  Instance sub(std::move(sub_users), std::move(sub_events));
  for (size_t li = 0; li < users.size(); ++li) {
    for (size_t lj = 0; lj < events.size(); ++lj) {
      const double mu = instance.utility(users[li], events[lj]);
      if (mu != 0.0) {
        sub.set_utility(static_cast<UserId>(li), static_cast<EventId>(lj), mu);
      }
    }
  }
  return sub;
}

/// Merge step 2: one min-cost max-flow spending boundary users on the
/// spliced plan's lower-bound deficits. Only events still below xi_j take
/// part — plain-utility placement is the top-up pass's job (greedy and
/// linear), so the number of unit augmentations is bounded by the total
/// deficit, not by the boundary population. Costs are -mu, so among all
/// ways of filling the most deficit units the flow picks the highest-
/// utility one.
int AssignBoundaryByFlow(const Instance& instance,
                         const ReachabilityFilter& filter,
                         const std::vector<UserId>& boundary, Plan* plan) {
  if (boundary.empty()) return 0;
  const int m = instance.num_events();

  std::vector<int> event_node(static_cast<size_t>(m), -1);
  std::vector<EventId> deficit_events;
  for (int j = 0; j < m; ++j) {
    if (plan->attendance(j) < instance.event(j).lower_bound) {
      event_node[static_cast<size_t>(j)] =
          static_cast<int>(deficit_events.size());
      deficit_events.push_back(j);
    }
  }
  if (deficit_events.empty()) return 0;

  // Boundary users with at least one reachable deficit event get a node.
  // Zero-utility candidates stay in: a warm body still satisfies xi_j.
  std::vector<UserId> takers;
  std::vector<std::vector<EventId>> candidates;
  for (const UserId i : boundary) {
    std::vector<EventId> mine;
    for (EventId j : filter.AttendableEvents(i)) {
      if (event_node[static_cast<size_t>(j)] >= 0) mine.push_back(j);
    }
    if (mine.empty()) continue;
    takers.push_back(i);
    candidates.push_back(std::move(mine));
  }
  if (takers.empty()) return 0;
  const int b = static_cast<int>(takers.size());
  const int d = static_cast<int>(deficit_events.size());

  struct PairEdge {
    int edge_id;
    UserId user;
    EventId event;
  };
  std::vector<PairEdge> pairs;
  // Nodes: 0 source | 1..b users | b+1..b+d deficit events | b+d+1 sink.
  const int source = 0;
  const int sink = b + d + 1;
  MinCostFlow flow(sink + 1);
  for (int u = 0; u < b; ++u) {
    flow.AddEdge(source, 1 + u, 1, 0.0);
    const UserId i = takers[static_cast<size_t>(u)];
    for (EventId j : candidates[static_cast<size_t>(u)]) {
      pairs.push_back(PairEdge{
          flow.AddEdge(1 + u, 1 + b + event_node[static_cast<size_t>(j)], 1,
                       -instance.utility(i, j)),
          i, j});
    }
  }
  for (int e = 0; e < d; ++e) {
    const EventId j = deficit_events[static_cast<size_t>(e)];
    const int deficit =
        instance.event(j).lower_bound - plan->attendance(j);
    flow.AddEdge(1 + b + e, sink, deficit, 0.0);
  }
  if (!flow.Solve(source, sink).ok()) return 0;  // bipartite: cannot happen

  int assigned = 0;
  for (const PairEdge& pair : pairs) {
    if (flow.FlowOn(pair.edge_id) <= 0) continue;
    // A single event within the reachability radius is always feasible for
    // an empty plan; the check is defensive.
    if (!CanAttend(instance, *plan, pair.user, pair.event)) continue;
    plan->Add(pair.user, pair.event);
    ++assigned;
  }
  return assigned;
}

/// Merge step 3: the Conflict Adjusting reassignment loop (Algorithm 1)
/// applied to lower-bound deficits — every event still below xi_j is
/// offered to the remaining feasible users in decreasing utility order.
int RepairLowerBounds(const Instance& instance, Plan* plan) {
  int added = 0;
  const int n = instance.num_users();
  for (int j = 0; j < instance.num_events(); ++j) {
    const Event& event = instance.event(j);
    if (plan->attendance(j) >= event.lower_bound) continue;
    std::vector<std::pair<double, UserId>> takers;
    for (UserId i = 0; i < n; ++i) {
      const double mu = instance.utility(i, j);
      if (mu <= 0.0 || plan->Contains(i, j)) continue;
      takers.emplace_back(mu, i);
    }
    std::sort(takers.begin(), takers.end(),
              [](const std::pair<double, UserId>& a,
                 const std::pair<double, UserId>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (const auto& [mu, i] : takers) {
      if (plan->attendance(j) >= event.lower_bound) break;
      if (!CanAttend(instance, *plan, i, j)) continue;
      plan->Add(i, j);
      ++added;
    }
  }
  return added;
}

}  // namespace

Result<GepcResult> SolveSharded(const Instance& instance,
                                const ShardedGepcOptions& options,
                                ShardedGepcStats* stats) {
  GEPC_RETURN_IF_ERROR(instance.Validate());
  if (stats != nullptr) *stats = ShardedGepcStats{};
  const ShardMetrics& om = ShardMetrics::Get();
  GEPC_TRACE_SPAN("shard.sharded_solve");

  // shards <= 1: no cut, no merge — delegate so the result (plan AND
  // stats) is byte-identical to the sequential solver. The single solve is
  // still a fault-injectable "shard" with the same greedy degradation.
  if (options.shards <= 1) {
    if (stats != nullptr) {
      stats->shards = 1;
      stats->interior_users = instance.num_users();
    }
    fault::Inject("shard.slow");
    const Status injected = fault::Inject("shard.solve");
    Result<GepcResult> solved = injected.ok()
                                    ? SolveGepc(instance, options.gepc)
                                    : Result<GepcResult>(injected);
    if (solved.ok()) return solved;
    GepcOptions fallback = options.gepc;
    fallback.algorithm = GepcAlgorithm::kGreedy;
    fallback.refine_with_local_search = false;
    if (stats != nullptr) stats->degraded_shards = 1;
    om.degraded->Increment();
    return SolveGepc(instance, fallback);
  }

  const int n = instance.num_users();
  const int m = instance.num_events();
  Timer timer;

  const ReachabilityFilter filter(instance, options.cell_size);
  const ShardPartition partition =
      options.partitioner == ShardPartitioner::kVoronoi
          ? PartitionInstanceVoronoi(instance, filter, options.shards,
                                     options.voronoi)
          : PartitionInstance(instance, filter, options.shards);
  const int k = partition.num_shards;
  // Force the lazy conflict cache into existence before the parallel phase:
  // the merge needs it, and building it on the main thread keeps the shard
  // tasks strictly read-only on the shared instance.
  instance.conflicts();
  if (stats != nullptr) {
    stats->shards = k;
    stats->boundary_users = static_cast<int>(partition.boundary_users.size());
    stats->interior_users =
        n - static_cast<int>(partition.boundary_users.size());
    stats->partition_seconds = timer.ElapsedSeconds();
  }
  om.partition_ms->Observe(timer.ElapsedSeconds() * 1e3);

  // Per-shard solves. Each task reads the shared instance, builds its
  // private sub-instance and writes one result slot; shard s's randomness
  // comes from DeriveTaskSeed(master, s), so any thread count — including
  // the sequential fallback — produces the same slots.
  timer.Reset();
  const uint64_t master_seed = options.gepc.greedy.seed;
  std::vector<Result<GepcResult>> shard_results(
      static_cast<size_t>(k), Result<GepcResult>(Status::Internal("unsolved")));
  {
    ThreadPool pool(options.threads);
    pool.ParallelFor(0, k, [&](int s) {
      const std::vector<UserId>& users =
          partition.shard_users[static_cast<size_t>(s)];
      const std::vector<EventId>& events =
          partition.shard_events[static_cast<size_t>(s)];
      if (users.empty() && events.empty()) {
        shard_results[static_cast<size_t>(s)] = GepcResult{};
        return;
      }
      GEPC_TRACE_SPAN("shard.shard_solve");
      const Instance sub = BuildSubInstance(instance, users, events);
      GepcOptions shard_options = options.gepc;
      shard_options.greedy.seed =
          DeriveTaskSeed(master_seed, static_cast<uint64_t>(s));
      // Sub-instance user ids are shard-local, so the global friendship
      // graph cannot be consulted inside a shard. Strip affinity here; the
      // merge runs one global affinity-aware refine pass instead.
      shard_options.local_search.affinity = AffinityParams{};
      fault::Inject("shard.slow");  // delay-only: simulates a stalled shard
      const Status injected = fault::Inject("shard.solve");
      shard_results[static_cast<size_t>(s)] =
          injected.ok() ? SolveGepc(sub, shard_options)
                        : Result<GepcResult>(injected);
    });
  }
  // Graceful degradation: re-solve failed shards sequentially with the
  // greedy algorithm (same derived seed, so the degraded result is still
  // deterministic). Only if the fallback itself fails does the whole solve
  // error out.
  for (int s = 0; s < k; ++s) {
    if (shard_results[static_cast<size_t>(s)].ok()) continue;
    const std::vector<UserId>& users =
        partition.shard_users[static_cast<size_t>(s)];
    const std::vector<EventId>& events =
        partition.shard_events[static_cast<size_t>(s)];
    const Instance sub = BuildSubInstance(instance, users, events);
    GepcOptions fallback = options.gepc;
    fallback.algorithm = GepcAlgorithm::kGreedy;
    fallback.refine_with_local_search = false;
    fallback.local_search.affinity = AffinityParams{};
    fallback.greedy.seed = DeriveTaskSeed(master_seed, static_cast<uint64_t>(s));
    auto degraded = SolveGepc(sub, fallback);
    if (!degraded.ok()) return degraded.status();
    shard_results[static_cast<size_t>(s)] = *std::move(degraded);
    if (stats != nullptr) ++stats->degraded_shards;
    om.degraded->Increment();
  }
  if (stats != nullptr) stats->solve_seconds = timer.ElapsedSeconds();
  om.solve_ms->Observe(timer.ElapsedSeconds() * 1e3);

  // Merge step 1: splice the shard plans (disjoint users and events, and
  // sub-instance distances equal global distances, so feasibility carries).
  timer.Reset();
  GepcResult result;
  result.plan = Plan(n, m);
  for (int s = 0; s < k; ++s) {
    const GepcResult& shard = *shard_results[static_cast<size_t>(s)];
    const std::vector<UserId>& users =
        partition.shard_users[static_cast<size_t>(s)];
    const std::vector<EventId>& events =
        partition.shard_events[static_cast<size_t>(s)];
    for (size_t li = 0; li < users.size(); ++li) {
      for (EventId lj : shard.plan.events_of(static_cast<UserId>(li))) {
        result.plan.Add(users[li], events[static_cast<size_t>(lj)]);
      }
    }
    result.unplaced_copies += shard.unplaced_copies;
    result.adjust_stats.removed += shard.adjust_stats.removed;
    result.adjust_stats.reassigned += shard.adjust_stats.reassigned;
    result.adjust_stats.orphaned += shard.adjust_stats.orphaned;
    result.topup_stats.added += shard.topup_stats.added;
    result.local_search_stats.add_moves += shard.local_search_stats.add_moves;
    result.local_search_stats.replace_moves +=
        shard.local_search_stats.replace_moves;
    result.local_search_stats.transfer_moves +=
        shard.local_search_stats.transfer_moves;
    result.local_search_stats.passes =
        std::max(result.local_search_stats.passes,
                 shard.local_search_stats.passes);
    result.local_search_stats.utility_gain +=
        shard.local_search_stats.utility_gain;
  }

  // Merge steps 2-4: flow-assign boundary users (deficits first), repair
  // remaining lower-bound shortfalls, then top up boundary capacity.
  const int flow_assigned = AssignBoundaryByFlow(
      instance, filter, partition.boundary_users, &result.plan);
  const int repair_added = RepairLowerBounds(instance, &result.plan);
  TopUpStats boundary_topup;
  if (options.gepc.run_topup) {
    boundary_topup = TopUpUsers(instance, partition.boundary_users,
                                &result.plan, &filter);
    result.topup_stats.added += boundary_topup.added;
  }
  // With affinity armed, the per-shard solves scored plain mu (the graph is
  // global). One global refine pass over the merged plan recovers the
  // social term — this is what keeps sharded affinity utility near the
  // sequential solver's.
  const AffinityParams& affinity = options.gepc.local_search.affinity;
  if (options.gepc.refine_with_local_search && affinity.Armed()) {
    GEPC_TRACE_SPAN("shard.affinity_refine");
    GEPC_ASSIGN_OR_RETURN(
        const LocalSearchStats refine,
        RefinePlan(instance, &result.plan, options.gepc.local_search));
    result.local_search_stats.add_moves += refine.add_moves;
    result.local_search_stats.replace_moves += refine.replace_moves;
    result.local_search_stats.transfer_moves += refine.transfer_moves;
    result.local_search_stats.passes =
        std::max(result.local_search_stats.passes, refine.passes);
    result.local_search_stats.utility_gain += refine.utility_gain;
  }
  if (stats != nullptr) {
    stats->merge_flow_assigned = flow_assigned;
    stats->lower_bound_repair_added = repair_added;
    stats->merge_topup_added = boundary_topup.added;
    stats->merge_seconds = timer.ElapsedSeconds();
  }
  om.merge_ms->Observe(timer.ElapsedSeconds() * 1e3);

  result.total_utility = result.plan.TotalUtility(instance);
  result.affinity_utility =
      affinity.Armed() ? AffinityUtility(instance, result.plan, affinity)
                       : result.total_utility;
  for (int j = 0; j < m; ++j) {
    if (result.plan.attendance(j) < instance.event(j).lower_bound) {
      ++result.events_below_lower_bound;
    }
  }
  return result;
}

}  // namespace gepc
