#include "shard/voronoi.h"

#include <algorithm>

namespace gepc {

namespace {

/// Centroid of the user locations assigned to each site; a site with an
/// empty cell keeps its position. Sums run in user index order, so the
/// result is deterministic (and FP-exact under coordinate negation/swap).
std::vector<Point> CellCentroids(const Instance& instance,
                                 const std::vector<int>& user_site,
                                 const std::vector<Point>& sites) {
  std::vector<double> sum_x(sites.size(), 0.0);
  std::vector<double> sum_y(sites.size(), 0.0);
  std::vector<int64_t> count(sites.size(), 0);
  for (size_t i = 0; i < user_site.size(); ++i) {
    const size_t s = static_cast<size_t>(user_site[i]);
    const Point& p = instance.user(static_cast<UserId>(i)).location;
    sum_x[s] += p.x;
    sum_y[s] += p.y;
    ++count[s];
  }
  std::vector<Point> centroids(sites);
  for (size_t s = 0; s < sites.size(); ++s) {
    if (count[s] == 0) continue;
    centroids[s] = Point{sum_x[s] / static_cast<double>(count[s]),
                         sum_y[s] / static_cast<double>(count[s])};
  }
  return centroids;
}

}  // namespace

int NearestSite(const std::vector<Point>& sites, const Point& p) {
  int best = 0;
  double best_d2 = SquaredDistance(sites[0], p);
  for (size_t s = 1; s < sites.size(); ++s) {
    const double d2 = SquaredDistance(sites[s], p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(s);
    }
  }
  return best;
}

std::vector<Point> BisectionSeedSites(const Instance& instance,
                                      const ReachabilityFilter& filter,
                                      int num_shards) {
  const int k = std::max(1, num_shards);
  const ShardPartition cuts = PartitionInstance(instance, filter, k);

  std::vector<Point> seeds;
  std::vector<bool> seeded;
  seeds.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    const std::vector<EventId>& events =
        cuts.shard_events[static_cast<size_t>(s)];
    if (events.empty()) {
      seeds.push_back(Point{0.0, 0.0});
      seeded.push_back(false);
      continue;
    }
    double sum_x = 0.0, sum_y = 0.0;
    for (EventId j : events) {
      const Point& p = instance.event(j).location;
      sum_x += p.x;
      sum_y += p.y;
    }
    seeds.push_back(Point{sum_x / static_cast<double>(events.size()),
                          sum_y / static_cast<double>(events.size())});
    seeded.push_back(true);
  }

  // Shards the bisection left empty (fewer occupied cells than shards, or
  // no events at all): supplement with the user location farthest from the
  // sites chosen so far — deterministic farthest-point seeding, lowest user
  // index on ties. With no users either, the origin stands.
  for (int s = 0; s < k; ++s) {
    if (seeded[static_cast<size_t>(s)]) continue;
    if (instance.num_users() == 0) {
      seeded[static_cast<size_t>(s)] = true;
      continue;
    }
    int best_user = 0;
    double best_min_d2 = -1.0;
    for (int i = 0; i < instance.num_users(); ++i) {
      const Point& p = instance.user(i).location;
      double min_d2 = -1.0;
      for (int t = 0; t < k; ++t) {
        if (!seeded[static_cast<size_t>(t)]) continue;
        const double d2 = SquaredDistance(seeds[static_cast<size_t>(t)], p);
        if (min_d2 < 0.0 || d2 < min_d2) min_d2 = d2;
      }
      if (min_d2 < 0.0) min_d2 = 0.0;  // first site overall: any user works
      if (min_d2 > best_min_d2) {
        best_min_d2 = min_d2;
        best_user = i;
      }
    }
    seeds[static_cast<size_t>(s)] = instance.user(best_user).location;
    seeded[static_cast<size_t>(s)] = true;
  }
  return seeds;
}

VoronoiResult LloydUserSites(const Instance& instance,
                             const ReachabilityFilter& filter, int num_shards,
                             const VoronoiOptions& options) {
  const int k = std::max(1, num_shards);
  const int n = instance.num_users();

  VoronoiResult result;
  result.sites = (options.seed_sites.size() == static_cast<size_t>(k))
                     ? options.seed_sites
                     : BisectionSeedSites(instance, filter, k);
  result.user_site.assign(static_cast<size_t>(n), 0);

  const auto assign = [&]() {
    double cost = 0.0;
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      const Point& p = instance.user(i).location;
      const int s = NearestSite(result.sites, p);
      if (result.user_site[static_cast<size_t>(i)] != s) {
        result.user_site[static_cast<size_t>(i)] = s;
        changed = true;
      }
      cost += SquaredDistance(result.sites[static_cast<size_t>(s)], p);
    }
    result.cost_history.push_back(cost);
    return changed;
  };

  assign();
  for (int it = 0; it < std::max(0, options.max_iterations); ++it) {
    result.sites = CellCentroids(instance, result.user_site, result.sites);
    ++result.iterations;
    // A fixed point: the assignment that produced these centroids is still
    // nearest-site optimal, so further rounds change nothing.
    if (!assign()) break;
  }
  return result;
}

ShardPartition PartitionInstanceVoronoi(const Instance& instance,
                                        const ReachabilityFilter& filter,
                                        int num_shards,
                                        const VoronoiOptions& options,
                                        VoronoiResult* result_out) {
  VoronoiResult lloyd = LloydUserSites(instance, filter, num_shards, options);

  ShardPartition partition;
  partition.num_shards = std::max(1, num_shards);
  const int m = instance.num_events();
  partition.event_shard.assign(static_cast<size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    partition.event_shard[static_cast<size_t>(j)] =
        NearestSite(lloyd.sites, instance.event(j).location);
  }
  FinishPartitionFromEventShards(instance, filter, &partition);
  if (result_out != nullptr) *result_out = std::move(lloyd);
  return partition;
}

}  // namespace gepc
