#include "shard/partition.h"

#include <algorithm>
#include <cstdint>

namespace gepc {

namespace {

/// One occupied grid cell and the events inside it — the unit the
/// bisection moves between shards (events in one cell never split).
struct Cell {
  int cx = 0;
  int cy = 0;
  std::vector<EventId> events;
};

/// Assigns `cells[begin..end)` to shards [shard_base, shard_base + k) by
/// recursive bisection: split the wider axis of the cell-coordinate box at
/// the event-count-weighted median, handing the left part k/2 shards.
void Bisect(std::vector<Cell>* cells, size_t begin, size_t end,
            int shard_base, int k, std::vector<int>* event_shard) {
  if (k <= 1 || end - begin <= 1) {
    for (size_t c = begin; c < end; ++c) {
      for (EventId j : (*cells)[c].events) {
        (*event_shard)[static_cast<size_t>(j)] = shard_base;
      }
    }
    return;
  }
  int min_x = (*cells)[begin].cx, max_x = min_x;
  int min_y = (*cells)[begin].cy, max_y = min_y;
  int64_t total = 0;
  for (size_t c = begin; c < end; ++c) {
    min_x = std::min(min_x, (*cells)[c].cx);
    max_x = std::max(max_x, (*cells)[c].cx);
    min_y = std::min(min_y, (*cells)[c].cy);
    max_y = std::max(max_y, (*cells)[c].cy);
    total += static_cast<int64_t>((*cells)[c].events.size());
  }
  const bool split_x = (max_x - min_x) >= (max_y - min_y);
  std::sort(cells->begin() + static_cast<ptrdiff_t>(begin),
            cells->begin() + static_cast<ptrdiff_t>(end),
            [split_x](const Cell& a, const Cell& b) {
              if (split_x) {
                if (a.cx != b.cx) return a.cx < b.cx;
                return a.cy < b.cy;
              }
              if (a.cy != b.cy) return a.cy < b.cy;
              return a.cx < b.cx;
            });

  const int k_left = k / 2;
  // Smallest prefix whose weight reaches total * k_left / k, but always a
  // strict split so both recursions see at least one cell.
  int64_t prefix = 0;
  size_t mid = begin;
  for (size_t c = begin; c + 1 < end; ++c) {
    prefix += static_cast<int64_t>((*cells)[c].events.size());
    mid = c + 1;
    if (prefix * k >= total * k_left) break;
  }
  Bisect(cells, begin, mid, shard_base, k_left, event_shard);
  Bisect(cells, mid, end, shard_base + k_left, k - k_left, event_shard);
}

}  // namespace

void FinishPartitionFromEventShards(const Instance& instance,
                                    const ReachabilityFilter& filter,
                                    ShardPartition* partition) {
  const int n = instance.num_users();
  const int m = instance.num_events();
  const size_t k = static_cast<size_t>(partition->num_shards);
  partition->shard_events.assign(k, {});
  partition->shard_users.assign(k, {});
  partition->user_shard.assign(static_cast<size_t>(n), kBoundaryUser);
  partition->boundary_users.clear();
  for (int j = 0; j < m; ++j) {
    partition->shard_events[static_cast<size_t>(
        partition->event_shard[static_cast<size_t>(j)])]
        .push_back(j);
  }

  // Interior iff every budget-reachable event sits in one shard.
  for (int i = 0; i < n; ++i) {
    int home = kBoundaryUser;
    bool interior = true;
    for (EventId j : filter.AttendableEvents(i)) {
      const int s = partition->event_shard[static_cast<size_t>(j)];
      if (home == kBoundaryUser) {
        home = s;
      } else if (home != s) {
        interior = false;
        break;
      }
    }
    if (interior && home != kBoundaryUser) {
      partition->user_shard[static_cast<size_t>(i)] = home;
      partition->shard_users[static_cast<size_t>(home)].push_back(i);
    } else {
      partition->boundary_users.push_back(i);
    }
  }
}

ShardPartition PartitionInstance(const Instance& instance,
                                 const ReachabilityFilter& filter,
                                 int num_shards) {
  const int m = instance.num_events();
  ShardPartition partition;
  partition.num_shards = std::max(1, num_shards);
  partition.event_shard.assign(static_cast<size_t>(m), 0);

  // Bucket events by occupied grid cell (cell lists and event ids both
  // ascend, so the whole construction is order-deterministic).
  const GridIndex& grid = filter.grid();
  std::vector<Cell> cells;
  for (int cy = 0; cy < grid.cells_y(); ++cy) {
    for (int cx = 0; cx < grid.cells_x(); ++cx) {
      const std::vector<int>& members = grid.PointsInCell(cx, cy);
      if (members.empty()) continue;
      Cell cell;
      cell.cx = cx;
      cell.cy = cy;
      cell.events.assign(members.begin(), members.end());
      cells.push_back(std::move(cell));
    }
  }
  if (!cells.empty()) {
    Bisect(&cells, 0, cells.size(), 0, partition.num_shards,
           &partition.event_shard);
  }
  FinishPartitionFromEventShards(instance, filter, &partition);
  return partition;
}

}  // namespace gepc
