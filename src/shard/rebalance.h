#ifndef GEPC_SHARD_REBALANCE_H_
#define GEPC_SHARD_REBALANCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "geom/point.h"
#include "iep/planner.h"
#include "shard/partition.h"
#include "shard/voronoi.h"

namespace gepc {

/// What one ShardTracker::Rebalance call did.
struct RebalanceReport {
  /// Lloyd centroid-update rounds the warm-started run performed.
  int iterations = 0;
  /// Within-cell squared-distance cost at the first / last assignment pass.
  double cost_initial = 0.0;
  double cost_final = 0.0;
  /// Events whose shard changed relative to the previous partition.
  int events_moved = 0;
  /// Users whose interior/boundary classification or shard changed.
  int users_moved = 0;
  /// Load skew (ShardTracker::Skew) at the moment the rebalance ran.
  double skew_before = 0.0;
  /// Structural interior-user skew (max/mean shard population) after.
  double skew_after = 0.0;
};

/// Cumulative migration/rebalance accounting, for stats and tests.
struct ShardTrackerStats {
  uint64_t migrations = 0;         ///< ApplyMigration calls that changed state
  uint64_t events_moved = 0;       ///< events re-homed by migrations
  uint64_t users_reclassified = 0; ///< user classification changes (migrations)
  uint64_t full_rebuilds = 0;      ///< migrations degraded to a full rebuild
  uint64_t rebalances = 0;         ///< successful Rebalance calls
};

/// Maintains a live centroidal-Voronoi shard partition of a drifting
/// instance: per-op routing, per-shard load accounting with skew detection,
/// incremental boundary-user migration as IEP ops land, and warm-started
/// Lloyd rebalancing — all without re-running the full partitioner on every
/// op.
///
/// The governing invariant, enforced by churn_torture_test at every op
/// index: the incrementally maintained partition() always equals
/// RebuildFromSites(instance), a from-scratch reclassification against the
/// current sites. Migration therefore never changes *what* the partition is,
/// only how cheaply it is kept current.
///
/// The tracker deliberately holds no reference into the instance (service
/// rebuilds swap the planner, moving the instance); every method takes the
/// current instance as a parameter. Callers must pass instances that evolve
/// by exactly the AtomicOps handed to ApplyMigration. Not thread-safe: the
/// service confines it to the writer thread.
class ShardTracker {
 public:
  /// Cuts `instance` into `num_shards` (clamped to >= 1) centroidal-Voronoi
  /// shards, Lloyd-seeded from the recursive-bisection cuts.
  ShardTracker(const Instance& instance, int num_shards,
               const VoronoiOptions& options = {});

  int num_shards() const { return num_shards_; }
  const std::vector<Point>& sites() const { return sites_; }
  const ShardPartition& partition() const { return partition_; }
  const ShardTrackerStats& stats() const { return stats_; }

  /// Shards `op` touches under the current partition, ascending and unique.
  /// Event-bearing ops route to the event's shard (a new event to the
  /// nearest site); user ops route to the user's home shard. Empty means
  /// the op lands on boundary state and is global. Pure routing — never
  /// mutates the tracker.
  std::vector<int> RouteOp(const Instance& instance, const AtomicOp& op) const;

  /// Charges `elapsed_ms` of apply work to `shards` (split evenly; an empty
  /// list spreads the cost over every shard — global work).
  void RecordOpCost(const std::vector<int>& shards, double elapsed_ms);

  /// Load imbalance: max over shards of l_s / mean(l_s), where
  /// l_s = recorded ms + 0.001 * recorded ops. 0 when num_shards < 2 or no
  /// load has been recorded since the last rebalance.
  double Skew() const;

  /// Max/mean imbalance of `partition`'s interior-user populations (0 when
  /// fewer than 2 shards or no interior users) — the structural counterpart
  /// of the load skew, used for rebalance reporting and tests.
  static double StructuralSkew(const ShardPartition& partition);

  /// Incrementally folds an already-applied op into the partition. Only the
  /// ops that can change reachability or event homes do any work (budget
  /// change, event location change, new event); the rest return
  /// immediately. The affected-user set is computed from the op — both the
  /// old and the new geometry — with the exact budget predicate
  /// ReachabilityFilter uses, so reclassifying just those users reproduces
  /// a from-scratch rebuild bit for bit.
  ///
  /// Fault point `shard.migrate`: when armed and firing, the incremental
  /// path is abandoned for that op and the partition is rebuilt from the
  /// current sites instead (counted in stats().full_rebuilds) — degraded,
  /// never wrong. Always returns OK unless `op` references ids the tracker
  /// has never seen (kOutOfRange).
  Status ApplyMigration(const Instance& instance, const AtomicOp& op);

  /// Re-centers the sites with a Lloyd run warm-started from the current
  /// sites (or `options.seed_sites` when it matches the shard count),
  /// rebuilds the partition, and resets the load-accounting window.
  ///
  /// Fault point `shard.rebalance`: when armed and firing, returns the
  /// injected error and leaves sites, partition and load window untouched.
  Result<RebalanceReport> Rebalance(const Instance& instance,
                                    const VoronoiOptions& options = {});

  /// From-scratch reclassification of `instance` against the current sites
  /// — the reference the incremental path must match exactly. Exposed for
  /// the churn torture battery.
  ShardPartition RebuildFromSites(const Instance& instance) const;

 private:
  /// True iff user i's budget admits the round trip to an event with this
  /// location and fee — ReachabilityFilter::CanReach's predicate, verbatim,
  /// usable against a location the instance no longer holds.
  static bool CanReachLocation(const Instance& instance, UserId i,
                               const Point& location, double fee);

  /// Reclassifies `users` (ascending, unique) against the current
  /// event_shard, moving each between interior/boundary containers exactly
  /// as FinishPartitionFromEventShards would place them. Returns how many
  /// users actually changed classification.
  int ReclassifyUsers(const Instance& instance,
                      const std::vector<UserId>& users);

  /// Swaps in a partition rebuilt from the current sites and snapshots the
  /// event locations. The degraded migration path.
  void FullRebuild(const Instance& instance);

  int num_shards_ = 1;
  std::vector<Point> sites_;
  ShardPartition partition_;
  /// Event-location snapshot mirroring the instance — kLocationChanged
  /// migrations need the OLD location to find the users losing reach.
  std::vector<Point> event_locations_;

  // Load-accounting window (reset by Rebalance).
  std::vector<double> shard_ms_;
  std::vector<uint64_t> shard_ops_;

  ShardTrackerStats stats_;
};

}  // namespace gepc

#endif  // GEPC_SHARD_REBALANCE_H_
