#ifndef GEPC_SHARD_SHARDED_SOLVER_H_
#define GEPC_SHARD_SHARDED_SOLVER_H_

#include "common/result.h"
#include "core/instance.h"
#include "gepc/solver.h"
#include "shard/partition.h"
#include "shard/voronoi.h"

namespace gepc {

/// Options for the partition/solve/merge GEPC engine.
struct ShardedGepcOptions {
  /// Worker threads for the per-shard solves (clamped to >= 1). Thread
  /// count NEVER changes the result: shard s always draws its randomness
  /// from DeriveTaskSeed(gepc.greedy.seed, s).
  int threads = 1;
  /// Spatial shards to cut the instance into. shards <= 1 bypasses the
  /// partitioner entirely and runs the sequential SolveGepc, so the result
  /// is byte-identical to the sequential solver.
  int shards = 1;
  /// Per-shard two-step solver configuration (algorithm, top-up, ...).
  /// greedy.seed acts as the master seed of the per-shard streams.
  GepcOptions gepc;
  /// Grid cell edge for the spatial index; <= 0 auto-sizes.
  double cell_size = 0.0;
  /// How to cut the instance: recursive bisection (the static default) or
  /// centroidal-Voronoi cells (the rebalancer's partitioner — pass the
  /// tracker's sites via voronoi.seed_sites to solve on a live cut).
  ShardPartitioner partitioner = ShardPartitioner::kBisection;
  /// Lloyd tuning when partitioner == kVoronoi (ignored otherwise).
  VoronoiOptions voronoi;
};

/// What the partition/solve/merge pipeline did, for benches and tests.
struct ShardedGepcStats {
  int shards = 1;
  int interior_users = 0;
  int boundary_users = 0;
  /// Boundary attendances placed by the merge's min-cost-flow pass.
  int merge_flow_assigned = 0;
  /// Attendances added by the post-merge lower-bound repair pass.
  int lower_bound_repair_added = 0;
  /// Boundary attendances added by the closing top-up pass.
  int merge_topup_added = 0;
  /// Shards whose configured solve failed (error or injected fault) and
  /// were re-solved with the sequential greedy fallback. The merge still
  /// produces a feasible plan; utility degrades gracefully instead of the
  /// whole solve erroring out.
  int degraded_shards = 0;
  double partition_seconds = 0.0;
  double solve_seconds = 0.0;
  double merge_seconds = 0.0;
};

/// Solves GEPC by spatial decomposition: partition the instance into
/// `shards` sub-instances along grid cells (PartitionInstance), solve each
/// shard's GEPC independently on a thread pool, then merge:
///
///   1. splice the shard plans together (disjoint users/events, so the
///      union inherits feasibility),
///   2. fill lower-bound deficits with one min-cost max-flow from the
///      boundary users to the events still below xi_j (unit user arcs,
///      deficit-bounded event arcs, costs -mu — the most deficit units
///      filled, at the highest utility; augmentations are bounded by the
///      total deficit, not the boundary population),
///   3. repair events still below xi_j by offering them to every feasible
///      user in decreasing-utility order (the Conflict Adjusting
///      reassignment loop of Algorithm 1, run on the merged plan),
///   4. top up the boundary users' remaining capacity with the standard
///      utility-ordered pass (TopUpUsers).
///
/// The returned plan always satisfies constraints 1-3 (conflicts, budgets,
/// upper bounds); lower bounds are best-effort with the shortfall reported,
/// exactly like the sequential SolveGepc. Deterministic for a fixed
/// (instance, options.shards, options.gepc) regardless of options.threads.
///
/// Failure handling: a shard whose solve errors — including the injected
/// `shard.solve` fault — is re-solved sequentially with the greedy
/// algorithm (same derived seed), so one bad shard degrades utility instead
/// of failing the solve. `shard.slow` (delay-only) simulates a stalled
/// shard without changing the result.
///
/// Affinity: when options.gepc.local_search.affinity is armed (and
/// refine_with_local_search is on), per-shard solves run on plain mu —
/// shard-local user ids cannot index the global friendship graph — and the
/// merge finishes with one global affinity-aware RefinePlan pass, so the
/// reported affinity_utility stays close to the sequential solver's.
Result<GepcResult> SolveSharded(const Instance& instance,
                                const ShardedGepcOptions& options,
                                ShardedGepcStats* stats = nullptr);

}  // namespace gepc

#endif  // GEPC_SHARD_SHARDED_SOLVER_H_
