#include "shard/rebalance.h"

#include <algorithm>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "spatial/reachability.h"

namespace gepc {

namespace {

struct TrackerMetrics {
  std::shared_ptr<obs::Gauge> skew_milli;
  std::shared_ptr<obs::Gauge> boundary_users;
  std::shared_ptr<obs::Counter> migrations;
  std::shared_ptr<obs::Counter> migrated_users;
  std::shared_ptr<obs::Counter> migrated_events;
  std::shared_ptr<obs::Counter> full_rebuilds;
  std::shared_ptr<obs::Counter> rebalances;
  std::shared_ptr<obs::Histogram> rebalance_ms;

  static const TrackerMetrics& Get() {
    static const TrackerMetrics m = [] {
      auto& reg = obs::Registry::Global();
      TrackerMetrics t;
      t.skew_milli = reg.GetGauge(
          "gepc_shard_skew_milli",
          "Per-shard load skew (max/mean, x1000) of the live tracker");
      t.boundary_users = reg.GetGauge(
          "gepc_shard_boundary_users",
          "Boundary users in the live tracked partition");
      t.migrations = reg.GetCounter(
          "gepc_shard_migrations_total",
          "Incremental shard migrations applied (ops that changed state)");
      t.migrated_users = reg.GetCounter(
          "gepc_shard_migrated_users_total",
          "Users whose shard classification changed during migrations");
      t.migrated_events = reg.GetCounter(
          "gepc_shard_migrated_events_total",
          "Events re-homed to another shard during migrations");
      t.full_rebuilds = reg.GetCounter(
          "gepc_shard_full_rebuild_total",
          "Migrations degraded to a full rebuild (shard.migrate fault)");
      t.rebalances = reg.GetCounter("gepc_shard_rebalance_total",
                                    "Successful Lloyd rebalances");
      t.rebalance_ms = reg.GetHistogram("gepc_shard_rebalance_ms",
                                        "ShardTracker::Rebalance latency");
      return t;
    }();
    return m;
  }
};

/// Removes `id` from the sorted vector (no-op when absent).
template <typename T>
void SortedErase(std::vector<T>* v, T id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it != v->end() && *it == id) v->erase(it);
}

/// Inserts `id` into the sorted vector (no-op when present).
template <typename T>
void SortedInsert(std::vector<T>* v, T id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it == v->end() || *it != id) v->insert(it, id);
}

}  // namespace

ShardTracker::ShardTracker(const Instance& instance, int num_shards,
                           const VoronoiOptions& options)
    : num_shards_(std::max(1, num_shards)) {
  const ReachabilityFilter filter(instance);
  VoronoiResult lloyd;
  partition_ =
      PartitionInstanceVoronoi(instance, filter, num_shards_, options, &lloyd);
  sites_ = std::move(lloyd.sites);
  event_locations_.reserve(static_cast<size_t>(instance.num_events()));
  for (const Event& e : instance.events()) event_locations_.push_back(e.location);
  shard_ms_.assign(static_cast<size_t>(num_shards_), 0.0);
  shard_ops_.assign(static_cast<size_t>(num_shards_), 0);
  TrackerMetrics::Get().boundary_users->Set(
      static_cast<int64_t>(partition_.boundary_users.size()));
}

std::vector<int> ShardTracker::RouteOp(const Instance& instance,
                                       const AtomicOp& op) const {
  std::vector<int> shards;
  const auto add = [&shards](int s) {
    if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
      shards.push_back(s);
    }
  };
  if (op.kind == AtomicOp::Kind::kNewEvent) {
    add(NearestSite(sites_, op.new_event.location));
  } else if (op.event != kInvalidEvent &&
             static_cast<size_t>(op.event) < partition_.event_shard.size()) {
    add(partition_.event_shard[static_cast<size_t>(op.event)]);
  }
  if (op.user != kInvalidUser && op.user < instance.num_users() &&
      static_cast<size_t>(op.user) < partition_.user_shard.size()) {
    const int home = partition_.user_shard[static_cast<size_t>(op.user)];
    if (home != kBoundaryUser) add(home);
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

void ShardTracker::RecordOpCost(const std::vector<int>& shards,
                                double elapsed_ms) {
  if (shards.empty()) {
    // Boundary / global work: everyone pays an equal slice.
    const double slice = elapsed_ms / static_cast<double>(num_shards_);
    for (int s = 0; s < num_shards_; ++s) {
      shard_ms_[static_cast<size_t>(s)] += slice;
      ++shard_ops_[static_cast<size_t>(s)];
    }
  } else {
    const double slice = elapsed_ms / static_cast<double>(shards.size());
    for (int s : shards) {
      if (s < 0 || s >= num_shards_) continue;
      shard_ms_[static_cast<size_t>(s)] += slice;
      ++shard_ops_[static_cast<size_t>(s)];
    }
  }
  TrackerMetrics::Get().skew_milli->Set(
      static_cast<int64_t>(Skew() * 1000.0));
}

double ShardTracker::Skew() const {
  if (num_shards_ < 2) return 0.0;
  double total = 0.0, max_load = 0.0;
  for (int s = 0; s < num_shards_; ++s) {
    // Op count keeps the signal alive when individual applies are too fast
    // for the ms clock to resolve.
    const double load = shard_ms_[static_cast<size_t>(s)] +
                        0.001 * static_cast<double>(
                                    shard_ops_[static_cast<size_t>(s)]);
    total += load;
    max_load = std::max(max_load, load);
  }
  if (total <= 0.0) return 0.0;
  return max_load / (total / static_cast<double>(num_shards_));
}

double ShardTracker::StructuralSkew(const ShardPartition& partition) {
  if (partition.num_shards < 2) return 0.0;
  size_t total = 0, max_pop = 0;
  for (const auto& users : partition.shard_users) {
    total += users.size();
    max_pop = std::max(max_pop, users.size());
  }
  if (total == 0) return 0.0;
  return static_cast<double>(max_pop) /
         (static_cast<double>(total) / partition.num_shards);
}

bool ShardTracker::CanReachLocation(const Instance& instance, UserId i,
                                    const Point& location, double fee) {
  return 2.0 * Distance(instance.user(i).location, location) + fee <=
         instance.user(i).budget + ReachabilityFilter::kBudgetEpsilon;
}

int ShardTracker::ReclassifyUsers(const Instance& instance,
                                  const std::vector<UserId>& users) {
  if (users.empty()) return 0;
  const ReachabilityFilter filter(instance);
  int changed = 0;
  for (UserId i : users) {
    // The interior test of FinishPartitionFromEventShards, for one user.
    int home = kBoundaryUser;
    bool interior = true;
    for (EventId j : filter.AttendableEvents(i)) {
      const int s = partition_.event_shard[static_cast<size_t>(j)];
      if (home == kBoundaryUser) {
        home = s;
      } else if (home != s) {
        interior = false;
        break;
      }
    }
    const int new_shard = (interior && home != kBoundaryUser) ? home
                                                              : kBoundaryUser;
    const int old_shard = partition_.user_shard[static_cast<size_t>(i)];
    if (new_shard == old_shard) continue;
    if (old_shard == kBoundaryUser) {
      SortedErase(&partition_.boundary_users, i);
    } else {
      SortedErase(&partition_.shard_users[static_cast<size_t>(old_shard)], i);
    }
    if (new_shard == kBoundaryUser) {
      SortedInsert(&partition_.boundary_users, i);
    } else {
      SortedInsert(&partition_.shard_users[static_cast<size_t>(new_shard)], i);
    }
    partition_.user_shard[static_cast<size_t>(i)] = new_shard;
    ++changed;
  }
  return changed;
}

void ShardTracker::FullRebuild(const Instance& instance) {
  partition_ = RebuildFromSites(instance);
  event_locations_.clear();
  event_locations_.reserve(static_cast<size_t>(instance.num_events()));
  for (const Event& e : instance.events()) event_locations_.push_back(e.location);
}

Status ShardTracker::ApplyMigration(const Instance& instance,
                                    const AtomicOp& op) {
  const TrackerMetrics& metrics = TrackerMetrics::Get();
  switch (op.kind) {
    case AtomicOp::Kind::kUtilityChanged:
    case AtomicOp::Kind::kLowerBoundChanged:
    case AtomicOp::Kind::kUpperBoundChanged:
    case AtomicOp::Kind::kTimeChanged:
      // Neither reachability nor event homes depend on these.
      return Status::OK();
    default:
      break;
  }

  if (!fault::Inject("shard.migrate").ok()) {
    // Degraded, never wrong: abandon the incremental path for this op and
    // reclassify everything from the current sites.
    FullRebuild(instance);
    ++stats_.full_rebuilds;
    ++stats_.migrations;
    metrics.full_rebuilds->Increment();
    metrics.migrations->Increment();
    metrics.boundary_users->Set(
        static_cast<int64_t>(partition_.boundary_users.size()));
    return Status::OK();
  }

  int users_changed = 0;
  switch (op.kind) {
    case AtomicOp::Kind::kBudgetChanged: {
      if (op.user < 0 || op.user >= instance.num_users()) {
        return Status::OutOfRange("budget migration: unknown user");
      }
      // Only this user's attendable set moved; event homes are untouched.
      users_changed = ReclassifyUsers(instance, {op.user});
      break;
    }
    case AtomicOp::Kind::kLocationChanged: {
      if (op.event < 0 ||
          static_cast<size_t>(op.event) >= event_locations_.size() ||
          op.event >= instance.num_events()) {
        return Status::OutOfRange("location migration: unknown event");
      }
      const Point old_loc = event_locations_[static_cast<size_t>(op.event)];
      const Point new_loc = instance.event(op.event).location;
      const double fee = instance.event(op.event).fee;
      const int new_shard = NearestSite(sites_, new_loc);
      const int old_shard =
          partition_.event_shard[static_cast<size_t>(op.event)];
      if (new_shard != old_shard) {
        SortedErase(&partition_.shard_events[static_cast<size_t>(old_shard)],
                    op.event);
        SortedInsert(&partition_.shard_events[static_cast<size_t>(new_shard)],
                     op.event);
        partition_.event_shard[static_cast<size_t>(op.event)] = new_shard;
        ++stats_.events_moved;
        metrics.migrated_events->Increment();
      }
      event_locations_[static_cast<size_t>(op.event)] = new_loc;
      // A user's classification can only change if the moved event entered
      // or left their reach, or sat in their reach while changing shard —
      // all covered by reach at the old OR the new location.
      std::vector<UserId> affected;
      for (int i = 0; i < instance.num_users(); ++i) {
        if (CanReachLocation(instance, i, old_loc, fee) ||
            CanReachLocation(instance, i, new_loc, fee)) {
          affected.push_back(i);
        }
      }
      users_changed = ReclassifyUsers(instance, affected);
      break;
    }
    case AtomicOp::Kind::kNewEvent: {
      const EventId id = instance.num_events() - 1;
      if (id < 0 ||
          event_locations_.size() + 1 !=
              static_cast<size_t>(instance.num_events())) {
        return Status::OutOfRange("new-event migration: snapshot out of sync");
      }
      const Point loc = instance.event(id).location;
      const double fee = instance.event(id).fee;
      const int shard = NearestSite(sites_, loc);
      partition_.event_shard.push_back(shard);
      // Highest id so far: push_back keeps the shard list ascending.
      partition_.shard_events[static_cast<size_t>(shard)].push_back(id);
      event_locations_.push_back(loc);
      std::vector<UserId> affected;
      for (int i = 0; i < instance.num_users(); ++i) {
        if (CanReachLocation(instance, i, loc, fee)) affected.push_back(i);
      }
      users_changed = ReclassifyUsers(instance, affected);
      break;
    }
    default:
      return Status::OK();
  }

  ++stats_.migrations;
  stats_.users_reclassified += static_cast<uint64_t>(users_changed);
  metrics.migrations->Increment();
  metrics.migrated_users->Increment(static_cast<uint64_t>(users_changed));
  metrics.boundary_users->Set(
      static_cast<int64_t>(partition_.boundary_users.size()));
  return Status::OK();
}

Result<RebalanceReport> ShardTracker::Rebalance(const Instance& instance,
                                                const VoronoiOptions& options) {
  const TrackerMetrics& metrics = TrackerMetrics::Get();
  obs::ScopedTimerMs timer(metrics.rebalance_ms.get());
  GEPC_RETURN_IF_ERROR(fault::Inject("shard.rebalance"));

  RebalanceReport report;
  report.skew_before = Skew();

  VoronoiOptions opts = options;
  if (opts.seed_sites.size() != static_cast<size_t>(num_shards_)) {
    opts.seed_sites = sites_;  // warm start from the current sites
  }
  const ReachabilityFilter filter(instance);
  VoronoiResult lloyd;
  ShardPartition fresh = PartitionInstanceVoronoi(instance, filter,
                                                  num_shards_, opts, &lloyd);
  report.iterations = lloyd.iterations;
  report.cost_initial = lloyd.cost_history.front();
  report.cost_final = lloyd.cost_history.back();
  for (size_t j = 0; j < fresh.event_shard.size(); ++j) {
    if (j >= partition_.event_shard.size() ||
        fresh.event_shard[j] != partition_.event_shard[j]) {
      ++report.events_moved;
    }
  }
  for (size_t i = 0; i < fresh.user_shard.size(); ++i) {
    if (i >= partition_.user_shard.size() ||
        fresh.user_shard[i] != partition_.user_shard[i]) {
      ++report.users_moved;
    }
  }
  report.skew_after = StructuralSkew(fresh);

  sites_ = std::move(lloyd.sites);
  partition_ = std::move(fresh);
  event_locations_.clear();
  event_locations_.reserve(static_cast<size_t>(instance.num_events()));
  for (const Event& e : instance.events()) event_locations_.push_back(e.location);
  // Fresh skew window: the old load profile described the old cut.
  shard_ms_.assign(static_cast<size_t>(num_shards_), 0.0);
  shard_ops_.assign(static_cast<size_t>(num_shards_), 0);

  ++stats_.rebalances;
  metrics.rebalances->Increment();
  metrics.skew_milli->Set(0);
  metrics.boundary_users->Set(
      static_cast<int64_t>(partition_.boundary_users.size()));
  return report;
}

ShardPartition ShardTracker::RebuildFromSites(const Instance& instance) const {
  const ReachabilityFilter filter(instance);
  ShardPartition partition;
  partition.num_shards = num_shards_;
  const int m = instance.num_events();
  partition.event_shard.assign(static_cast<size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    partition.event_shard[static_cast<size_t>(j)] =
        NearestSite(sites_, instance.event(j).location);
  }
  FinishPartitionFromEventShards(instance, filter, &partition);
  return partition;
}

}  // namespace gepc
