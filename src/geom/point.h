#ifndef GEPC_GEOM_POINT_H_
#define GEPC_GEOM_POINT_H_

#include <cmath>
#include <ostream>

namespace gepc {

/// A location on the planning plane. The paper places users and events on a
/// 2-D grid and measures travel cost as Euclidean distance (Sec. II).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt when only comparing).
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace gepc

#endif  // GEPC_GEOM_POINT_H_
