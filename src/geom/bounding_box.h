#ifndef GEPC_GEOM_BOUNDING_BOX_H_
#define GEPC_GEOM_BOUNDING_BOX_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace gepc {

/// Axis-aligned rectangle; used by the data generator to model a city's
/// extent and by tests to assert all sampled locations stay in range.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  /// Rectangle spanning [0, width] x [0, height].
  static BoundingBox FromExtent(double width, double height) {
    return BoundingBox{0.0, 0.0, width, height};
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// Grows the box (if needed) to include `p`.
  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }

  /// Length of the diagonal; an upper bound on any point-to-point distance
  /// inside the box, used to scale travel budgets.
  double Diagonal() const {
    return Distance({min_x, min_y}, {max_x, max_y});
  }

  /// Clamps `p` into the box.
  Point Clamp(const Point& p) const {
    return Point{std::clamp(p.x, min_x, max_x), std::clamp(p.y, min_y, max_y)};
  }

  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }
};

}  // namespace gepc

#endif  // GEPC_GEOM_BOUNDING_BOX_H_
