#ifndef GEPC_DATA_IO_H_
#define GEPC_DATA_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"

namespace gepc {

/// Plain-text instance format ("GEPC1"), line-oriented and diff-friendly:
///
///   GEPC1 <num_users> <num_events>
///   u <x> <y> <budget>                 (one per user)
///   e <x> <y> <xi> <eta> <start> <end> [fee] (one per event)
///   m <user> <event> <utility>         (sparse non-zero utilities)
///
/// Lines starting with '#' are comments. Used by the examples to persist
/// generated datasets and by users to feed their own data in.
Status SaveInstance(const Instance& instance, std::ostream& out);
Status SaveInstanceToFile(const Instance& instance, const std::string& path);

/// Parses the format above. Returns kInvalidArgument with a line number on
/// malformed input, kNotFound if the file cannot be opened.
Result<Instance> LoadInstance(std::istream& in);
Result<Instance> LoadInstanceFromFile(const std::string& path);

/// Plan format ("GPLN1"), companion to the instance format:
///
///   GPLN1 <num_users> <num_events>
///   p <user> <event>                   (one attendance per line)
///
/// Lines starting with '#' are comments.
Status SavePlan(const Plan& plan, std::ostream& out);
Status SavePlanToFile(const Plan& plan, const std::string& path);

/// Parses the plan format. Dimensions must match the header; attendance
/// rows must be in range and duplicate-free.
Result<Plan> LoadPlan(std::istream& in);
Result<Plan> LoadPlanFromFile(const std::string& path);

}  // namespace gepc

#endif  // GEPC_DATA_IO_H_
