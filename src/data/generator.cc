#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/tags.h"
#include "geom/bounding_box.h"

namespace gepc {

namespace {

/// Samples a location around one of `hotspots`, clamped into `box`.
Point SampleLocation(const std::vector<Point>& hotspots, double stddev,
                     const BoundingBox& box, Rng* rng) {
  const Point& center =
      hotspots[static_cast<size_t>(rng->UniformUint64(hotspots.size()))];
  Point p{center.x + rng->Gaussian(0.0, stddev),
          center.y + rng->Gaussian(0.0, stddev)};
  return box.Clamp(p);
}

/// Assigns holding times so that exactly the events inside clusters of size
/// >= 2 conflict (pairwise, within their cluster) and nothing else does.
/// Clusters of size 1 are the conflict-free events. Time is in abstract
/// units; the horizon stretches so every window is at least 20 units wide.
void AssignTimes(const std::vector<std::vector<int>>& clusters,
                 std::vector<Event>* events, Rng* rng) {
  const int num_windows = static_cast<int>(clusters.size());
  if (num_windows == 0) return;
  const int window_width =
      std::max(20, static_cast<int>((22 - 8) * 60 / num_windows));
  for (int w = 0; w < num_windows; ++w) {
    const Minutes ws = static_cast<Minutes>(w) * window_width;
    const Minutes we = ws + window_width;
    const auto& cluster = clusters[static_cast<size_t>(w)];
    if (cluster.size() == 1) {
      // Single event strictly inside the window (1-unit margins keep it
      // strictly separated from neighboring windows' events).
      const Minutes lo = ws + 1;
      const Minutes hi = we - 2;
      const Minutes start =
          static_cast<Minutes>(rng->UniformInt(lo, hi - 1));
      const Minutes end = static_cast<Minutes>(rng->UniformInt(start + 1, hi));
      (*events)[static_cast<size_t>(cluster[0])].time = Interval{start, end};
    } else {
      // All members straddle the window midpoint => pairwise conflicts.
      const Minutes mid = ws + window_width / 2;
      for (int id : cluster) {
        const Minutes start =
            static_cast<Minutes>(rng->UniformInt(ws + 1, mid - 1));
        const Minutes end =
            static_cast<Minutes>(rng->UniformInt(mid, we - 2));
        (*events)[static_cast<size_t>(id)].time = Interval{start, end};
      }
    }
  }
}

/// Number of users who could attend event j on its own: positive utility
/// and round trip within budget.
int ReachableUsers(const Instance& instance, EventId j) {
  int count = 0;
  for (int i = 0; i < instance.num_users(); ++i) {
    if (instance.utility(i, j) <= 0.0) continue;
    if (2.0 * instance.UserEventDistance(i, j) + instance.event(j).fee <=
        instance.user(i).budget) {
      ++count;
    }
  }
  return count;
}

}  // namespace

Result<Instance> GenerateInstance(const GeneratorConfig& config) {
  if (config.num_users <= 0 || config.num_events <= 0) {
    return Status::InvalidArgument("need at least one user and one event");
  }
  if (config.conflict_ratio < 0.0 || config.conflict_ratio > 1.0) {
    return Status::InvalidArgument("conflict_ratio must be in [0, 1]");
  }
  if (config.max_conflict_cluster < 2) {
    return Status::InvalidArgument("max_conflict_cluster must be >= 2");
  }
  if (config.mean_eta < 1.0 || config.mean_xi < 0.0 ||
      config.mean_xi > config.mean_eta) {
    return Status::InvalidArgument(
        "participation bound means need 1 <= mean_eta and 0 <= mean_xi <= mean_eta");
  }
  if (config.budget_min_fraction < 0.0 ||
      config.budget_min_fraction > config.budget_max_fraction) {
    return Status::InvalidArgument("bad budget fractions");
  }
  if (config.mean_fee < 0.0) {
    return Status::InvalidArgument("mean_fee must be non-negative");
  }

  Rng rng(config.seed);
  const BoundingBox box =
      BoundingBox::FromExtent(config.city_width, config.city_height);

  std::vector<Point> hotspots;
  for (int h = 0; h < std::max(1, config.num_hotspots); ++h) {
    hotspots.push_back(Point{rng.UniformDouble(0.15, 0.85) * box.Width(),
                             rng.UniformDouble(0.15, 0.85) * box.Height()});
  }

  // ---- Users: location, budget, tags ---------------------------------
  const double diagonal = box.Diagonal();
  std::vector<User> users;
  std::vector<TagVector> user_tags;
  users.reserve(static_cast<size_t>(config.num_users));
  for (int i = 0; i < config.num_users; ++i) {
    User u;
    u.location = SampleLocation(hotspots, config.hotspot_stddev, box, &rng);
    u.budget = rng.UniformDouble(config.budget_min_fraction,
                                 config.budget_max_fraction) *
               diagonal;
    users.push_back(u);
    user_tags.push_back(TagVector::Sample(
        config.vocabulary_size,
        static_cast<int>(rng.UniformInt(config.min_tags_per_user,
                                        config.max_tags_per_user)),
        &rng));
  }

  // ---- Groups and events ----------------------------------------------
  const int num_groups = config.num_groups > 0
                             ? config.num_groups
                             : std::max(4, config.num_events / 4);
  std::vector<TagVector> group_tags;
  group_tags.reserve(static_cast<size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    group_tags.push_back(TagVector::Sample(
        config.vocabulary_size,
        static_cast<int>(rng.UniformInt(config.min_tags_per_group,
                                        config.max_tags_per_group)),
        &rng));
  }

  std::vector<Event> events(static_cast<size_t>(config.num_events));
  std::vector<int> group_of_event(static_cast<size_t>(config.num_events));
  for (int j = 0; j < config.num_events; ++j) {
    Event& e = events[static_cast<size_t>(j)];
    e.location = SampleLocation(hotspots, config.hotspot_stddev, box, &rng);
    const double eta_lo = config.mean_eta * (1.0 - config.eta_spread);
    const double eta_hi = config.mean_eta * (1.0 + config.eta_spread);
    e.upper_bound = std::clamp(
        static_cast<int>(std::lround(rng.UniformDouble(eta_lo, eta_hi))), 1,
        config.num_users);
    const int xi_raw =
        static_cast<int>(std::lround(rng.UniformDouble(0.0, 2.0 * config.mean_xi)));
    e.lower_bound = std::clamp(xi_raw, 0, e.upper_bound);
    if (config.mean_fee > 0.0) {
      e.fee = rng.UniformDouble(0.0, 2.0 * config.mean_fee);
    }
    group_of_event[static_cast<size_t>(j)] =
        static_cast<int>(rng.UniformUint64(static_cast<uint64_t>(num_groups)));
  }

  // ---- Holding times with the target conflict ratio --------------------
  std::vector<int> order(static_cast<size_t>(config.num_events));
  for (int j = 0; j < config.num_events; ++j) order[static_cast<size_t>(j)] = j;
  rng.Shuffle(&order);
  int num_conflicting =
      static_cast<int>(std::lround(config.conflict_ratio * config.num_events));
  if (num_conflicting == 1) num_conflicting = config.num_events >= 2 ? 2 : 0;
  num_conflicting = std::min(num_conflicting, config.num_events);

  std::vector<std::vector<int>> clusters;
  size_t cursor = 0;
  while (static_cast<int>(cursor) < num_conflicting) {
    const int remaining = num_conflicting - static_cast<int>(cursor);
    int size = static_cast<int>(
        rng.UniformInt(2, std::max(2, config.max_conflict_cluster)));
    size = std::min(size, remaining);
    if (size == 1) size = 2;  // merge a trailing singleton into a pair
    size = std::min(size, config.num_events - static_cast<int>(cursor));
    std::vector<int> cluster;
    for (int k = 0; k < size; ++k) cluster.push_back(order[cursor++]);
    clusters.push_back(std::move(cluster));
  }
  while (cursor < order.size()) clusters.push_back({order[cursor++]});
  rng.Shuffle(&clusters);
  AssignTimes(clusters, &events, &rng);

  // ---- Utilities from tag overlap ---------------------------------------
  Instance instance(std::move(users), std::move(events));
  for (int i = 0; i < instance.num_users(); ++i) {
    for (int j = 0; j < instance.num_events(); ++j) {
      const TagVector& gt =
          group_tags[static_cast<size_t>(group_of_event[static_cast<size_t>(j)])];
      const double mu = config.utility_model.Score(
          user_tags[static_cast<size_t>(i)], gt, instance.user(i).location,
          instance.event(j).location);
      if (mu > 0.0) instance.set_utility(i, j, mu);
    }
  }

  // ---- Feasibility cap on lower bounds ----------------------------------
  if (config.cap_xi_by_reachability) {
    for (int j = 0; j < instance.num_events(); ++j) {
      const int reachable = ReachableUsers(instance, j);
      const int cap = static_cast<int>(config.reachability_cap_fraction *
                                       static_cast<double>(reachable));
      const Event& e = instance.event(j);
      if (e.lower_bound > cap) {
        GEPC_RETURN_IF_ERROR(
            instance.set_event_bounds(j, cap, e.upper_bound));
      }
    }
  }

  GEPC_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

Instance CutOut(const Instance& base, int num_users, int num_events,
                Rng* rng) {
  num_users = std::clamp(num_users, 1, base.num_users());
  num_events = std::clamp(num_events, 1, base.num_events());

  std::vector<int> user_ids(static_cast<size_t>(base.num_users()));
  std::vector<int> event_ids(static_cast<size_t>(base.num_events()));
  for (int i = 0; i < base.num_users(); ++i) user_ids[static_cast<size_t>(i)] = i;
  for (int j = 0; j < base.num_events(); ++j) {
    event_ids[static_cast<size_t>(j)] = j;
  }
  rng->Shuffle(&user_ids);
  rng->Shuffle(&event_ids);
  user_ids.resize(static_cast<size_t>(num_users));
  event_ids.resize(static_cast<size_t>(num_events));
  std::sort(user_ids.begin(), user_ids.end());
  std::sort(event_ids.begin(), event_ids.end());

  std::vector<User> users;
  users.reserve(user_ids.size());
  for (int id : user_ids) users.push_back(base.user(id));
  std::vector<Event> events;
  events.reserve(event_ids.size());
  for (int id : event_ids) events.push_back(base.event(id));

  Instance cut(std::move(users), std::move(events));
  for (int i = 0; i < num_users; ++i) {
    for (int j = 0; j < num_events; ++j) {
      cut.set_utility(i, j,
                      base.utility(user_ids[static_cast<size_t>(i)],
                                   event_ids[static_cast<size_t>(j)]));
    }
  }

  // Re-cap lower bounds: the subset has fewer reachable users per event.
  for (int j = 0; j < num_events; ++j) {
    const int reachable = ReachableUsers(cut, j);
    const Event& e = cut.event(j);
    const int cap = std::min(e.lower_bound, reachable / 2);
    if (cap < e.lower_bound) {
      (void)cut.set_event_bounds(j, cap, e.upper_bound);
    }
  }
  return cut;
}

}  // namespace gepc
