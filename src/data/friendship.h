#ifndef GEPC_DATA_FRIENDSHIP_H_
#define GEPC_DATA_FRIENDSHIP_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/types.h"
#include "core/user.h"

namespace gepc {

/// An undirected user-user friendship graph — the social ties of the
/// Scale-Adaptive Group Optimization line of related work. The affinity
/// utility extension (src/gepc/affinity.h) scores a plan with
/// mu'(u, e) = mu(u, e) + lambda * |friends of u attending e|, which makes
/// utility assignment-dependent.
///
/// Adjacency lists are kept sorted so membership tests are O(log degree)
/// and iteration order is deterministic.
class FriendshipGraph {
 public:
  FriendshipGraph() = default;
  explicit FriendshipGraph(int num_users)
      : adjacency_(static_cast<size_t>(num_users)) {}

  int num_users() const { return static_cast<int>(adjacency_.size()); }
  int64_t num_edges() const { return edges_; }

  /// Inserts the undirected edge {a, b}. Self-loops and duplicates are
  /// ignored. Returns true iff the edge was new.
  bool AddEdge(UserId a, UserId b);

  bool AreFriends(UserId a, UserId b) const;

  /// u's friends in increasing id order.
  const std::vector<UserId>& friends_of(UserId u) const {
    return adjacency_[static_cast<size_t>(u)];
  }

  int degree(UserId u) const {
    return static_cast<int>(adjacency_[static_cast<size_t>(u)].size());
  }

  /// The graph under the user relabelling old id -> new_of_old[old id]
  /// (a permutation). Used by the metamorphic tests: permuting users and
  /// relabelling the graph consistently must not change plan scores.
  FriendshipGraph Relabeled(const std::vector<UserId>& new_of_old) const;

 private:
  std::vector<std::vector<UserId>> adjacency_;
  int64_t edges_ = 0;
};

/// Seeded friendship generation. Edges are drawn with a locality bias:
/// most friendships form between users who live near each other (the same
/// hotspot clustering the instance generator uses), with a uniform
/// long-range remainder. Deterministic per (users, config).
struct FriendshipConfig {
  /// Target mean degree (edges ~= num_users * mean_degree / 2).
  double mean_degree = 4.0;
  /// Fraction of edges drawn with the distance-biased kernel; the rest are
  /// uniform long-range ties.
  double locality_bias = 0.7;
  /// Gaussian radius of the distance kernel exp(-d^2 / (2 r^2)).
  double locality_radius = 15.0;
  uint64_t seed = 7;
};

/// Generates a friendship graph over `users`. Only reads user locations,
/// so any population (an Instance's users() or a ScheduleProblem's) works.
FriendshipGraph GenerateFriendshipGraph(const std::vector<User>& users,
                                        const FriendshipConfig& config);

}  // namespace gepc

#endif  // GEPC_DATA_FRIENDSHIP_H_
