#include "data/io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace gepc {

namespace {

Status ParseError(int line, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " + what);
}

}  // namespace

Status SaveInstance(const Instance& instance, std::ostream& out) {
  out << "GEPC1 " << instance.num_users() << " " << instance.num_events()
      << "\n";
  out << std::setprecision(17);
  for (int i = 0; i < instance.num_users(); ++i) {
    const User& u = instance.user(i);
    out << "u " << u.location.x << " " << u.location.y << " " << u.budget
        << "\n";
  }
  for (int j = 0; j < instance.num_events(); ++j) {
    const Event& e = instance.event(j);
    out << "e " << e.location.x << " " << e.location.y << " " << e.lower_bound
        << " " << e.upper_bound << " " << e.time.start << " " << e.time.end
        << " " << e.fee << "\n";
  }
  for (int i = 0; i < instance.num_users(); ++i) {
    for (int j = 0; j < instance.num_events(); ++j) {
      const double mu = instance.utility(i, j);
      if (mu != 0.0) out << "m " << i << " " << j << " " << mu << "\n";
    }
  }
  if (!out) return Status::Internal("write failed");
  return Status::OK();
}

Status SaveInstanceToFile(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  return SaveInstance(instance, out);
}

Result<Instance> LoadInstance(std::istream& in) {
  std::string line;
  int line_number = 0;

  // Header.
  int num_users = -1;
  int num_events = -1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream header(line);
    std::string magic;
    header >> magic >> num_users >> num_events;
    if (magic != "GEPC1" || header.fail()) {
      return ParseError(line_number, "expected 'GEPC1 <users> <events>'");
    }
    break;
  }
  if (num_users < 0 || num_events < 0) {
    return Status::InvalidArgument("missing GEPC1 header");
  }

  std::vector<User> users;
  std::vector<Event> events;
  struct UtilityEntry {
    int user;
    int event;
    double mu;
  };
  std::vector<UtilityEntry> utilities;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    char kind = 0;
    row >> kind;
    if (kind == 'u') {
      User u;
      row >> u.location.x >> u.location.y >> u.budget;
      if (row.fail()) return ParseError(line_number, "bad user row");
      users.push_back(u);
    } else if (kind == 'e') {
      Event e;
      row >> e.location.x >> e.location.y >> e.lower_bound >> e.upper_bound >>
          e.time.start >> e.time.end;
      if (row.fail()) return ParseError(line_number, "bad event row");
      // Optional trailing admission fee (older files omit it).
      double fee = 0.0;
      if (row >> fee) e.fee = fee;
      events.push_back(e);
    } else if (kind == 'm') {
      UtilityEntry entry{};
      row >> entry.user >> entry.event >> entry.mu;
      if (row.fail()) return ParseError(line_number, "bad utility row");
      utilities.push_back(entry);
    } else {
      return ParseError(line_number, std::string("unknown row kind '") +
                                         kind + "'");
    }
  }

  if (static_cast<int>(users.size()) != num_users) {
    return Status::InvalidArgument(
        "header declares " + std::to_string(num_users) + " users, found " +
        std::to_string(users.size()));
  }
  if (static_cast<int>(events.size()) != num_events) {
    return Status::InvalidArgument(
        "header declares " + std::to_string(num_events) + " events, found " +
        std::to_string(events.size()));
  }

  Instance instance(std::move(users), std::move(events));
  for (const auto& entry : utilities) {
    if (entry.user < 0 || entry.user >= num_users || entry.event < 0 ||
        entry.event >= num_events) {
      return Status::InvalidArgument("utility row out of range: user " +
                                     std::to_string(entry.user) + ", event " +
                                     std::to_string(entry.event));
    }
    instance.set_utility(entry.user, entry.event, entry.mu);
  }
  GEPC_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

Result<Instance> LoadInstanceFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  return LoadInstance(in);
}

Status SavePlan(const Plan& plan, std::ostream& out) {
  out << "GPLN1 " << plan.num_users() << " " << plan.num_events() << "\n";
  for (int i = 0; i < plan.num_users(); ++i) {
    for (EventId j : plan.events_of(i)) {
      out << "p " << i << " " << j << "\n";
    }
  }
  if (!out) return Status::Internal("write failed");
  return Status::OK();
}

Status SavePlanToFile(const Plan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  return SavePlan(plan, out);
}

Result<Plan> LoadPlan(std::istream& in) {
  std::string line;
  int line_number = 0;
  int num_users = -1;
  int num_events = -1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream header(line);
    std::string magic;
    header >> magic >> num_users >> num_events;
    if (magic != "GPLN1" || header.fail()) {
      return ParseError(line_number, "expected 'GPLN1 <users> <events>'");
    }
    break;
  }
  if (num_users < 0 || num_events < 0) {
    return Status::InvalidArgument("missing GPLN1 header");
  }
  Plan plan(num_users, num_events);
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    char kind = 0;
    int user = -1;
    int event = -1;
    row >> kind >> user >> event;
    if (kind != 'p' || row.fail()) {
      return ParseError(line_number, "expected 'p <user> <event>'");
    }
    if (user < 0 || user >= num_users || event < 0 || event >= num_events) {
      return ParseError(line_number, "attendance out of range");
    }
    if (!plan.Add(user, event)) {
      return ParseError(line_number, "duplicate attendance");
    }
  }
  return plan;
}

Result<Plan> LoadPlanFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  return LoadPlan(in);
}

}  // namespace gepc
