#ifndef GEPC_DATA_UTILITY_MODEL_H_
#define GEPC_DATA_UTILITY_MODEL_H_

#include "data/tags.h"
#include "geom/point.h"

namespace gepc {

/// How mu(u_i, e_j) is derived from tag documents and geometry. The paper
/// computes utilities from the users' and groups' tag documents with the
/// method of [1][2]; cosine over binary tag vectors is our default reading
/// of it, and the alternatives let experiments probe how sensitive the
/// planners are to the utility kernel.
enum class UtilityKernel {
  kCosine,        ///< |A ^ B| / sqrt(|A| |B|)  (default)
  kJaccard,       ///< |A ^ B| / |A u B|
  kOverlapCount,  ///< min(1, |A ^ B| / normalizer)
};

/// Parameters of the utility model.
struct UtilityModel {
  UtilityKernel kernel = UtilityKernel::kCosine;

  /// Normalizer for kOverlapCount (utility = min(1, overlap / this)).
  double overlap_normalizer = 4.0;

  /// Optional distance decay: utility is multiplied by
  /// exp(-distance / decay_scale) when decay_scale > 0 — nearby events feel
  /// more attractive, a common LBSN modelling choice (Sec. VI). 0 disables.
  double distance_decay_scale = 0.0;

  /// Scores below this are clamped to 0 ("will not attend"); keeps the
  /// utility matrix sparse like real interest data.
  double min_utility = 0.0;

  /// Computes mu for one (user, event) pair.
  double Score(const TagVector& user_tags, const TagVector& group_tags,
               const Point& user_location, const Point& event_location) const;
};

}  // namespace gepc

#endif  // GEPC_DATA_UTILITY_MODEL_H_
