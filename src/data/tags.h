#ifndef GEPC_DATA_TAGS_H_
#define GEPC_DATA_TAGS_H_

#include <vector>

#include "common/rng.h"

namespace gepc {

/// Sparse interest-tag vector (sorted unique tag ids). Meetup users select
/// interest tags at registration, and events inherit the tags of the group
/// that created them; the paper derives mu(u_i, e_j) from these documents
/// via the method of [1][2]. We model both sides as sparse tag sets and use
/// cosine similarity, which lands in [0, 1] as the paper's analysis assumes.
class TagVector {
 public:
  TagVector() = default;
  /// Takes ownership of `tags`; sorts and dedups.
  explicit TagVector(std::vector<int> tags);

  /// Samples `count` distinct tags from a Zipf-like popularity distribution
  /// over a vocabulary of `vocabulary_size` tags (tag 0 most popular) —
  /// mirroring the heavy-tailed tag frequencies reported for Meetup in [1].
  static TagVector Sample(int vocabulary_size, int count, Rng* rng);

  const std::vector<int>& tags() const { return tags_; }
  int size() const { return static_cast<int>(tags_.size()); }
  bool empty() const { return tags_.empty(); }

  /// |a intersect b|.
  static int OverlapCount(const TagVector& a, const TagVector& b);

  /// Cosine similarity of the binary indicator vectors:
  /// |a ^ b| / sqrt(|a| |b|); 0 when either side is empty.
  static double Cosine(const TagVector& a, const TagVector& b);

  /// Jaccard similarity |a ^ b| / |a u b|; alternative utility kernel.
  static double Jaccard(const TagVector& a, const TagVector& b);

 private:
  std::vector<int> tags_;
};

}  // namespace gepc

#endif  // GEPC_DATA_TAGS_H_
