#include "data/cities.h"

#include <algorithm>
#include <cmath>

namespace gepc {

const std::vector<CityPreset>& PaperCities() {
  // Table IV of the paper; every city uses mean xi 10, mean eta 50 and
  // conflict ratio 0.25.
  static const std::vector<CityPreset>* const kCities =
      new std::vector<CityPreset>{
          {"Beijing", 113, 16, 10.0, 50.0, 0.25},
          {"Vancouver", 2012, 225, 10.0, 50.0, 0.25},
          {"Auckland", 569, 37, 10.0, 50.0, 0.25},
          {"Singapore", 1500, 87, 10.0, 50.0, 0.25},
      };
  return *kCities;
}

Result<CityPreset> FindCity(const std::string& name) {
  for (const CityPreset& city : PaperCities()) {
    if (city.name == name) return city;
  }
  return Status::NotFound("unknown city preset: " + name);
}

Result<Instance> GenerateCity(const CityPreset& city, uint64_t seed,
                              double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  GeneratorConfig config;
  config.num_users =
      std::max(1, static_cast<int>(std::lround(city.num_users * scale)));
  config.num_events =
      std::max(1, static_cast<int>(std::lround(city.num_events * scale)));
  const double bound_scale = std::sqrt(scale);
  config.mean_eta = std::max(1.0, city.mean_eta * bound_scale);
  config.mean_xi = std::min(config.mean_eta, city.mean_xi * bound_scale);
  config.conflict_ratio = city.conflict_ratio;
  config.seed = seed;
  return GenerateInstance(config);
}

Result<Instance> GenerateCutOutBase(uint64_t seed) {
  GeneratorConfig config;
  config.num_users = 5000;
  config.num_events = 500;
  config.mean_eta = 50.0;
  config.mean_xi = 10.0;
  config.conflict_ratio = 0.25;
  config.seed = seed;
  return GenerateInstance(config);
}

}  // namespace gepc
