#ifndef GEPC_DATA_CITIES_H_
#define GEPC_DATA_CITIES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "data/generator.h"

namespace gepc {

/// One of the paper's four real Meetup datasets (Table IV). We regenerate
/// each synthetically with the same |U|, |E|, mean xi, mean eta and conflict
/// ratio (see DESIGN.md on the Meetup substitution).
struct CityPreset {
  std::string name;
  int num_users;
  int num_events;
  double mean_xi;
  double mean_eta;
  double conflict_ratio;
};

/// Beijing, Vancouver, Auckland, Singapore with Table IV's statistics.
const std::vector<CityPreset>& PaperCities();

/// Lookup by (case-sensitive) name; kNotFound if absent.
Result<CityPreset> FindCity(const std::string& name);

/// Generates the synthetic stand-in for `city`. `scale` in (0, 1] shrinks
/// |U| and |E| proportionally (useful for quick runs); bounds scale with
/// sqrt(scale) so instances stay comparably tight.
Result<Instance> GenerateCity(const CityPreset& city, uint64_t seed,
                              double scale = 1.0);

/// The default "cut out" base dataset of Table V: 5000 users, 500 events.
Result<Instance> GenerateCutOutBase(uint64_t seed);

}  // namespace gepc

#endif  // GEPC_DATA_CITIES_H_
