#include "data/friendship.h"

#include <algorithm>
#include <cmath>

#include "geom/point.h"

namespace gepc {

bool FriendshipGraph::AddEdge(UserId a, UserId b) {
  if (a == b) return false;
  std::vector<UserId>& fa = adjacency_[static_cast<size_t>(a)];
  const auto pos = std::lower_bound(fa.begin(), fa.end(), b);
  if (pos != fa.end() && *pos == b) return false;
  fa.insert(pos, b);
  std::vector<UserId>& fb = adjacency_[static_cast<size_t>(b)];
  fb.insert(std::lower_bound(fb.begin(), fb.end(), a), a);
  ++edges_;
  return true;
}

bool FriendshipGraph::AreFriends(UserId a, UserId b) const {
  if (a < 0 || b < 0 || a >= num_users() || b >= num_users()) return false;
  const std::vector<UserId>& fa = adjacency_[static_cast<size_t>(a)];
  return std::binary_search(fa.begin(), fa.end(), b);
}

FriendshipGraph FriendshipGraph::Relabeled(
    const std::vector<UserId>& new_of_old) const {
  FriendshipGraph out(num_users());
  for (UserId old_a = 0; old_a < num_users(); ++old_a) {
    for (const UserId old_b : friends_of(old_a)) {
      if (old_b < old_a) continue;  // each undirected edge once
      out.AddEdge(new_of_old[static_cast<size_t>(old_a)],
                  new_of_old[static_cast<size_t>(old_b)]);
    }
  }
  return out;
}

FriendshipGraph GenerateFriendshipGraph(const std::vector<User>& users,
                                        const FriendshipConfig& config) {
  const int n = static_cast<int>(users.size());
  FriendshipGraph graph(n);
  if (n < 2 || config.mean_degree <= 0.0) return graph;

  Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + 0x5EEDULL);
  const int64_t target_edges = std::max<int64_t>(
      1, static_cast<int64_t>(config.mean_degree * n / 2.0));
  const double two_r2 =
      2.0 * config.locality_radius * config.locality_radius;

  // Draw edges until the target is met. Local ties use rejection sampling
  // against the Gaussian distance kernel; a bounded attempt budget keeps
  // generation O(target) even on pathological geometries.
  int64_t attempts_left = 64 * target_edges;
  while (graph.num_edges() < target_edges && attempts_left-- > 0) {
    const UserId a = static_cast<UserId>(
        rng.UniformUint64(static_cast<uint64_t>(n)));
    UserId b = static_cast<UserId>(
        rng.UniformUint64(static_cast<uint64_t>(n)));
    if (a == b) continue;
    if (rng.Bernoulli(config.locality_bias) && two_r2 > 0.0) {
      const double d2 = SquaredDistance(users[static_cast<size_t>(a)].location,
                                        users[static_cast<size_t>(b)].location);
      if (rng.UniformDouble() > std::exp(-d2 / two_r2)) continue;
    }
    graph.AddEdge(a, b);
  }
  return graph;
}

}  // namespace gepc
