#include "data/tags.h"

#include <algorithm>
#include <cmath>

namespace gepc {

TagVector::TagVector(std::vector<int> tags) : tags_(std::move(tags)) {
  std::sort(tags_.begin(), tags_.end());
  tags_.erase(std::unique(tags_.begin(), tags_.end()), tags_.end());
}

TagVector TagVector::Sample(int vocabulary_size, int count, Rng* rng) {
  std::vector<int> picked;
  picked.reserve(static_cast<size_t>(count));
  // Zipf-ish sampling: tag = floor(V * u^2) concentrates mass on low ids
  // (the popular tags) with a long tail, without needing the harmonic
  // normalization of a true Zipf draw.
  int attempts = 0;
  const int max_attempts = 50 * count + 100;
  while (static_cast<int>(picked.size()) < count && attempts++ < max_attempts) {
    const double u = rng->UniformDouble();
    const int tag = static_cast<int>(u * u * vocabulary_size);
    if (std::find(picked.begin(), picked.end(), tag) == picked.end()) {
      picked.push_back(std::min(tag, vocabulary_size - 1));
    }
  }
  return TagVector(std::move(picked));
}

int TagVector::OverlapCount(const TagVector& a, const TagVector& b) {
  int overlap = 0;
  auto ia = a.tags_.begin();
  auto ib = b.tags_.begin();
  while (ia != a.tags_.end() && ib != b.tags_.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

double TagVector::Cosine(const TagVector& a, const TagVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  const int overlap = OverlapCount(a, b);
  return overlap /
         std::sqrt(static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

double TagVector::Jaccard(const TagVector& a, const TagVector& b) {
  if (a.empty() && b.empty()) return 0.0;
  const int overlap = OverlapCount(a, b);
  return static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size() - overlap);
}

}  // namespace gepc
