#ifndef GEPC_DATA_GENERATOR_H_
#define GEPC_DATA_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "core/instance.h"
#include "data/utility_model.h"

namespace gepc {

/// Configuration of the synthetic Meetup-like EBSN generator.
///
/// The paper evaluates on a Meetup crawl [1]: users carry interest tags and
/// a location; events are created by groups that carry tags and a venue;
/// mu(u_i, e_j) is derived from the tag documents ([1][2]) and B_i, ts, tt,
/// eta are generated as in [4] with xi drawn from [0, eta]. This generator
/// reproduces those shape statistics synthetically (see DESIGN.md for the
/// substitution rationale): clustered locations in a city rectangle, Zipf
/// tag popularity, cosine tag-overlap utilities, a controlled fraction of
/// time-conflicting events, and participation bounds with chosen means.
struct GeneratorConfig {
  int num_users = 100;
  int num_events = 20;

  /// Events are created by groups; utility depends on the group's tags.
  /// 0 = derive as max(4, num_events / 4).
  int num_groups = 0;
  int vocabulary_size = 120;
  int min_tags_per_user = 3;
  int max_tags_per_user = 8;
  int min_tags_per_group = 3;
  int max_tags_per_group = 8;

  /// City rectangle [0, width] x [0, height]; locations cluster around
  /// `num_hotspots` Gaussian hotspots (downtown, campus, ...).
  double city_width = 100.0;
  double city_height = 100.0;
  int num_hotspots = 5;
  double hotspot_stddev = 8.0;

  /// Travel budget B_i ~ U[budget_min_fraction, budget_max_fraction] of the
  /// city diagonal.
  double budget_min_fraction = 0.35;
  double budget_max_fraction = 1.1;

  /// Fraction of events placed into mutually conflicting clusters — the
  /// "conflict ratio" of the paper's Table IV (0.25 for all four cities).
  double conflict_ratio = 0.25;
  /// Largest cluster of mutually conflicting events (>= 2).
  int max_conflict_cluster = 3;

  /// Participation bounds: eta_j ~ U[(1-spread), (1+spread)] * mean_eta,
  /// xi_j ~ U[0, 2 * mean_xi] clamped to [0, eta_j].
  double mean_eta = 50.0;
  double eta_spread = 0.5;
  double mean_xi = 10.0;

  /// Mean admission fee (Sec. VII extension); fees are drawn uniformly in
  /// [0, 2 * mean_fee] and charged against travel budgets. 0 (default)
  /// keeps the paper's pure-travel cost model.
  double mean_fee = 0.0;

  /// When true (default), each xi_j is additionally capped at
  /// `reachability_cap_fraction` of the users who could attend e_j alone
  /// (positive utility and a round trip within budget), so generated
  /// instances have satisfiable lower bounds with high probability.
  bool cap_xi_by_reachability = true;
  double reachability_cap_fraction = 0.5;

  /// How utilities are derived from tag documents (+ optional distance
  /// decay); the default is the paper-style cosine kernel.
  UtilityModel utility_model;

  uint64_t seed = 42;
};

/// Generates a full EBSN instance. Returns kInvalidArgument on nonsensical
/// configuration (e.g. negative sizes, conflict_ratio outside [0, 1]).
Result<Instance> GenerateInstance(const GeneratorConfig& config);

/// The paper's "cut out" datasets (Table V): keeps a random subset of
/// `num_users` users and `num_events` events of `base` (clamped to the base
/// sizes). Lower bounds are re-capped against reachability within the
/// subset so the cut-out stays satisfiable.
Instance CutOut(const Instance& base, int num_users, int num_events, Rng* rng);

}  // namespace gepc

#endif  // GEPC_DATA_GENERATOR_H_
