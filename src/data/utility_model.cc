#include "data/utility_model.h"

#include <algorithm>
#include <cmath>

namespace gepc {

double UtilityModel::Score(const TagVector& user_tags,
                           const TagVector& group_tags,
                           const Point& user_location,
                           const Point& event_location) const {
  double mu = 0.0;
  switch (kernel) {
    case UtilityKernel::kCosine:
      mu = TagVector::Cosine(user_tags, group_tags);
      break;
    case UtilityKernel::kJaccard:
      mu = TagVector::Jaccard(user_tags, group_tags);
      break;
    case UtilityKernel::kOverlapCount: {
      const double normalizer = std::max(overlap_normalizer, 1e-9);
      mu = std::min(
          1.0, TagVector::OverlapCount(user_tags, group_tags) / normalizer);
      break;
    }
  }
  if (distance_decay_scale > 0.0 && mu > 0.0) {
    mu *= std::exp(-Distance(user_location, event_location) /
                   distance_decay_scale);
  }
  return mu >= min_utility && mu > 0.0 ? mu : 0.0;
}

}  // namespace gepc
