#ifndef GEPC_CORE_ITINERARY_H_
#define GEPC_CORE_ITINERARY_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/plan.h"
#include "core/types.h"

namespace gepc {

/// One stop of a user's day: the event plus the leg that reaches it.
struct ItineraryStop {
  EventId event = kInvalidEvent;
  Interval time;
  double travel_from_previous = 0.0;  ///< from home or the previous event
  double fee = 0.0;
  double utility = 0.0;
};

/// A user's individual plan P_i rendered as the actual day: stops in
/// start-time order, per-leg travel, the trip home, and the cost/budget
/// accounting the GEPC constraints are defined over.
struct Itinerary {
  UserId user = kInvalidUser;
  std::vector<ItineraryStop> stops;
  double travel_home = 0.0;   ///< last event back to l_ui
  double total_travel = 0.0;  ///< sum of legs incl. the trip home
  double total_fees = 0.0;
  double total_cost = 0.0;    ///< D_i = travel + fees
  double total_utility = 0.0;
  double budget = 0.0;
  bool within_budget = true;
  bool conflict_free = true;

  /// Multi-line human-readable rendering, e.g. for the CLI:
  ///   u3 (budget 20.0):
  ///     09:05 a.m.  e7   travel 3.2  fee 0.0  utility 0.81
  ///     ...
  std::string ToString() const;
};

/// Builds user i's itinerary from the plan. Never fails: infeasibilities
/// (over budget, conflicts) are reported via the flags so callers can
/// render broken plans during debugging.
Itinerary BuildItinerary(const Instance& instance, const Plan& plan,
                         UserId user);

/// Itineraries for every user with a non-empty plan.
std::vector<Itinerary> BuildAllItineraries(const Instance& instance,
                                           const Plan& plan);

}  // namespace gepc

#endif  // GEPC_CORE_ITINERARY_H_
