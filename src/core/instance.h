#ifndef GEPC_CORE_INSTANCE_H_
#define GEPC_CORE_INSTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/event.h"
#include "core/types.h"
#include "core/user.h"
#include "temporal/conflict_graph.h"

namespace gepc {

/// A complete EBSN planning instance: n users, m events, and the n x m
/// utility matrix mu(u_i, e_j) >= 0 (mu == 0 means "cannot / will not
/// attend", Sec. II). The instance is mutable because the IEP atomic
/// operations (Sec. IV) edit exactly these fields; mutations that can change
/// the time-conflict relation invalidate the cached ConflictGraph.
class Instance {
 public:
  Instance() = default;

  /// Builds an instance with all utilities zero; fill with set_utility.
  Instance(std::vector<User> users, std::vector<Event> events);

  /// Copies duplicate the data but not the lazily-built conflict cache
  /// (it is rebuilt on first use); IEP baselines copy instances to mutate.
  Instance(const Instance& other);
  Instance& operator=(const Instance& other);
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  int num_users() const { return static_cast<int>(users_.size()); }
  int num_events() const { return static_cast<int>(events_.size()); }

  const User& user(UserId i) const { return users_[static_cast<size_t>(i)]; }
  const Event& event(EventId j) const {
    return events_[static_cast<size_t>(j)];
  }
  const std::vector<User>& users() const { return users_; }
  const std::vector<Event>& events() const { return events_; }

  /// mu(u_i, e_j).
  double utility(UserId i, EventId j) const {
    return utilities_[static_cast<size_t>(i) * events_.size() +
                      static_cast<size_t>(j)];
  }
  void set_utility(UserId i, EventId j, double value);

  /// Euclidean travel distances (Sec. II uses straight-line distance).
  double UserEventDistance(UserId i, EventId j) const;
  double EventEventDistance(EventId a, EventId b) const;

  /// Pairwise time-conflict relation over events, built lazily and cached.
  const ConflictGraph& conflicts() const;

  /// True iff events a and b cannot both be in one user's plan.
  bool EventsConflict(EventId a, EventId b) const {
    return conflicts().conflicts(a, b);
  }

  // ---- Mutators used by the IEP atomic operations ---------------------

  /// Changes a user's travel budget (atomic op "B_i changed").
  void set_user_budget(UserId i, double budget);

  /// Changes an event's participation bounds (atomic ops on xi / eta).
  /// Returns InvalidArgument if the pair is inconsistent.
  Status set_event_bounds(EventId j, int lower, int upper);

  /// Changes an event's holding time (atomic op on ts / tt); invalidates the
  /// conflict cache. Returns InvalidArgument for an empty interval.
  Status set_event_time(EventId j, Interval time);

  /// Changes an event's location (atomic op "location changed").
  void set_event_location(EventId j, Point location);

  /// Appends a new event with the given per-user utility column (atomic op
  /// "new event added"); returns its id.
  EventId AddEvent(const Event& event, const std::vector<double>& utilities);

  /// Structural sanity check: valid events, non-negative budgets and
  /// utilities, matrix dimensions. Solvers call this once up front.
  Status Validate() const;

  /// Sum over events of xi_j — the m^+ of the paper's event-copy transform.
  int64_t TotalLowerBound() const;

 private:
  std::vector<User> users_;
  std::vector<Event> events_;
  std::vector<double> utilities_;  // row-major n x m

  // Lazy conflict cache. Rebuilt after any event-time mutation.
  mutable std::unique_ptr<ConflictGraph> conflict_cache_;
};

}  // namespace gepc

#endif  // GEPC_CORE_INSTANCE_H_
