#ifndef GEPC_CORE_PLAN_H_
#define GEPC_CORE_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace gepc {

/// A global plan P = {P_1, ..., P_n}: for each user the set of events they
/// attend (Sec. II). Maintains both directions (user -> events and
/// event -> attendees) so solvers can query either in O(1)/O(k).
///
/// A Plan does not enforce feasibility — solvers build partial plans — but
/// ValidatePlan (core/feasibility.h) checks the four GEPC constraints.
class Plan {
 public:
  Plan() = default;

  /// Empty plan over n users and m events.
  Plan(int num_users, int num_events);

  int num_users() const { return static_cast<int>(user_events_.size()); }
  int num_events() const { return static_cast<int>(event_users_.size()); }

  /// Adds e_j to P_i. Returns false (no-op) if already present.
  bool Add(UserId i, EventId j);

  /// Removes e_j from P_i. Returns false (no-op) if not present.
  bool Remove(UserId i, EventId j);

  /// True iff e_j in P_i.
  bool Contains(UserId i, EventId j) const;

  /// Events in P_i (unordered; sort by start time for tours).
  const std::vector<EventId>& events_of(UserId i) const {
    return user_events_[static_cast<size_t>(i)];
  }

  /// Users assigned to e_j.
  const std::vector<UserId>& attendees_of(EventId j) const {
    return event_users_[static_cast<size_t>(j)];
  }

  /// Number of users assigned to e_j (the paper's n_j).
  int attendance(EventId j) const {
    return static_cast<int>(event_users_[static_cast<size_t>(j)].size());
  }

  /// Total number of (user, event) assignments.
  int64_t TotalAssignments() const;

  /// Global utility U_P = sum_i sum_{e_j in P_i} mu(u_i, e_j) (Sec. II-A).
  double TotalUtility(const Instance& instance) const;

  /// Grows the event dimension (after Instance::AddEvent).
  void EnsureEventCapacity(int num_events);

  /// Removes every assignment.
  void Clear();

  friend bool operator==(const Plan& a, const Plan& b);

 private:
  std::vector<std::vector<EventId>> user_events_;
  std::vector<std::vector<UserId>> event_users_;
};

/// The paper's negative impact dif(P, P') = sum_i |P_i \ P'_i| (Sec. II-B):
/// the number of (user, event) attendances of `before` that were lost in
/// `after`. Preconditions: same number of users.
int64_t NegativeImpact(const Plan& before, const Plan& after);

}  // namespace gepc

#endif  // GEPC_CORE_PLAN_H_
