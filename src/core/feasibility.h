#ifndef GEPC_CORE_FEASIBILITY_H_
#define GEPC_CORE_FEASIBILITY_H_

#include <vector>

#include "common/status.h"
#include "core/instance.h"
#include "core/plan.h"
#include "core/types.h"

namespace gepc {

/// Travel cost D_i of user i attending `events`: the Euclidean tour
/// l_ui -> e_(1) -> ... -> e_(k) -> l_ui with events visited in start-time
/// order (Sec. II). An empty set costs 0.
double TourCost(const Instance& instance, UserId i,
                std::vector<EventId> events);

/// Travel cost of user i's current plan.
double UserTravelCost(const Instance& instance, const Plan& plan, UserId i);

/// True iff some pair of `events` time-conflicts.
bool HasTimeConflict(const Instance& instance,
                     const std::vector<EventId>& events);

/// True iff event j conflicts with any event already in P_i.
bool ConflictsWithPlan(const Instance& instance, const Plan& plan, UserId i,
                       EventId j);

/// Which GEPC constraints ValidatePlan enforces. The participation lower
/// bound is optional because partial plans (mid-solve, or the xi-GEPC
/// sub-problem with relabelled bounds) legitimately violate it.
struct ValidationOptions {
  bool check_time_conflicts = true;
  bool check_travel_budgets = true;
  bool check_upper_bounds = true;
  bool check_lower_bounds = true;
  /// Reject assignments with mu(u_i, e_j) == 0 ("cannot attend", Sec. II).
  bool check_positive_utility = false;
  /// Absolute slack allowed on budget comparisons (floating-point tours).
  double budget_epsilon = 1e-9;
};

/// Checks the four GEPC constraints of Definition 1 against `plan`.
/// Returns OK or the first violation found (kInfeasible) with a message
/// naming the user/event involved.
Status ValidatePlan(const Instance& instance, const Plan& plan,
                    const ValidationOptions& options = {});

/// True iff event j can be added to P_i without breaking the user-side
/// constraints: not already present, mu > 0, no time conflict, and the new
/// tour still fits budget B_i. Event capacity is NOT checked here (solvers
/// track remaining capacity themselves).
bool CanAttend(const Instance& instance, const Plan& plan, UserId i,
               EventId j, double budget_epsilon = 1e-9);

/// Tour cost of P_i if event j were added (no feasibility check).
double TravelCostWithEvent(const Instance& instance, const Plan& plan,
                           UserId i, EventId j);

}  // namespace gepc

#endif  // GEPC_CORE_FEASIBILITY_H_
