#ifndef GEPC_CORE_TYPES_H_
#define GEPC_CORE_TYPES_H_

#include <cstdint>

namespace gepc {

/// Index of a user within an Instance (0-based, dense).
using UserId = int32_t;

/// Index of an event within an Instance (0-based, dense).
using EventId = int32_t;

/// Sentinel for "no user / no event".
inline constexpr UserId kInvalidUser = -1;
inline constexpr EventId kInvalidEvent = -1;

}  // namespace gepc

#endif  // GEPC_CORE_TYPES_H_
