#include "core/itinerary.h"

#include <algorithm>
#include <cstdio>

#include "core/feasibility.h"

namespace gepc {

Itinerary BuildItinerary(const Instance& instance, const Plan& plan,
                         UserId user) {
  Itinerary itinerary;
  itinerary.user = user;
  itinerary.budget = instance.user(user).budget;

  std::vector<EventId> events = plan.events_of(user);
  std::sort(events.begin(), events.end(), [&](EventId a, EventId b) {
    const Interval& ia = instance.event(a).time;
    const Interval& ib = instance.event(b).time;
    if (ia.start != ib.start) return ia.start < ib.start;
    if (ia.end != ib.end) return ia.end < ib.end;
    return a < b;
  });

  Point here = instance.user(user).location;
  for (size_t k = 0; k < events.size(); ++k) {
    const EventId j = events[k];
    const Event& e = instance.event(j);
    ItineraryStop stop;
    stop.event = j;
    stop.time = e.time;
    stop.travel_from_previous = Distance(here, e.location);
    stop.fee = e.fee;
    stop.utility = instance.utility(user, j);
    itinerary.total_travel += stop.travel_from_previous;
    itinerary.total_fees += stop.fee;
    itinerary.total_utility += stop.utility;
    if (k > 0 &&
        instance.EventsConflict(events[k - 1], j)) {
      itinerary.conflict_free = false;
    }
    here = e.location;
    itinerary.stops.push_back(stop);
  }
  // Also catch non-adjacent conflicts (possible with nested intervals).
  if (itinerary.conflict_free && HasTimeConflict(instance, events)) {
    itinerary.conflict_free = false;
  }

  if (!events.empty()) {
    itinerary.travel_home =
        Distance(here, instance.user(user).location);
    itinerary.total_travel += itinerary.travel_home;
  }
  itinerary.total_cost = itinerary.total_travel + itinerary.total_fees;
  itinerary.within_budget =
      itinerary.total_cost <= itinerary.budget + 1e-9;
  return itinerary;
}

std::vector<Itinerary> BuildAllItineraries(const Instance& instance,
                                           const Plan& plan) {
  std::vector<Itinerary> itineraries;
  for (int i = 0; i < instance.num_users(); ++i) {
    if (!plan.events_of(i).empty()) {
      itineraries.push_back(BuildItinerary(instance, plan, i));
    }
  }
  return itineraries;
}

std::string Itinerary::ToString() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "u%d (budget %.1f, cost %.1f%s%s): utility %.2f\n", user,
                budget, total_cost, within_budget ? "" : " OVER BUDGET",
                conflict_free ? "" : " CONFLICTED", total_utility);
  std::string out = line;
  for (const ItineraryStop& stop : stops) {
    std::snprintf(line, sizeof(line),
                  "  %-22s e%-4d travel %6.2f  fee %5.2f  utility %.2f\n",
                  FormatInterval(stop.time).c_str(), stop.event,
                  stop.travel_from_previous, stop.fee, stop.utility);
    out += line;
  }
  if (!stops.empty()) {
    std::snprintf(line, sizeof(line), "  home%38s %6.2f\n", "travel",
                  travel_home);
    out += line;
  }
  return out;
}

}  // namespace gepc
