#ifndef GEPC_CORE_PLAN_DIFF_H_
#define GEPC_CORE_PLAN_DIFF_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/plan.h"
#include "core/types.h"

namespace gepc {

/// Structured difference between two plans over the same users. `lost`
/// aggregates to the paper's negative impact dif(P, P'); `gained` is the
/// compensation side the incremental algorithms add for free.
struct PlanDiff {
  struct UserDelta {
    UserId user = kInvalidUser;
    std::vector<EventId> lost;    ///< in before, not in after
    std::vector<EventId> gained;  ///< in after, not in before
  };

  /// Only users whose plans changed, ascending by user id.
  std::vector<UserDelta> users;
  int64_t total_lost = 0;    ///< == NegativeImpact(before, after)
  int64_t total_gained = 0;
  double utility_delta = 0.0;

  bool empty() const { return users.empty(); }

  /// Human-readable multi-line summary ("u3: -e7 +e2 +e9").
  std::string ToString() const;
};

/// Computes the per-user delta between `before` and `after`. The plans may
/// have different event dimensions (events added mid-day); events beyond
/// `before`'s range count as gained, events beyond `after`'s as lost.
PlanDiff DiffPlans(const Instance& instance, const Plan& before,
                   const Plan& after);

}  // namespace gepc

#endif  // GEPC_CORE_PLAN_DIFF_H_
