#ifndef GEPC_CORE_EVENT_H_
#define GEPC_CORE_EVENT_H_

#include "geom/point.h"
#include "temporal/interval.h"

namespace gepc {

/// An EBSN event e_j = (l_ej, xi_j, eta_j, ts_j, tt_j): a location, a
/// participation lower bound xi (the event cannot be held with fewer
/// attendees), a participation upper bound eta (venue capacity), and a
/// holding time (Sec. II).
struct Event {
  Point location;
  int lower_bound = 0;  ///< xi_j  (minimum participants)
  int upper_bound = 0;  ///< eta_j (maximum participants)
  Interval time;

  /// Admission fee charged against the attendee's budget, in the same
  /// units as travel distance. The paper's Sec. VII notes that attendance
  /// costs "could be naturally rolled into travel costs"; this field does
  /// exactly that — a user's cost D_i becomes tour length plus the fees of
  /// the events attended. Zero (the default) recovers the paper's model.
  double fee = 0.0;

  /// True iff bounds, fee and holding time are internally consistent.
  bool IsValid() const {
    return lower_bound >= 0 && lower_bound <= upper_bound && fee >= 0.0 &&
           time.IsValid();
  }
};

}  // namespace gepc

#endif  // GEPC_CORE_EVENT_H_
