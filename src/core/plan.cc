#include "core/plan.h"

#include <algorithm>
#include <cassert>

namespace gepc {

Plan::Plan(int num_users, int num_events)
    : user_events_(static_cast<size_t>(num_users)),
      event_users_(static_cast<size_t>(num_events)) {}

bool Plan::Add(UserId i, EventId j) {
  assert(i >= 0 && i < num_users() && j >= 0 && j < num_events());
  auto& events = user_events_[static_cast<size_t>(i)];
  if (std::find(events.begin(), events.end(), j) != events.end()) return false;
  events.push_back(j);
  event_users_[static_cast<size_t>(j)].push_back(i);
  return true;
}

bool Plan::Remove(UserId i, EventId j) {
  assert(i >= 0 && i < num_users() && j >= 0 && j < num_events());
  auto& events = user_events_[static_cast<size_t>(i)];
  auto it = std::find(events.begin(), events.end(), j);
  if (it == events.end()) return false;
  events.erase(it);
  auto& users = event_users_[static_cast<size_t>(j)];
  users.erase(std::find(users.begin(), users.end(), i));
  return true;
}

bool Plan::Contains(UserId i, EventId j) const {
  assert(i >= 0 && i < num_users() && j >= 0 && j < num_events());
  const auto& events = user_events_[static_cast<size_t>(i)];
  return std::find(events.begin(), events.end(), j) != events.end();
}

int64_t Plan::TotalAssignments() const {
  int64_t total = 0;
  for (const auto& events : user_events_) {
    total += static_cast<int64_t>(events.size());
  }
  return total;
}

double Plan::TotalUtility(const Instance& instance) const {
  assert(num_users() == instance.num_users());
  double total = 0.0;
  for (int i = 0; i < num_users(); ++i) {
    for (EventId j : user_events_[static_cast<size_t>(i)]) {
      total += instance.utility(i, j);
    }
  }
  return total;
}

void Plan::EnsureEventCapacity(int num_events) {
  if (num_events > this->num_events()) {
    event_users_.resize(static_cast<size_t>(num_events));
  }
}

void Plan::Clear() {
  for (auto& events : user_events_) events.clear();
  for (auto& users : event_users_) users.clear();
}

bool operator==(const Plan& a, const Plan& b) {
  if (a.num_users() != b.num_users()) return false;
  for (int i = 0; i < a.num_users(); ++i) {
    auto lhs = a.user_events_[static_cast<size_t>(i)];
    auto rhs = b.user_events_[static_cast<size_t>(i)];
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    if (lhs != rhs) return false;
  }
  return true;
}

int64_t NegativeImpact(const Plan& before, const Plan& after) {
  assert(before.num_users() == after.num_users());
  int64_t impact = 0;
  for (int i = 0; i < before.num_users(); ++i) {
    for (EventId j : before.events_of(i)) {
      // Events removed from the instance entirely also count as lost.
      if (j >= after.num_events() || !after.Contains(i, j)) ++impact;
    }
  }
  return impact;
}

}  // namespace gepc
