#include "core/plan_diff.h"

#include <algorithm>
#include <cassert>

namespace gepc {

PlanDiff DiffPlans(const Instance& instance, const Plan& before,
                   const Plan& after) {
  assert(before.num_users() == after.num_users());
  PlanDiff diff;
  for (int i = 0; i < before.num_users(); ++i) {
    PlanDiff::UserDelta delta;
    delta.user = i;
    for (EventId j : before.events_of(i)) {
      if (j >= after.num_events() || !after.Contains(i, j)) {
        delta.lost.push_back(j);
      }
    }
    for (EventId j : after.events_of(i)) {
      if (j >= before.num_events() || !before.Contains(i, j)) {
        delta.gained.push_back(j);
      }
    }
    if (delta.lost.empty() && delta.gained.empty()) continue;
    std::sort(delta.lost.begin(), delta.lost.end());
    std::sort(delta.gained.begin(), delta.gained.end());
    diff.total_lost += static_cast<int64_t>(delta.lost.size());
    diff.total_gained += static_cast<int64_t>(delta.gained.size());
    for (EventId j : delta.lost) {
      if (j < instance.num_events()) {
        diff.utility_delta -= instance.utility(i, j);
      }
    }
    for (EventId j : delta.gained) {
      if (j < instance.num_events()) {
        diff.utility_delta += instance.utility(i, j);
      }
    }
    diff.users.push_back(std::move(delta));
  }
  return diff;
}

std::string PlanDiff::ToString() const {
  if (users.empty()) return "(no changes)\n";
  std::string out;
  for (const UserDelta& delta : users) {
    out += "u" + std::to_string(delta.user) + ":";
    for (EventId j : delta.lost) out += " -e" + std::to_string(j);
    for (EventId j : delta.gained) out += " +e" + std::to_string(j);
    out += "\n";
  }
  out += "total: " + std::to_string(total_lost) + " lost (dif), " +
         std::to_string(total_gained) + " gained\n";
  return out;
}

}  // namespace gepc
