#include "core/feasibility.h"

#include <algorithm>
#include <string>

namespace gepc {

namespace {

void SortByStartTime(const Instance& instance, std::vector<EventId>* events) {
  std::sort(events->begin(), events->end(), [&](EventId a, EventId b) {
    const Interval& ia = instance.event(a).time;
    const Interval& ib = instance.event(b).time;
    if (ia.start != ib.start) return ia.start < ib.start;
    if (ia.end != ib.end) return ia.end < ib.end;
    return a < b;
  });
}

}  // namespace

double TourCost(const Instance& instance, UserId i,
                std::vector<EventId> events) {
  if (events.empty()) return 0.0;
  SortByStartTime(instance, &events);
  double cost = instance.UserEventDistance(i, events.front());
  for (size_t k = 0; k + 1 < events.size(); ++k) {
    cost += instance.EventEventDistance(events[k], events[k + 1]);
  }
  cost += instance.UserEventDistance(i, events.back());
  // Admission fees are charged against the same budget (Sec. VII
  // extension); zero fees recover the paper's pure-travel model.
  for (EventId j : events) cost += instance.event(j).fee;
  return cost;
}

double UserTravelCost(const Instance& instance, const Plan& plan, UserId i) {
  return TourCost(instance, i, plan.events_of(i));
}

bool HasTimeConflict(const Instance& instance,
                     const std::vector<EventId>& events) {
  for (size_t a = 0; a < events.size(); ++a) {
    for (size_t b = a + 1; b < events.size(); ++b) {
      if (instance.EventsConflict(events[a], events[b])) return true;
    }
  }
  return false;
}

bool ConflictsWithPlan(const Instance& instance, const Plan& plan, UserId i,
                       EventId j) {
  for (EventId existing : plan.events_of(i)) {
    if (instance.EventsConflict(existing, j)) return true;
  }
  return false;
}

Status ValidatePlan(const Instance& instance, const Plan& plan,
                    const ValidationOptions& options) {
  if (plan.num_users() != instance.num_users() ||
      plan.num_events() != instance.num_events()) {
    return Status::InvalidArgument("plan dimensions do not match instance");
  }

  for (int i = 0; i < instance.num_users(); ++i) {
    const std::vector<EventId>& events = plan.events_of(i);
    if (options.check_time_conflicts && HasTimeConflict(instance, events)) {
      return Status::Infeasible("user " + std::to_string(i) +
                                " has time-conflicting events in their plan");
    }
    if (options.check_travel_budgets) {
      const double cost = TourCost(instance, i, events);
      if (cost > instance.user(i).budget + options.budget_epsilon) {
        return Status::Infeasible(
            "user " + std::to_string(i) + " travel cost " +
            std::to_string(cost) + " exceeds budget " +
            std::to_string(instance.user(i).budget));
      }
    }
    if (options.check_positive_utility) {
      for (EventId j : events) {
        if (instance.utility(i, j) <= 0.0) {
          return Status::Infeasible("user " + std::to_string(i) +
                                    " is assigned zero-utility event " +
                                    std::to_string(j));
        }
      }
    }
  }

  for (int j = 0; j < instance.num_events(); ++j) {
    const int attendance = plan.attendance(j);
    if (options.check_upper_bounds &&
        attendance > instance.event(j).upper_bound) {
      return Status::Infeasible(
          "event " + std::to_string(j) + " has " + std::to_string(attendance) +
          " attendees, above its upper bound " +
          std::to_string(instance.event(j).upper_bound));
    }
    if (options.check_lower_bounds &&
        attendance < instance.event(j).lower_bound) {
      return Status::Infeasible(
          "event " + std::to_string(j) + " has " + std::to_string(attendance) +
          " attendees, below its lower bound " +
          std::to_string(instance.event(j).lower_bound));
    }
  }
  return Status::OK();
}

bool CanAttend(const Instance& instance, const Plan& plan, UserId i, EventId j,
               double budget_epsilon) {
  if (plan.Contains(i, j)) return false;
  if (instance.utility(i, j) <= 0.0) return false;
  if (ConflictsWithPlan(instance, plan, i, j)) return false;
  const double cost = TravelCostWithEvent(instance, plan, i, j);
  return cost <= instance.user(i).budget + budget_epsilon;
}

double TravelCostWithEvent(const Instance& instance, const Plan& plan,
                           UserId i, EventId j) {
  std::vector<EventId> events = plan.events_of(i);
  events.push_back(j);
  return TourCost(instance, i, std::move(events));
}

}  // namespace gepc
