#include "core/instance.h"

#include <cassert>

#include "geom/point.h"

namespace gepc {

Instance::Instance(std::vector<User> users, std::vector<Event> events)
    : users_(std::move(users)),
      events_(std::move(events)),
      utilities_(users_.size() * events_.size(), 0.0) {}

Instance::Instance(const Instance& other)
    : users_(other.users_),
      events_(other.events_),
      utilities_(other.utilities_) {}

Instance& Instance::operator=(const Instance& other) {
  if (this != &other) {
    users_ = other.users_;
    events_ = other.events_;
    utilities_ = other.utilities_;
    conflict_cache_.reset();
  }
  return *this;
}

void Instance::set_utility(UserId i, EventId j, double value) {
  assert(i >= 0 && i < num_users() && j >= 0 && j < num_events());
  utilities_[static_cast<size_t>(i) * events_.size() + static_cast<size_t>(j)] =
      value;
}

double Instance::UserEventDistance(UserId i, EventId j) const {
  return Distance(users_[static_cast<size_t>(i)].location,
                  events_[static_cast<size_t>(j)].location);
}

double Instance::EventEventDistance(EventId a, EventId b) const {
  return Distance(events_[static_cast<size_t>(a)].location,
                  events_[static_cast<size_t>(b)].location);
}

const ConflictGraph& Instance::conflicts() const {
  if (conflict_cache_ == nullptr) {
    std::vector<Interval> intervals;
    intervals.reserve(events_.size());
    for (const Event& e : events_) intervals.push_back(e.time);
    conflict_cache_ = std::make_unique<ConflictGraph>(intervals);
  }
  return *conflict_cache_;
}

void Instance::set_user_budget(UserId i, double budget) {
  assert(i >= 0 && i < num_users());
  users_[static_cast<size_t>(i)].budget = budget;
}

Status Instance::set_event_bounds(EventId j, int lower, int upper) {
  if (j < 0 || j >= num_events()) {
    return Status::OutOfRange("event id out of range");
  }
  if (lower < 0 || lower > upper) {
    return Status::InvalidArgument("participation bounds must satisfy 0 <= xi <= eta");
  }
  events_[static_cast<size_t>(j)].lower_bound = lower;
  events_[static_cast<size_t>(j)].upper_bound = upper;
  return Status::OK();
}

Status Instance::set_event_time(EventId j, Interval time) {
  if (j < 0 || j >= num_events()) {
    return Status::OutOfRange("event id out of range");
  }
  if (!time.IsValid()) {
    return Status::InvalidArgument("event holding time must have start < end");
  }
  events_[static_cast<size_t>(j)].time = time;
  conflict_cache_.reset();
  return Status::OK();
}

void Instance::set_event_location(EventId j, Point location) {
  assert(j >= 0 && j < num_events());
  events_[static_cast<size_t>(j)].location = location;
}

EventId Instance::AddEvent(const Event& event,
                           const std::vector<double>& utilities) {
  assert(static_cast<int>(utilities.size()) == num_users());
  const int old_m = num_events();
  const int new_m = old_m + 1;
  std::vector<double> grown(users_.size() * static_cast<size_t>(new_m), 0.0);
  for (int i = 0; i < num_users(); ++i) {
    for (int j = 0; j < old_m; ++j) {
      grown[static_cast<size_t>(i) * static_cast<size_t>(new_m) +
            static_cast<size_t>(j)] = utility(i, j);
    }
    grown[static_cast<size_t>(i) * static_cast<size_t>(new_m) +
          static_cast<size_t>(old_m)] = utilities[static_cast<size_t>(i)];
  }
  utilities_ = std::move(grown);
  events_.push_back(event);
  conflict_cache_.reset();
  return old_m;
}

Status Instance::Validate() const {
  if (utilities_.size() != users_.size() * events_.size()) {
    return Status::Internal("utility matrix dimensions do not match instance");
  }
  for (int i = 0; i < num_users(); ++i) {
    if (users_[static_cast<size_t>(i)].budget < 0.0) {
      return Status::InvalidArgument("user " + std::to_string(i) +
                                     " has a negative travel budget");
    }
  }
  for (int j = 0; j < num_events(); ++j) {
    const Event& e = events_[static_cast<size_t>(j)];
    if (!e.IsValid()) {
      return Status::InvalidArgument(
          "event " + std::to_string(j) +
          " is invalid (needs 0 <= xi <= eta and start < end)");
    }
    if (e.upper_bound > num_users()) {
      // Not an error per se, but xi > n is outright infeasible.
      if (e.lower_bound > num_users()) {
        return Status::Infeasible("event " + std::to_string(j) +
                                  " requires more participants than users exist");
      }
    }
  }
  for (double mu : utilities_) {
    if (mu < 0.0) {
      return Status::InvalidArgument("utility scores must be non-negative");
    }
  }
  return Status::OK();
}

int64_t Instance::TotalLowerBound() const {
  int64_t total = 0;
  for (const Event& e : events_) total += e.lower_bound;
  return total;
}

}  // namespace gepc
