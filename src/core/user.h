#ifndef GEPC_CORE_USER_H_
#define GEPC_CORE_USER_H_

#include "geom/point.h"

namespace gepc {

/// An EBSN user u_i = (l_ui, B_i): a home location and a travel budget
/// bounding the total length of the user's daily tour (Sec. II).
struct User {
  Point location;
  double budget = 0.0;
};

}  // namespace gepc

#endif  // GEPC_CORE_USER_H_
