#ifndef GEPC_CKPT_CHECKPOINT_H_
#define GEPC_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/instance.h"
#include "core/plan.h"

namespace gepc {

/// Durable checkpoint subsystem ("GCKP1"): a checkpoint is one
/// self-contained file capturing the full service state at a snapshot
/// version, so crash recovery can load it and replay only the journal tail
/// past that version instead of the whole op history from genesis.
///
/// File layout (text header, binary-faithful sections):
///
///   GCKP1 <version> <instance_bytes> <plan_bytes> <isum> <psum> <hsum>\n
///   <GEPC1 instance section, exactly instance_bytes long>
///   <GPLN1 plan section, exactly plan_bytes long>
///
/// `isum`/`psum` are FNV-1a-64 checksums (16 hex digits) of the two
/// sections; `hsum` covers the header prefix up to and including `psum`, so
/// a bit flip anywhere in the header is as detectable as one in a section.
/// A loader accepts a file iff the header parses, the file size is exactly
/// header + instance_bytes + plan_bytes, all three checksums match, and
/// both sections parse into a consistent (instance, plan) pair — anything
/// else is a clean, loud failure, never a silently wrong state.
///
/// Publication is atomic: the file is written to `<final>.tmp`, flushed,
/// fsync'd, then renamed into place (and the directory fsync'd), so a crash
/// at any point leaves either the previous checkpoint set or the new file
/// complete — never a half-written checkpoint under the final name.
/// Failure points `ckpt.write`, `ckpt.fsync` and `ckpt.rename`
/// (fault::Inject) cover the three stages.

/// FNV-1a 64-bit checksum of a byte range — stable across platforms, the
/// integrity primitive of the GCKP1 format.
uint64_t CheckpointChecksum(const char* data, size_t size);

/// Canonical file name of the checkpoint at `version` inside a checkpoint
/// directory: "ckpt-<version, 20 digits zero-padded>.gckp" (zero-padding
/// makes lexicographic order = version order).
std::string CheckpointFileName(uint64_t version);

/// A checkpoint file found by ListCheckpoints. `version` is parsed from the
/// file name; the content is NOT validated until LoadCheckpoint.
struct CheckpointRef {
  std::string path;
  uint64_t version = 0;
};

/// One loaded-and-verified checkpoint.
struct CheckpointData {
  Instance instance;
  Plan plan;
  uint64_t version = 0;
};

/// Serializes (instance, plan, version) into the exact bytes of a GCKP1
/// file. Deterministic: the same state always yields the same bytes, which
/// is what the round-trip tests assert.
Result<std::string> EncodeCheckpoint(const Instance& instance,
                                     const Plan& plan, uint64_t version);

/// Parses and fully verifies GCKP1 bytes (header, sizes, checksums, section
/// parses, plan-vs-instance consistency). kInvalidArgument on any defect.
Result<CheckpointData> DecodeCheckpoint(const std::string& bytes);

/// Atomically publishes the checkpoint into `dir` (which must exist) under
/// CheckpointFileName(version): write temp -> flush -> fsync -> rename ->
/// fsync dir. Returns the final path. On any failure (real or injected via
/// ckpt.write / ckpt.fsync / ckpt.rename) the temp file is removed and the
/// directory is left as it was.
Result<std::string> WriteCheckpoint(const std::string& dir,
                                    const Instance& instance, const Plan& plan,
                                    uint64_t version);

/// Reads and verifies the checkpoint file at `path`. kNotFound if it cannot
/// be opened, kInvalidArgument if it is torn/corrupt in any way.
Result<CheckpointData> LoadCheckpoint(const std::string& path);

/// Every "ckpt-*.gckp" file in `dir`, newest (highest version) first.
/// A missing directory yields an empty list, not an error — a service that
/// has never checkpointed has nothing to list.
Result<std::vector<CheckpointRef>> ListCheckpoints(const std::string& dir);

/// "No retention pin": the sentinel pin value that keeps nothing extra.
inline constexpr uint64_t kNoRetentionPin = UINT64_MAX;

/// Deletes all but the newest `retain` checkpoints in `dir`. Returns the
/// refs that survive (newest first). retain < 1 is clamped to 1.
///
/// `pin` is the replication retention floor (docs/replication.md): the
/// newest checkpoint with version <= pin is a registered follower's
/// bootstrap anchor and survives pruning even when it falls outside the
/// newest `retain`, so checkpoint shipping never races file deletion.
/// kNoRetentionPin pins nothing.
Result<std::vector<CheckpointRef>> PruneCheckpoints(const std::string& dir,
                                                    int retain,
                                                    uint64_t pin);
Result<std::vector<CheckpointRef>> PruneCheckpoints(const std::string& dir,
                                                    int retain);

}  // namespace gepc

#endif  // GEPC_CKPT_CHECKPOINT_H_
