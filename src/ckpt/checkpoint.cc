#include "ckpt/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "core/feasibility.h"
#include "data/io.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace gepc {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[] = "GCKP1";
constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".gckp";
constexpr int kVersionDigits = 20;

std::string ChecksumHex(uint64_t sum) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(sum));
  return buffer;
}

/// fsync the file (or directory) at `path`. A checkpoint only counts as
/// durable once both the file's data and its directory entry are on disk.
Status FsyncPath(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) return Status::Internal("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Unavailable("fsync failed: " + path);
  return Status::OK();
}

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("GCKP1 checkpoint: " + what);
}

}  // namespace

uint64_t CheckpointChecksum(const char* data, size_t size) {
  // FNV-1a 64 with the canonical offset basis / prime.
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string CheckpointFileName(uint64_t version) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%0*llu%s", kPrefix, kVersionDigits,
                static_cast<unsigned long long>(version), kSuffix);
  return buffer;
}

Result<std::string> EncodeCheckpoint(const Instance& instance,
                                     const Plan& plan, uint64_t version) {
  std::ostringstream instance_out;
  GEPC_RETURN_IF_ERROR(SaveInstance(instance, instance_out));
  std::ostringstream plan_out;
  GEPC_RETURN_IF_ERROR(SavePlan(plan, plan_out));
  const std::string instance_bytes = instance_out.str();
  const std::string plan_bytes = plan_out.str();

  std::string header = std::string(kMagic) + " " + std::to_string(version) +
                       " " + std::to_string(instance_bytes.size()) + " " +
                       std::to_string(plan_bytes.size()) + " " +
                       ChecksumHex(CheckpointChecksum(instance_bytes.data(),
                                                      instance_bytes.size())) +
                       " " +
                       ChecksumHex(CheckpointChecksum(plan_bytes.data(),
                                                      plan_bytes.size()));
  header += " " + ChecksumHex(CheckpointChecksum(header.data(),
                                                 header.size()));
  header += "\n";
  return header + instance_bytes + plan_bytes;
}

Result<CheckpointData> DecodeCheckpoint(const std::string& bytes) {
  const size_t newline = bytes.find('\n');
  if (newline == std::string::npos) return Invalid("torn header");
  const std::string header = bytes.substr(0, newline);

  std::istringstream fields(header);
  std::string magic;
  uint64_t version = 0;
  uint64_t instance_size = 0;
  uint64_t plan_size = 0;
  std::string instance_sum;
  std::string plan_sum;
  std::string header_sum;
  if (!(fields >> magic >> version >> instance_size >> plan_size >>
        instance_sum >> plan_sum >> header_sum) ||
      magic != kMagic) {
    return Invalid("malformed header");
  }
  std::string trailing;
  if (fields >> trailing) return Invalid("trailing header field");

  // The header checksum covers everything before itself, so a flipped bit
  // in any field (version included) is caught before it can mislead the
  // tail-replay arithmetic.
  const size_t covered = header.rfind(' ');
  if (covered == std::string::npos ||
      ChecksumHex(CheckpointChecksum(header.data(), covered)) != header_sum) {
    return Invalid("header checksum mismatch");
  }

  const size_t body = newline + 1;
  if (bytes.size() != body + instance_size + plan_size) {
    return Invalid("file size does not match header (torn or truncated)");
  }
  const char* instance_data = bytes.data() + body;
  const char* plan_data = instance_data + instance_size;
  if (ChecksumHex(CheckpointChecksum(instance_data, instance_size)) !=
      instance_sum) {
    return Invalid("instance section checksum mismatch");
  }
  if (ChecksumHex(CheckpointChecksum(plan_data, plan_size)) != plan_sum) {
    return Invalid("plan section checksum mismatch");
  }

  std::istringstream instance_in(std::string(instance_data, instance_size));
  auto instance = LoadInstance(instance_in);
  if (!instance.ok()) {
    return Invalid("instance section: " + instance.status().message());
  }
  std::istringstream plan_in(std::string(plan_data, plan_size));
  auto plan = LoadPlan(plan_in);
  if (!plan.ok()) return Invalid("plan section: " + plan.status().message());
  if (plan->num_users() != instance->num_users() ||
      plan->num_events() != instance->num_events()) {
    return Invalid("plan dimensions do not match instance");
  }

  CheckpointData data;
  data.instance = *std::move(instance);
  data.plan = *std::move(plan);
  data.version = version;
  return data;
}

Result<std::string> WriteCheckpoint(const std::string& dir,
                                    const Instance& instance, const Plan& plan,
                                    uint64_t version) {
  static const auto write_ms = obs::Registry::Global().GetHistogram(
      "gepc_ckpt_write_ms", "checkpoint encode + write + fsync + rename");
  static const auto bytes_total = obs::Registry::Global().GetCounter(
      "gepc_ckpt_bytes_written_total", "checkpoint bytes made durable");
  obs::ScopedTimerMs timer(write_ms.get());

  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument("checkpoint dir is not a directory: " +
                                   dir);
  }
  GEPC_ASSIGN_OR_RETURN(const std::string bytes,
                        EncodeCheckpoint(instance, plan, version));

  const std::string final_path =
      (fs::path(dir) / CheckpointFileName(version)).string();
  const std::string tmp_path = final_path + ".tmp";
  auto abort_tmp = [&tmp_path] {
    std::error_code remove_ec;
    fs::remove(tmp_path, remove_ec);
  };

  {
    const Status faulted = fault::Inject("ckpt.write");
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot open checkpoint temp: " + tmp_path);
    }
    if (!faulted.ok()) {
      // Simulated crash mid-write: a strict prefix reaches disk, then the
      // publication fails. The torn bytes live only under the .tmp name.
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() / 2));
      out.close();
      abort_tmp();
      return faulted;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      abort_tmp();
      return Status::Unavailable("checkpoint write failed: " + tmp_path);
    }
  }

  Status fsynced = fault::Inject("ckpt.fsync");
  if (fsynced.ok()) fsynced = FsyncPath(tmp_path, /*directory=*/false);
  if (!fsynced.ok()) {
    abort_tmp();
    return fsynced;
  }

  Status renamed = fault::Inject("ckpt.rename");
  if (renamed.ok()) {
    std::error_code rename_ec;
    fs::rename(tmp_path, final_path, rename_ec);
    if (rename_ec) {
      renamed = Status::Unavailable("checkpoint rename failed: " +
                                    final_path + ": " + rename_ec.message());
    }
  }
  if (!renamed.ok()) {
    abort_tmp();
    return renamed;
  }
  // Make the directory entry durable too; a failure here is logged but not
  // fatal — the rename is already visible and most filesystems order it.
  const Status dir_synced = FsyncPath(dir, /*directory=*/true);
  if (!dir_synced.ok()) {
    GEPC_LOG(Warning) << "checkpoint dir fsync: " << dir_synced.ToString();
  }
  bytes_total->Increment(bytes.size());
  return final_path;
}

Result<CheckpointData> LoadCheckpoint(const std::string& path) {
  static const auto load_ms = obs::Registry::Global().GetHistogram(
      "gepc_ckpt_load_ms", "checkpoint read + verify + parse");
  obs::ScopedTimerMs timer(load_ms.get());
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto decoded = DecodeCheckpoint(buffer.str());
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  path + ": " + decoded.status().message());
  }
  return decoded;
}

Result<std::vector<CheckpointRef>> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointRef> refs;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return refs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0 ||
        name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix) ||
        name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                     kSuffix) != 0) {
      continue;  // foreign file, or a .tmp a crash left behind
    }
    const std::string digits = name.substr(
        std::strlen(kPrefix),
        name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    CheckpointRef ref;
    ref.path = entry.path().string();
    ref.version = std::strtoull(digits.c_str(), nullptr, 10);
    refs.push_back(std::move(ref));
  }
  if (ec) {
    return Status::Internal("cannot list checkpoint dir " + dir + ": " +
                            ec.message());
  }
  std::sort(refs.begin(), refs.end(),
            [](const CheckpointRef& a, const CheckpointRef& b) {
              return a.version > b.version;
            });
  return refs;
}

Result<std::vector<CheckpointRef>> PruneCheckpoints(const std::string& dir,
                                                    int retain, uint64_t pin) {
  retain = std::max(retain, 1);
  GEPC_ASSIGN_OR_RETURN(std::vector<CheckpointRef> refs, ListCheckpoints(dir));
  // The pin anchor: the newest checkpoint a follower pinned at `pin` can
  // bootstrap from. It must survive even when older than the retain window.
  size_t anchor = refs.size();
  if (pin != kNoRetentionPin) {
    for (size_t i = 0; i < refs.size(); ++i) {  // newest first
      if (refs[i].version <= pin) {
        anchor = i;
        break;
      }
    }
  }
  std::vector<CheckpointRef> survivors;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i < static_cast<size_t>(retain) || i == anchor) {
      survivors.push_back(refs[i]);
      continue;
    }
    std::error_code ec;
    fs::remove(refs[i].path, ec);
    if (ec) {
      GEPC_LOG(Warning) << "cannot prune checkpoint " << refs[i].path << ": "
                        << ec.message();
      survivors.push_back(refs[i]);  // keep it; pruning retries next time
    }
  }
  return survivors;
}

Result<std::vector<CheckpointRef>> PruneCheckpoints(const std::string& dir,
                                                    int retain) {
  return PruneCheckpoints(dir, retain, kNoRetentionPin);
}

}  // namespace gepc
