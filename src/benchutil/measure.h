#ifndef GEPC_BENCHUTIL_MEASURE_H_
#define GEPC_BENCHUTIL_MEASURE_H_

#include <cstdint>
#include <utility>

#include "common/memory_tracker.h"
#include "common/timer.h"

namespace gepc {

/// Wall time and peak heap growth of one measured run, matching the paper's
/// "time cost" / "memory cost" columns.
struct Measurement {
  double seconds = 0.0;
  /// Peak live heap bytes above the level at the start of the run. Needs
  /// the gepc_memhooks allocation hooks linked in; 0 otherwise.
  int64_t peak_bytes = 0;
};

/// Runs `fn()` once, returning wall time and peak extra heap. The callable's
/// result (if any) is discarded; capture outputs by reference.
template <typename Fn>
Measurement RunMeasured(Fn&& fn) {
  MemoryTracker::ResetPeak();
  const int64_t baseline = MemoryTracker::CurrentBytes();
  Timer timer;
  std::forward<Fn>(fn)();
  Measurement m;
  m.seconds = timer.ElapsedSeconds();
  m.peak_bytes = MemoryTracker::PeakBytes() - baseline;
  if (m.peak_bytes < 0) m.peak_bytes = 0;
  return m;
}

}  // namespace gepc

#endif  // GEPC_BENCHUTIL_MEASURE_H_
