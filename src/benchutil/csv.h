#ifndef GEPC_BENCHUTIL_CSV_H_
#define GEPC_BENCHUTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace gepc {

/// Minimal RFC-4180-ish CSV writer used by the bench harness to emit
/// machine-readable series next to the human tables (one file per figure,
/// ready for gnuplot/pandas). Quotes fields containing commas, quotes or
/// newlines; doubles embedded quotes.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Number of data rows (excluding the header).
  int num_rows() const { return static_cast<int>(rows_.size()) - 1; }

  std::string ToString() const;
  Status WriteToFile(const std::string& path) const;

  /// Escapes one field per RFC 4180.
  static std::string Escape(const std::string& field);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gepc

#endif  // GEPC_BENCHUTIL_CSV_H_
