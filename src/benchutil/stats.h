#ifndef GEPC_BENCHUTIL_STATS_H_
#define GEPC_BENCHUTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace gepc {

/// Streaming sample statistics for benchmark trials: mean/stddev via
/// Welford's algorithm plus exact percentiles from the retained samples
/// (bench trial counts are small, so retention is cheap).
class SampleStats {
 public:
  void Add(double value) {
    samples_.push_back(value);
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Sample standard deviation (n - 1); 0 with fewer than two samples.
  double stddev() const {
    if (count_ < 2) return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
  }

  double min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Exact percentile by nearest-rank (q in [0, 1]); 0 when empty.
  double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(q, 0.0, 1.0);
    const size_t rank = static_cast<size_t>(
        std::ceil(clamped * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
  }

  double median() const { return percentile(0.5); }

 private:
  std::vector<double> samples_;
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace gepc

#endif  // GEPC_BENCHUTIL_STATS_H_
