#include "benchutil/csv.h"

#include <fstream>

#include "common/logging.h"

namespace gepc {

CsvWriter::CsvWriter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  GEPC_CHECK(cells.size() == rows_.front().size())
      << "CSV row width " << cells.size() << " != header width "
      << rows_.front().size();
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::Escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += Escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << ToString();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace gepc
