#include "benchutil/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/logging.h"

namespace gepc {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> cells) {
  GEPC_CHECK(cells.size() == rows_.front().size())
      << "row has " << cells.size() << " cells, header has "
      << rows_.front().size();
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      out += rows_[r][c];
      out.append(widths[c] - rows_[r][c].size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

void TextTable::Print() const { std::cout << ToString() << std::flush; }

std::string FormatUtility(double value) {
  char buf[64];
  if (std::fabs(value) >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  } else if (std::fabs(value) >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", seconds);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  }
  return buf;
}

std::string FormatMegabytes(int64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace gepc
