#ifndef GEPC_BENCHUTIL_TABLE_H_
#define GEPC_BENCHUTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gepc {

/// Fixed-width text table, used by the paper-reproduction benches to print
/// rows in the same shape as the paper's Tables VI-IX and figure series.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats like the paper: plain for small magnitudes, "5.903e+07"-style
/// scientific for large ones.
std::string FormatUtility(double value);

/// Seconds with 3 meaningful digits (e.g. "0.044", "12383").
std::string FormatSeconds(double seconds);

/// Mebibytes with one decimal.
std::string FormatMegabytes(int64_t bytes);

}  // namespace gepc

#endif  // GEPC_BENCHUTIL_TABLE_H_
