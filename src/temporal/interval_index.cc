#include "temporal/interval_index.h"

#include <algorithm>
#include <limits>

namespace gepc {

namespace {
constexpr Minutes kMinSentinel = std::numeric_limits<Minutes>::min();
}  // namespace

IntervalIndex::IntervalIndex(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  const int n = size();
  order_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order_[static_cast<size_t>(i)] = i;
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    const Interval& ia = intervals_[static_cast<size_t>(a)];
    const Interval& ib = intervals_[static_cast<size_t>(b)];
    if (ia.start != ib.start) return ia.start < ib.start;
    return a < b;
  });
  starts_.resize(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    starts_[static_cast<size_t>(k)] =
        intervals_[static_cast<size_t>(order_[static_cast<size_t>(k)])].start;
  }

  tree_size_ = 1;
  while (tree_size_ < std::max(1, n)) tree_size_ <<= 1;
  max_end_.assign(static_cast<size_t>(2 * tree_size_), kMinSentinel);
  for (int k = 0; k < n; ++k) {
    max_end_[static_cast<size_t>(tree_size_ + k)] =
        intervals_[static_cast<size_t>(order_[static_cast<size_t>(k)])].end;
  }
  for (int node = tree_size_ - 1; node >= 1; --node) {
    max_end_[static_cast<size_t>(node)] =
        std::max(max_end_[static_cast<size_t>(2 * node)],
                 max_end_[static_cast<size_t>(2 * node + 1)]);
  }
}

template <typename Visitor>
void IntervalIndex::Visit(const Interval& query, const Visitor& visit) const {
  const int n = size();
  if (n == 0) return;
  // Conflict: interval.start <= query.end AND interval.end >= query.start.
  // The first condition bounds a prefix of the start-sorted order.
  const int prefix = static_cast<int>(
      std::upper_bound(starts_.begin(), starts_.end(), query.end) -
      starts_.begin());
  if (prefix == 0) return;

  // Recursive descent pruning subtrees with max_end < query.start.
  struct Frame {
    int node;
    int lo;
    int hi;  // leaf range [lo, hi)
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{1, 0, tree_size_});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.lo >= prefix) continue;  // entirely past the prefix
    if (max_end_[static_cast<size_t>(frame.node)] < query.start) continue;
    if (frame.hi - frame.lo == 1) {
      if (frame.lo < n) visit(order_[static_cast<size_t>(frame.lo)]);
      continue;
    }
    const int mid = (frame.lo + frame.hi) / 2;
    // Push right first so the left child is processed first (ascending
    // sorted-order positions; ids are re-sorted by callers that need it).
    stack.push_back(Frame{2 * frame.node + 1, mid, frame.hi});
    stack.push_back(Frame{2 * frame.node, frame.lo, mid});
  }
}

std::vector<int> IntervalIndex::Conflicting(const Interval& query) const {
  std::vector<int> ids;
  Visit(query, [&](int id) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

int IntervalIndex::CountConflicting(const Interval& query) const {
  int count = 0;
  Visit(query, [&](int) { ++count; });
  return count;
}

bool IntervalIndex::AnyConflict(const Interval& query) const {
  return CountConflicting(query) > 0;
}

}  // namespace gepc
