#ifndef GEPC_TEMPORAL_INTERVAL_INDEX_H_
#define GEPC_TEMPORAL_INTERVAL_INDEX_H_

#include <vector>

#include "temporal/interval.h"

namespace gepc {

/// Static interval index answering "which events conflict with this holding
/// time?" in O(log m + k). ConflictGraph materializes the full pairwise
/// relation (O(m^2) bits) — the right trade-off for solver inner loops over
/// a fixed event set — while this index supports ad-hoc queries against
/// arbitrary intervals (e.g. an organizer probing candidate time slots, or
/// the simulator scoring a new event before announcing it) without
/// rebuilding anything.
///
/// Implementation: intervals sorted by start, with an implicit segment tree
/// of subtree-max end times. A query scans the start-sorted prefix with
/// start <= query.end and prunes subtrees whose max end < query.start.
class IntervalIndex {
 public:
  IntervalIndex() = default;

  /// Builds the index over `intervals` (ids are their positions).
  explicit IntervalIndex(std::vector<Interval> intervals);

  int size() const { return static_cast<int>(intervals_.size()); }

  /// Ids of stored intervals conflicting with `query` under the paper's
  /// overlap-or-touch rule, in ascending id order.
  std::vector<int> Conflicting(const Interval& query) const;

  /// Number of stored intervals conflicting with `query`.
  int CountConflicting(const Interval& query) const;

  /// True iff at least one stored interval conflicts with `query`.
  bool AnyConflict(const Interval& query) const;

  /// The stored interval for an id.
  const Interval& interval(int id) const {
    return intervals_[static_cast<size_t>(id)];
  }

 private:
  template <typename Visitor>
  void Visit(const Interval& query, const Visitor& visit) const;

  std::vector<Interval> intervals_;  // original order (by id)
  std::vector<int> order_;           // ids sorted by interval start
  std::vector<Minutes> starts_;      // starts in sorted order
  std::vector<Minutes> max_end_;     // segment tree over sorted order
  int tree_size_ = 0;
};

}  // namespace gepc

#endif  // GEPC_TEMPORAL_INTERVAL_INDEX_H_
