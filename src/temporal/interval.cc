#include "temporal/interval.h"

#include <cstdio>

namespace gepc {

std::string FormatMinutes(Minutes m) {
  int day_min = ((m % (24 * 60)) + 24 * 60) % (24 * 60);
  int h24 = day_min / 60;
  int minute = day_min % 60;
  const char* suffix = h24 < 12 ? "a.m." : "p.m.";
  int h12 = h24 % 12;
  if (h12 == 0) h12 = 12;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d:%02d %s", h12, minute, suffix);
  return buf;
}

std::string FormatInterval(const Interval& iv) {
  return FormatMinutes(iv.start) + "-" + FormatMinutes(iv.end);
}

}  // namespace gepc
