#ifndef GEPC_TEMPORAL_INTERVAL_H_
#define GEPC_TEMPORAL_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

namespace gepc {

/// Minutes since midnight of the planning horizon (the paper uses a 1-day
/// horizon; Sec. II). 32 bits are ample for any horizon we generate.
using Minutes = int32_t;

/// A half-open-in-spirit event holding time [start, end]. The paper's
/// conflict rule (Def. 1, constraint 1) is *strict*: if e_k starts before
/// e_h then e_k must END strictly before e_h STARTS — back-to-back events
/// (tt_k == ts_h) conflict because "no time is left to go from e_k to e_h"
/// (the e_2 / e_4 discussion of Example 1).
struct Interval {
  Minutes start = 0;
  Minutes end = 0;

  bool IsValid() const { return start < end; }

  Minutes Duration() const { return end - start; }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.start == b.start && a.end == b.end;
  }
};

/// True iff a user cannot attend both intervals under the paper's rule:
/// compatible only when one ends strictly before the other starts.
inline bool Conflicts(const Interval& a, const Interval& b) {
  return !(a.end < b.start || b.end < a.start);
}

/// "2:05 p.m."-style rendering for logs and examples.
std::string FormatMinutes(Minutes m);
std::string FormatInterval(const Interval& iv);

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << FormatInterval(iv);
}

}  // namespace gepc

#endif  // GEPC_TEMPORAL_INTERVAL_H_
