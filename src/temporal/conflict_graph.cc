#include "temporal/conflict_graph.h"

#include <algorithm>

namespace gepc {

ConflictGraph::ConflictGraph(const std::vector<Interval>& intervals)
    : n_(static_cast<int>(intervals.size())),
      bits_(static_cast<size_t>(n_) * static_cast<size_t>(n_), 0),
      adjacency_(static_cast<size_t>(n_)) {
  // Sweep over intervals sorted by start time: only pairs whose intervals
  // overlap-or-touch can conflict, so each interval is compared against the
  // active set instead of all n others. Worst case O(n^2) when everything
  // overlaps, O(n log n + k) otherwise (k = number of conflicting pairs).
  std::vector<int> order(static_cast<size_t>(n_));
  for (int i = 0; i < n_; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ia = intervals[static_cast<size_t>(a)];
    const auto& ib = intervals[static_cast<size_t>(b)];
    if (ia.start != ib.start) return ia.start < ib.start;
    return ia.end < ib.end;
  });

  std::vector<int> active;  // indices whose interval may still conflict
  for (int oi : order) {
    const Interval& cur = intervals[static_cast<size_t>(oi)];
    // Retire intervals ending strictly before cur starts; those cannot
    // conflict with cur or anything later (starts are non-decreasing).
    std::erase_if(active, [&](int a) {
      return intervals[static_cast<size_t>(a)].end < cur.start;
    });
    for (int a : active) {
      if (!Conflicts(cur, intervals[static_cast<size_t>(a)])) continue;
      const size_t x = static_cast<size_t>(oi);
      const size_t y = static_cast<size_t>(a);
      bits_[x * static_cast<size_t>(n_) + y] = 1;
      bits_[y * static_cast<size_t>(n_) + x] = 1;
      adjacency_[x].push_back(a);
      adjacency_[y].push_back(oi);
      ++pair_count_;
    }
    active.push_back(oi);
  }

  // Self-conflicts: an event always conflicts with its own time slot.
  for (int i = 0; i < n_; ++i) {
    bits_[static_cast<size_t>(i) * static_cast<size_t>(n_) +
          static_cast<size_t>(i)] = 1;
  }
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
}

double ConflictGraph::ConflictRatio() const {
  if (n_ == 0) return 0.0;
  int conflicted = 0;
  for (int i = 0; i < n_; ++i) {
    if (!adjacency_[static_cast<size_t>(i)].empty()) ++conflicted;
  }
  return static_cast<double>(conflicted) / static_cast<double>(n_);
}

int ConflictGraph::MaxConflictDegree() const {
  int max_degree = 0;
  for (const auto& adj : adjacency_) {
    max_degree = std::max(max_degree, static_cast<int>(adj.size()));
  }
  return max_degree;
}

}  // namespace gepc
