#ifndef GEPC_TEMPORAL_CONFLICT_GRAPH_H_
#define GEPC_TEMPORAL_CONFLICT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "temporal/interval.h"

namespace gepc {

/// Precomputed pairwise time-conflict relation over a set of intervals
/// (events). Solvers query conflicts O(m) times per insertion, so we build
/// the relation once per instance. Stored as adjacency lists plus a flat
/// bitset for O(1) pair lookups.
class ConflictGraph {
 public:
  ConflictGraph() = default;

  /// Builds the graph from `intervals` using the paper's strict conflict
  /// predicate (see temporal/interval.h).
  explicit ConflictGraph(const std::vector<Interval>& intervals);

  /// Number of intervals the graph was built over.
  int size() const { return n_; }

  /// True iff intervals a and b time-conflict. Preconditions: valid indices.
  /// By convention an interval conflicts with itself (a user cannot attend
  /// the same event twice), matching Conflicts(iv, iv) == true.
  bool conflicts(int a, int b) const {
    return bits_[static_cast<size_t>(a) * static_cast<size_t>(n_) +
                 static_cast<size_t>(b)];
  }

  /// All intervals conflicting with `a` (excluding `a` itself).
  const std::vector<int>& neighbors(int a) const {
    return adjacency_[static_cast<size_t>(a)];
  }

  /// Number of conflicting (unordered, distinct) pairs.
  int64_t conflict_pair_count() const { return pair_count_; }

  /// Fraction of events that conflict with at least one other event —
  /// the "conflict ratio" column of the paper's Table IV.
  double ConflictRatio() const;

  /// Size of the largest set of mutually conflicting events containing any
  /// single event's neighborhood — the paper's maxCF in the complexity
  /// analysis is the max number of events that pairwise conflict; we report
  /// the max degree + 1 as a cheap upper-bound proxy.
  int MaxConflictDegree() const;

 private:
  int n_ = 0;
  int64_t pair_count_ = 0;
  std::vector<char> bits_;  // n_ x n_ symmetric matrix (vector<char> for speed)
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace gepc

#endif  // GEPC_TEMPORAL_CONFLICT_GRAPH_H_
