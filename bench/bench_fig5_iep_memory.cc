// Reproduces Figure 5 (a, b): memory cost of the three IEP algorithms on
// the "cut out" datasets — (a) |E| = 50 varying |U|, (b) |U| = 5000 varying
// |E|. Peak heap growth during the incremental repair, via gepc_memhooks.
//
// Expected shape: memory rises with |U| and |E|; the three operations are
// nearly equal with eta-De slightly smallest.

#include <cstdio>
#include <vector>

#include "bench/iep_bench_common.h"
#include "data/generator.h"

namespace gepc {

int RunSeries(const char* title, const Instance& base,
              const std::vector<std::pair<int, int>>& points,
              const bench::BenchFlags& flags) {
  std::printf("-- %s --\n", title);
  TextTable table({"|U|", "|E|", "Mem eta-De (MB)", "Mem xi-In (MB)",
                   "Mem ts-tt (MB)"});
  Rng rng(17);
  for (const auto& [num_users, num_events] : points) {
    const Instance cut = CutOut(base, num_users, num_events, &rng);
    auto initial = SolveGepc(cut, bench::GreedyPreset());
    if (!initial.ok()) return 1;
    const auto eta = bench::RunIepTrials(cut, initial->plan,
                                         bench::MakeEtaDecrease, flags.trials,
                                         201, /*run_regap=*/false);
    const auto xi = bench::RunIepTrials(cut, initial->plan,
                                        bench::MakeXiIncrease, flags.trials,
                                        202, /*run_regap=*/false);
    const auto ts = bench::RunIepTrials(cut, initial->plan,
                                        bench::MakeTimeChange, flags.trials,
                                        203, /*run_regap=*/false);
    table.AddRow({std::to_string(cut.num_users()),
                  std::to_string(cut.num_events()),
                  eta.ok ? FormatMegabytes(eta.iep_peak_bytes) : "-",
                  xi.ok ? FormatMegabytes(xi.iep_peak_bytes) : "-",
                  ts.ok ? FormatMegabytes(ts.iep_peak_bytes) : "-"});
  }
  table.Print();
  std::printf("\n");
  return 0;
}

int Run(const bench::BenchFlags& flags) {
  std::printf("== Figure 5: IEP memory cost (scale %.2f, %d trials) ==\n\n",
              flags.scale, flags.trials);
  auto base = GenerateCutOutBase(/*seed=*/42);
  if (!base.ok()) return 1;
  auto scaled = [&](int v) {
    return std::max(1, static_cast<int>(v * flags.scale));
  };

  std::vector<std::pair<int, int>> vary_users;
  for (int u : {200, 500, 1000, 5000}) {
    vary_users.emplace_back(scaled(u), scaled(50));
  }
  if (RunSeries("Fig 5(a): |E| = 50, varying |U|", *base, vary_users,
                flags)) {
    return 1;
  }

  std::vector<std::pair<int, int>> vary_events;
  for (int e : {20, 50, 100, 200, 500}) {
    vary_events.emplace_back(scaled(5000), scaled(e));
  }
  if (RunSeries("Fig 5(b): |U| = 5000, varying |E|", *base, vary_events,
                flags)) {
    return 1;
  }
  std::printf("Shape check: memory rises with size; the three ops nearly "
              "equal, eta-De smallest (paper Fig. 5).\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
