// Reproduces Table VI: "Algorithms for GEPC on real datasets" — for each of
// the four (synthetic stand-in) city datasets, total utility, time cost and
// memory cost of the GAP-based and greedy algorithms.
//
// Expected shape vs the paper: GAP utility >= Greedy utility (slightly),
// GAP time 1-2 orders of magnitude above Greedy, GAP memory a little above
// Greedy.

#include <cstdio>

#include "bench/bench_common.h"
#include "benchutil/measure.h"
#include "benchutil/table.h"
#include "data/cities.h"
#include "gepc/solver.h"

namespace gepc {

int Run(const bench::BenchFlags& flags) {
  std::printf("== Table VI: GEPC on real datasets (synthetic stand-ins, "
              "scale %.2f) ==\n\n",
              flags.scale);
  TextTable table({"Dataset", "|U|", "|E|", "GAP Utility", "GAP Time (s)",
                   "GAP Mem (MB)", "Greedy Utility", "Greedy Time (s)",
                   "Greedy Mem (MB)"});

  for (const CityPreset& city : PaperCities()) {
    auto instance = GenerateCity(city, /*seed=*/42, flags.scale);
    if (!instance.ok()) {
      std::fprintf(stderr, "generate %s: %s\n", city.name.c_str(),
                   instance.status().ToString().c_str());
      return 1;
    }

    Result<GepcResult> gap = Status::Internal("unset");
    const Measurement gap_run = RunMeasured(
        [&] { gap = SolveGepc(*instance, bench::GapPreset()); });
    Result<GepcResult> greedy = Status::Internal("unset");
    const Measurement greedy_run = RunMeasured(
        [&] { greedy = SolveGepc(*instance, bench::GreedyPreset()); });
    if (!gap.ok() || !greedy.ok()) {
      std::fprintf(stderr, "solve %s failed: gap=%s greedy=%s\n",
                   city.name.c_str(), gap.status().ToString().c_str(),
                   greedy.status().ToString().c_str());
      return 1;
    }

    table.AddRow({city.name, std::to_string(instance->num_users()),
                  std::to_string(instance->num_events()),
                  FormatUtility(gap->total_utility),
                  FormatSeconds(gap_run.seconds),
                  FormatMegabytes(gap_run.peak_bytes),
                  FormatUtility(greedy->total_utility),
                  FormatSeconds(greedy_run.seconds),
                  FormatMegabytes(greedy_run.peak_bytes)});
  }
  table.Print();
  std::printf("\nShape check: GAP utility >= Greedy utility and GAP time >> "
              "Greedy time on every row (paper Table VI).\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
