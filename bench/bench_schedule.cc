// Organizer-side scheduling bench: what fingerprint memoization buys when
// the organizer sweeps the social-affinity weight lambda over the same
// draft problem (the paper-style what-if workflow: search once per lambda,
// compare schedules).
//
// Because cached evaluations are lambda-INDEPENDENT (total utility + raw
// affinity pair count; the weighted score is derived at lookup), one shared
// ScheduleCache serves the whole sweep. The naive baseline runs the
// identical sweep with memoization off, re-solving the oracle for every
// configuration visit. Both modes visit the same configurations and land on
// the same schedules — the acceptance gate is oracle-call AND wall-clock
// reduction >= 3x at equal quality.
//
//   ./bench_schedule [--scale=S] [--trials=N] [--quick] [--json=FILE]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/friendship.h"
#include "sched/schedule.h"

namespace gepc {
namespace bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SweepStats {
  double ms = 0.0;
  int64_t oracle_calls = 0;
  int64_t cache_hits = 0;
  std::vector<double> scores;      // per lambda, for the quality check
  std::vector<double> utilities;   // plain attendance utility per lambda
};

/// Runs the lambda sweep over one problem. `memoize` selects the shared-
/// cache mode vs the naive re-solve baseline.
SweepStats RunSweep(const ScheduleProblem& problem,
                    const FriendshipGraph& graph,
                    const std::vector<double>& lambdas, int threads,
                    bool memoize) {
  SweepStats stats;
  ScheduleCache shared;
  for (const double lambda : lambdas) {
    ScheduleOptions options;
    options.seed = 17;
    options.threads = threads;
    options.restarts = 3;
    options.memoize = memoize;
    // The graph is armed in EVERY leg, lambda = 0 included: cache sharers
    // must agree on the graph so cached pair counts are valid for all of
    // them (at lambda 0 the pairs are counted but weigh nothing).
    options.affinity.graph = &graph;
    options.affinity.lambda = lambda;
    const auto start = std::chrono::steady_clock::now();
    auto result = SolveSchedule(problem, options,
                                memoize ? &shared : nullptr);
    stats.ms += MillisSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "solve (lambda %.2f): %s\n", lambda,
                   result.status().ToString().c_str());
      continue;
    }
    stats.oracle_calls += result->stats.oracle_calls;
    stats.cache_hits += result->stats.cache_hits;
    stats.scores.push_back(result->score);
    stats.utilities.push_back(result->total_utility);
  }
  return stats;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int users = 100 + static_cast<int>(400 * flags.scale);
  const int drafts = 3 + static_cast<int>(2 * flags.scale);
  const int candidates = 3;
  const int threads = 4;
  const std::vector<double> lambdas = {0.0, 0.25, 0.5, 1.0};

  ScheduleGenConfig config;
  config.num_users = users;
  config.num_drafts = drafts;
  config.candidates_per_draft = candidates;
  config.seed = 42;
  const ScheduleProblem problem = GenerateScheduleProblem(config);
  FriendshipConfig fc;
  fc.mean_degree = 6.0;
  fc.seed = 43;
  const FriendshipGraph graph = GenerateFriendshipGraph(problem.users, fc);

  std::printf("bench_schedule: %d users, %d drafts x %d candidates, "
              "%zu-lambda sweep, %d trials\n",
              users, drafts, candidates, lambdas.size(), flags.trials);

  // Trial 0 captures the full stats (calls, hits, per-lambda scores — all
  // deterministic); extra trials only stabilize the timing columns.
  SweepStats memoized =
      RunSweep(problem, graph, lambdas, threads, /*memoize=*/true);
  SweepStats naive =
      RunSweep(problem, graph, lambdas, threads, /*memoize=*/false);
  for (int trial = 1; trial < flags.trials; ++trial) {
    memoized.ms +=
        RunSweep(problem, graph, lambdas, threads, /*memoize=*/true).ms;
    naive.ms +=
        RunSweep(problem, graph, lambdas, threads, /*memoize=*/false).ms;
  }

  // Equal quality is non-negotiable: memoization must never change what the
  // search finds, only how often it pays the oracle.
  bool equal_quality = memoized.scores.size() == naive.scores.size();
  for (size_t i = 0; equal_quality && i < memoized.scores.size(); ++i) {
    equal_quality = memoized.scores[i] == naive.scores[i] &&
                    memoized.utilities[i] == naive.utilities[i];
  }

  const double call_reduction =
      memoized.oracle_calls > 0
          ? static_cast<double>(naive.oracle_calls) /
                static_cast<double>(memoized.oracle_calls)
          : 0.0;
  const double time_speedup = memoized.ms > 0.0 ? naive.ms / memoized.ms : 0.0;

  std::printf("%-26s %12s %12s %12s\n", "mode", "sweep_ms", "oracle", "hits");
  std::printf("%-26s %12.2f %12lld %12lld\n", "naive (memoize off)", naive.ms,
              static_cast<long long>(naive.oracle_calls),
              static_cast<long long>(naive.cache_hits));
  std::printf("%-26s %12.2f %12lld %12lld\n", "memoized (shared cache)",
              memoized.ms, static_cast<long long>(memoized.oracle_calls),
              static_cast<long long>(memoized.cache_hits));
  std::printf("schedule quality:    %s\n",
              equal_quality ? "identical across modes" : "DIVERGED");
  for (size_t i = 0; i < memoized.scores.size(); ++i) {
    std::printf("  lambda %.2f: score %.4f (attendance utility %.4f)\n",
                lambdas[i], memoized.scores[i], memoized.utilities[i]);
  }
  std::printf("oracle-call reduction: %.2fx\n", call_reduction);
  std::printf("sweep time speedup:    %.2fx\n", time_speedup);
  // The acceptance gate (>= 3x at equal quality) is asserted by CI's
  // bench-smoke via the JSON artifact; print it loudly either way.
  if (!equal_quality || call_reduction < 3.0) {
    std::printf("WARNING: memoization gate (>=3x, equal quality) not met\n");
  }

  JsonResults json("schedule");
  json.Add("users", users);
  json.Add("drafts", drafts);
  json.Add("candidates", candidates);
  json.Add("lambdas", static_cast<double>(lambdas.size()));
  json.Add("naive_ms", naive.ms);
  json.Add("memoized_ms", memoized.ms);
  json.Add("naive_oracle_calls", static_cast<double>(naive.oracle_calls));
  json.Add("memoized_oracle_calls",
           static_cast<double>(memoized.oracle_calls));
  json.Add("memoized_cache_hits", static_cast<double>(memoized.cache_hits));
  json.Add("oracle_call_reduction", call_reduction);
  json.Add("time_speedup", time_speedup);
  json.Add("equal_quality", equal_quality ? 1.0 : 0.0);
  if (!json.WriteTo(flags.json_path)) return 1;
  return equal_quality && call_reduction >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace gepc

int main(int argc, char** argv) { return gepc::bench::Main(argc, argv); }
