// Extension bench (Sec. VII future work): batched atomic operations.
// For each city, draw `trials` random batches of 6 mixed operations and
// apply them (a) sequentially in draw order (the paper's repeated-single-op
// semantics) and (b) reordered (removals -> structural -> demands ->
// relaxations + closing re-offer). Reports mean dif, mean utility and the
// re-offer contribution.
//
// Expected shape: reordering never hurts feasibility and ends at equal or
// higher utility because capacity freed by shrinks is visible to the demand
// repairs and the closing re-offer.

#include <cstdio>
#include <vector>

#include "bench/iep_bench_common.h"
#include "benchutil/stats.h"
#include "iep/batch.h"

namespace gepc {

int Run(const bench::BenchFlags& flags) {
  std::printf("== Batched atomic operations: sequential vs reordered "
              "(scale %.2f, %d trials) ==\n\n",
              flags.scale, flags.trials);
  TextTable table({"Dataset", "Mode", "Mean dif", "Mean utility",
                   "Mean re-offer adds"});

  for (const CityPreset& city : PaperCities()) {
    auto instance = GenerateCity(city, /*seed=*/42, flags.scale);
    if (!instance.ok()) return 1;
    auto initial = SolveGepc(*instance, bench::GreedyPreset());
    if (!initial.ok()) return 1;

    SampleStats dif[2];
    SampleStats utility[2];
    SampleStats reoffer;
    Rng rng(4242);
    for (int trial = 0; trial < flags.trials; ++trial) {
      // One batch: two shrinks, two demand raises, two reschedules.
      std::vector<AtomicOp> ops;
      for (int k = 0; k < 6 && static_cast<int>(ops.size()) < 6; ++k) {
        const EventId event = static_cast<EventId>(rng.UniformUint64(
            static_cast<uint64_t>(instance->num_events())));
        AtomicOp op;
        bool drawn = false;
        switch (k % 3) {
          case 0:
            drawn = bench::MakeEtaDecrease(*instance, initial->plan, event,
                                           &rng, &op);
            break;
          case 1:
            drawn = bench::MakeXiIncrease(*instance, initial->plan, event,
                                          &rng, &op);
            break;
          default:
            drawn = bench::MakeTimeChange(*instance, initial->plan, event,
                                          &rng, &op);
            break;
        }
        if (drawn) ops.push_back(op);
      }
      if (ops.empty()) continue;

      for (int mode = 0; mode < 2; ++mode) {
        auto planner = IncrementalPlanner::Create(*instance, initial->plan);
        if (!planner.ok()) return 1;
        auto batch = ApplyBatch(&*planner, ops,
                                mode == 0 ? BatchMode::kSequential
                                          : BatchMode::kReordered);
        if (!batch.ok()) continue;
        dif[mode].Add(static_cast<double>(batch->negative_impact));
        utility[mode].Add(batch->total_utility);
        if (mode == 1) {
          reoffer.Add(static_cast<double>(batch->added_by_final_reoffer));
        }
      }
    }

    for (int mode = 0; mode < 2; ++mode) {
      char dif_str[32];
      char reoffer_str[32];
      std::snprintf(dif_str, sizeof(dif_str), "%.1f", dif[mode].mean());
      std::snprintf(reoffer_str, sizeof(reoffer_str), "%.1f",
                    mode == 1 ? reoffer.mean() : 0.0);
      table.AddRow({mode == 0 ? city.name : "",
                    mode == 0 ? "sequential" : "reordered", dif_str,
                    FormatUtility(utility[mode].mean()),
                    mode == 1 ? reoffer_str : "-"});
    }
  }
  table.Print();
  std::printf("\nShape check: reordered batches end at equal or higher "
              "utility (the closing re-offer reclaims freed capacity) at "
              "comparable dif.\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
