// Microbenchmarks (google-benchmark) for the substrates the planners stand
// on: the simplex LP solver, the min-cost-flow solver, Shmoys-Tardos
// rounding, conflict-graph construction, and tour-cost evaluation.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/feasibility.h"
#include "data/generator.h"
#include "flow/hungarian.h"
#include "flow/min_cost_flow.h"
#include "gap/gap_lp.h"
#include "gap/shmoys_tardos.h"
#include "lp/simplex.h"
#include "temporal/conflict_graph.h"

namespace gepc {
namespace {

GapInstance RandomGap(int machines, int jobs, uint64_t seed) {
  Rng rng(seed);
  GapInstance gap(machines, jobs);
  for (int i = 0; i < machines; ++i) {
    gap.set_capacity(i, rng.UniformDouble(20.0, 40.0));
  }
  for (int j = 0; j < jobs; ++j) {
    for (int i = 0; i < machines; ++i) {
      gap.SetPair(i, j, rng.UniformDouble(1.0, 8.0),
                  rng.UniformDouble(0.0, 1.0));
    }
  }
  return gap;
}

void BM_SimplexGapLp(benchmark::State& state) {
  const GapInstance gap = RandomGap(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)), 7);
  for (auto _ : state) {
    auto frac = SolveGapLpSimplex(gap);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_SimplexGapLp)->Args({5, 20})->Args({10, 40})->Args({20, 80});

void BM_MwuGapLp(benchmark::State& state) {
  const GapInstance gap = RandomGap(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)), 7);
  for (auto _ : state) {
    auto frac = SolveGapLpMwu(gap);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_MwuGapLp)->Args({20, 80})->Args({50, 200})->Args({100, 400});

void BM_ShmoysTardosRounding(benchmark::State& state) {
  const GapInstance gap = RandomGap(20, static_cast<int>(state.range(0)), 9);
  auto frac = SolveGapLpMwu(gap);
  for (auto _ : state) {
    auto rounded = RoundFractional(gap, *frac);
    benchmark::DoNotOptimize(rounded);
  }
}
BENCHMARK(BM_ShmoysTardosRounding)->Arg(50)->Arg(200)->Arg(800);

void BM_MinCostFlowAssignment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    MinCostFlow flow(2 * n + 2);
    for (int w = 0; w < n; ++w) flow.AddEdge(0, 1 + w, 1, 0.0);
    for (int w = 0; w < n; ++w) {
      for (int t = 0; t < n; ++t) {
        flow.AddEdge(1 + w, 1 + n + t, 1, rng.UniformDouble(0.0, 1.0));
      }
    }
    for (int t = 0; t < n; ++t) flow.AddEdge(1 + n + t, 2 * n + 1, 1, 0.0);
    state.ResumeTiming();
    auto result = flow.Solve(0, 2 * n + 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MinCostFlowAssignment)->Arg(20)->Arg(50)->Arg(100);

void BM_HungarianAssignment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(15);
  std::vector<double> cost(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (double& c : cost) c = rng.UniformDouble(0.0, 1.0);
  for (auto _ : state) {
    HungarianSolver solver(n, n, cost);
    auto result = solver.Solve();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HungarianAssignment)->Arg(20)->Arg(50)->Arg(100);

void BM_ConflictGraphBuild(benchmark::State& state) {
  Rng rng(13);
  std::vector<Interval> intervals;
  const int m = static_cast<int>(state.range(0));
  for (int j = 0; j < m; ++j) {
    const Minutes start = static_cast<Minutes>(rng.UniformInt(0, 10000));
    intervals.push_back({start, start + static_cast<Minutes>(
                                            rng.UniformInt(30, 180))});
  }
  for (auto _ : state) {
    ConflictGraph graph(intervals);
    benchmark::DoNotOptimize(graph.conflict_pair_count());
  }
}
BENCHMARK(BM_ConflictGraphBuild)->Arg(100)->Arg(500)->Arg(2000);

void BM_TourCost(benchmark::State& state) {
  GeneratorConfig config;
  config.num_users = 10;
  config.num_events = 20;
  config.mean_eta = 5.0;
  config.mean_xi = 1.0;
  config.seed = 3;
  auto instance = GenerateInstance(config);
  std::vector<EventId> events;
  for (int j = 0; j < static_cast<int>(state.range(0)); ++j) {
    events.push_back(j);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TourCost(*instance, 0, events));
  }
}
BENCHMARK(BM_TourCost)->Arg(2)->Arg(5)->Arg(10);

}  // namespace
}  // namespace gepc

BENCHMARK_MAIN();
