// Empirical approximation-ratio study connecting Sec. III's theory to
// practice: on small random instances where the exact branch-and-bound
// optimum is computable, measure utility(GAP-based)/OPT and
// utility(Greedy)/OPT. The paper guarantees 1/(Uc_max - 1) - O(eps) and
// 1/(2 Uc_max) respectively — worst-case floors far below what either
// algorithm achieves on average.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/table.h"
#include "data/generator.h"
#include "gepc/analysis.h"
#include "gepc/exact.h"
#include "gepc/solver.h"

namespace gepc {

int Run(const bench::BenchFlags& flags) {
  const int instances = std::max(10, flags.trials * 4);
  std::printf("== Empirical approximation ratios vs exact optimum "
              "(%d small instances) ==\n\n",
              instances);

  struct RatioStats {
    double min = 1.0;
    double sum = 0.0;
    int count = 0;
    void Add(double ratio) {
      min = std::min(min, ratio);
      sum += ratio;
      ++count;
    }
  };
  RatioStats gap_stats;
  RatioStats greedy_stats;
  RatioStats gap_floor_stats;
  RatioStats greedy_floor_stats;
  int infeasible = 0;

  for (int k = 0; k < instances; ++k) {
    GeneratorConfig config;
    config.num_users = 7;
    config.num_events = 6;
    config.num_groups = 3;
    config.mean_eta = 3.0;
    config.mean_xi = 1.0;
    config.conflict_ratio = 0.35;
    config.seed = 1000 + static_cast<uint64_t>(k) * 37;
    auto instance = GenerateInstance(config);
    if (!instance.ok()) return 1;
    auto exact = SolveGepcExact(*instance);
    if (!exact.ok()) continue;
    if (!exact->feasible || exact->total_utility <= 0.0) {
      ++infeasible;
      continue;
    }
    GepcOptions options;
    options.algorithm = GepcAlgorithm::kGapBased;
    auto gap = SolveGepc(*instance, options);
    options.algorithm = GepcAlgorithm::kGreedy;
    auto greedy = SolveGepc(*instance, options);
    if (!gap.ok() || !greedy.ok()) continue;
    if (gap->events_below_lower_bound == 0) {
      gap_stats.Add(gap->total_utility / exact->total_utility);
      gap_floor_stats.Add(GapRatioFloor(*instance));
    }
    if (greedy->events_below_lower_bound == 0) {
      greedy_stats.Add(greedy->total_utility / exact->total_utility);
      greedy_floor_stats.Add(GreedyRatioFloor(*instance));
    }
  }

  TextTable table({"Algorithm", "Instances", "Mean ratio", "Min ratio",
                   "Mean proven floor"});
  auto row = [&](const char* name, const RatioStats& stats,
                 const RatioStats& floors) {
    char mean[32];
    char min[32];
    char floor[32];
    std::snprintf(mean, sizeof(mean), "%.3f",
                  stats.count ? stats.sum / stats.count : 0.0);
    std::snprintf(min, sizeof(min), "%.3f", stats.count ? stats.min : 0.0);
    std::snprintf(floor, sizeof(floor), "%.3f",
                  floors.count ? floors.sum / floors.count : 0.0);
    table.AddRow({name, std::to_string(stats.count), mean, min, floor});
  };
  row("GAP-based", gap_stats, gap_floor_stats);
  row("Greedy", greedy_stats, greedy_floor_stats);
  table.Print();
  std::printf("\n(%d instances skipped as infeasible; ratios computed only "
              "when the approximation met every lower bound.)\n",
              infeasible);
  std::printf("Shape check: mean ratios well above the paper's worst-case "
              "floors; GAP-based >= Greedy on average.\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
