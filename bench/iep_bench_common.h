#ifndef GEPC_BENCH_IEP_BENCH_COMMON_H_
#define GEPC_BENCH_IEP_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_common.h"
#include "benchutil/measure.h"
#include "benchutil/table.h"
#include "common/rng.h"
#include "data/cities.h"
#include "gepc/solver.h"
#include "iep/planner.h"

namespace gepc {
namespace bench {

/// Builds one random atomic operation of the benchmark's kind against the
/// current (instance, plan) state; returns false if the drawn event cannot
/// host this operation (caller redraws).
using OpMaker = std::function<bool(const Instance&, const Plan&, EventId,
                                   Rng*, AtomicOp*)>;

/// Shared driver for Tables VII / VIII / IX and Figures 4 / 5: per dataset,
/// `trials` random single-event operations; reports the average utility of
/// the incremental algorithm vs the Re-Greedy and Re-GAP baselines plus the
/// incremental time and peak memory.
struct IepRunStats {
  double iep_utility = 0.0;
  double regreedy_utility = 0.0;
  double regap_utility = 0.0;
  double iep_seconds = 0.0;
  int64_t iep_peak_bytes = 0;
  bool ok = false;
};

inline IepRunStats RunIepTrials(const Instance& instance, const Plan& plan,
                                const OpMaker& make_op, int trials,
                                uint64_t seed, bool run_regap = true) {
  IepRunStats stats;
  Rng rng(seed);
  int completed = 0;
  for (int trial = 0; trial < trials; ++trial) {
    AtomicOp op;
    bool drawn = false;
    for (int attempt = 0; attempt < 50 && !drawn; ++attempt) {
      const EventId event = static_cast<EventId>(
          rng.UniformUint64(static_cast<uint64_t>(instance.num_events())));
      drawn = make_op(instance, plan, event, &rng, &op);
    }
    if (!drawn) continue;

    auto planner = IncrementalPlanner::Create(instance, plan);
    if (!planner.ok()) return stats;

    Result<IepResult> incremental = Status::Internal("unset");
    const Measurement inc_run =
        RunMeasured([&] { incremental = planner->Apply(op); });
    if (!incremental.ok()) continue;

    auto regreedy = planner->ReSolve(op, GreedyPreset(seed + trial));
    if (!regreedy.ok()) continue;
    double regap_utility = 0.0;
    if (run_regap) {
      auto regap = planner->ReSolve(op, GapPreset());
      if (!regap.ok()) continue;
      regap_utility = regap->total_utility;
    }

    stats.iep_utility += incremental->total_utility;
    stats.regreedy_utility += regreedy->total_utility;
    stats.regap_utility += regap_utility;
    stats.iep_seconds += inc_run.seconds;
    stats.iep_peak_bytes = std::max(stats.iep_peak_bytes, inc_run.peak_bytes);
    ++completed;
  }
  if (completed > 0) {
    stats.iep_utility /= completed;
    stats.regreedy_utility /= completed;
    stats.regap_utility /= completed;
    stats.iep_seconds /= completed;
    stats.ok = true;
  }
  return stats;
}

/// Runs a full "Table VII/VIII/IX"-shaped report over the four cities.
inline int RunIepTable(const char* title, const char* op_name,
                       const OpMaker& make_op, const BenchFlags& flags) {
  std::printf("== %s (synthetic stand-ins, scale %.2f, %d trials) ==\n\n",
              title, flags.scale, flags.trials);
  TextTable table({"Dataset", std::string("Utility (") + op_name + ")",
                   "Utility (Re-Greedy)", "Utility (Re-GAP)", "Time (s)",
                   "Memory (MB)"});
  for (const CityPreset& city : PaperCities()) {
    auto instance = GenerateCity(city, /*seed=*/42, flags.scale);
    if (!instance.ok()) return 1;
    auto initial = SolveGepc(*instance, GreedyPreset());
    if (!initial.ok()) return 1;
    const IepRunStats stats = RunIepTrials(*instance, initial->plan, make_op,
                                           flags.trials, /*seed=*/99);
    if (!stats.ok) {
      std::fprintf(stderr, "%s: no completed trials\n", city.name.c_str());
      continue;
    }
    table.AddRow({city.name, FormatUtility(stats.iep_utility),
                  FormatUtility(stats.regreedy_utility),
                  FormatUtility(stats.regap_utility),
                  FormatSeconds(stats.iep_seconds),
                  FormatMegabytes(stats.iep_peak_bytes)});
  }
  table.Print();
  std::printf("\nShape check: incremental utility ~= Re-Greedy, slightly "
              "below Re-GAP on average; incremental time far below a full "
              "re-solve (paper Tables VII-IX).\n");
  return 0;
}

// ---- The three atomic-operation makers ---------------------------------

inline bool MakeEtaDecrease(const Instance& instance, const Plan& plan,
                            EventId event, Rng* rng, AtomicOp* op) {
  const int attendance = plan.attendance(event);
  if (attendance < 1) return false;
  const int new_eta = static_cast<int>(
      rng->UniformUint64(static_cast<uint64_t>(attendance)));
  (void)instance;
  *op = AtomicOp::UpperBoundChange(event, new_eta);
  return true;
}

inline bool MakeXiIncrease(const Instance& instance, const Plan& plan,
                           EventId event, Rng* rng, AtomicOp* op) {
  const int attendance = plan.attendance(event);
  const int eta = instance.event(event).upper_bound;
  if (attendance >= eta) {
    // Event saturated at its capacity: xi cannot rise above eta, so the
    // repair is Algorithm 4's O(1) early-exit. Measure that path rather
    // than skipping the trial (dense cut-outs saturate every event).
    *op = AtomicOp::LowerBoundChange(event, eta);
    return true;
  }
  const int new_xi = std::min(
      eta, attendance + 1 + static_cast<int>(rng->UniformUint64(3)));
  *op = AtomicOp::LowerBoundChange(event, new_xi);
  return true;
}

inline bool MakeTimeChange(const Instance& instance, const Plan& plan,
                           EventId event, Rng* rng, AtomicOp* op) {
  (void)plan;
  const Interval old = instance.event(event).time;
  const Minutes shift =
      static_cast<Minutes>(rng->UniformInt(30, 180)) *
      (rng->Bernoulli(0.5) ? 1 : -1);
  *op = AtomicOp::TimeChange(event, {old.start + shift, old.end + shift});
  return true;
}

}  // namespace bench
}  // namespace gepc

#endif  // GEPC_BENCH_IEP_BENCH_COMMON_H_
