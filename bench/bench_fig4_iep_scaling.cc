// Reproduces Figure 4 (a-h): IEP scalability on the "cut out" datasets.
// For each of the three atomic operations (eta-De, xi-In, ts-tt) we report
// average utility (Fig 4a-4d) and average incremental time (Fig 4e-4h),
// first with |E| = 50 varying |U|, then with |U| = 5000 varying |E|.
//
// Expected shape: time rises with |U| and |E|; eta-De is the cheapest of
// the three operations (its heap is much smaller).

#include <cstdio>
#include <vector>

#include "bench/iep_bench_common.h"
#include "benchutil/csv.h"
#include "data/generator.h"

namespace gepc {

int RunSeries(const char* title, const Instance& base,
              const std::vector<std::pair<int, int>>& points,
              const bench::BenchFlags& flags, const std::string& csv_path) {
  std::printf("-- %s --\n", title);
  TextTable table({"|U|", "|E|", "Util eta-De", "Util xi-In", "Util ts-tt",
                   "Time eta-De (s)", "Time xi-In (s)", "Time ts-tt (s)"});
  CsvWriter csv({"users", "events", "util_eta_de", "util_xi_in",
                 "util_ts_tt", "sec_eta_de", "sec_xi_in", "sec_ts_tt"});
  Rng rng(13);
  for (const auto& [num_users, num_events] : points) {
    const Instance cut = CutOut(base, num_users, num_events, &rng);
    auto initial = SolveGepc(cut, bench::GreedyPreset());
    if (!initial.ok()) return 1;
    // Re-GAP baselines are skipped in the scaling sweep (Fig 4 plots the
    // incremental algorithms only).
    const auto eta = bench::RunIepTrials(cut, initial->plan,
                                         bench::MakeEtaDecrease, flags.trials,
                                         101, /*run_regap=*/false);
    const auto xi = bench::RunIepTrials(cut, initial->plan,
                                        bench::MakeXiIncrease, flags.trials,
                                        102, /*run_regap=*/false);
    const auto ts = bench::RunIepTrials(cut, initial->plan,
                                        bench::MakeTimeChange, flags.trials,
                                        103, /*run_regap=*/false);
    table.AddRow({std::to_string(cut.num_users()),
                  std::to_string(cut.num_events()),
                  eta.ok ? FormatUtility(eta.iep_utility) : "-",
                  xi.ok ? FormatUtility(xi.iep_utility) : "-",
                  ts.ok ? FormatUtility(ts.iep_utility) : "-",
                  eta.ok ? FormatSeconds(eta.iep_seconds) : "-",
                  xi.ok ? FormatSeconds(xi.iep_seconds) : "-",
                  ts.ok ? FormatSeconds(ts.iep_seconds) : "-"});
    csv.AddRow({std::to_string(cut.num_users()),
                std::to_string(cut.num_events()),
                std::to_string(eta.iep_utility),
                std::to_string(xi.iep_utility),
                std::to_string(ts.iep_utility),
                std::to_string(eta.iep_seconds),
                std::to_string(xi.iep_seconds),
                std::to_string(ts.iep_seconds)});
  }
  table.Print();
  std::printf("\n");
  if (!csv_path.empty()) {
    const Status written = csv.WriteToFile(csv_path);
    if (!written.ok()) {
      std::fprintf(stderr, "csv: %s\n", written.ToString().c_str());
    }
  }
  return 0;
}

int Run(const bench::BenchFlags& flags) {
  std::printf("== Figure 4: IEP scalability (scale %.2f, %d trials) ==\n\n",
              flags.scale, flags.trials);
  auto base = GenerateCutOutBase(/*seed=*/42);
  if (!base.ok()) return 1;
  auto scaled = [&](int v) {
    return std::max(1, static_cast<int>(v * flags.scale));
  };

  std::vector<std::pair<int, int>> vary_users;
  for (int u : {200, 500, 1000, 5000}) {
    vary_users.emplace_back(scaled(u), scaled(50));
  }
  if (RunSeries("Fig 4(a-d) left / 4(e-h) left: |E| = 50, varying |U|",
                *base, vary_users, flags,
                flags.csv_prefix.empty()
                    ? ""
                    : flags.csv_prefix + "_fig4_users.csv")) {
    return 1;
  }

  std::vector<std::pair<int, int>> vary_events;
  for (int e : {20, 50, 100, 200, 500}) {
    vary_events.emplace_back(scaled(5000), scaled(e));
  }
  if (RunSeries("Fig 4(a-d) right / 4(e-h) right: |U| = 5000, varying |E|",
                *base, vary_events, flags,
                flags.csv_prefix.empty()
                    ? ""
                    : flags.csv_prefix + "_fig4_events.csv")) {
    return 1;
  }
  std::printf("Shape check: time rises with |U| and |E|; eta-De cheapest "
              "(paper Fig. 4).\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
