#ifndef GEPC_BENCH_BENCH_COMMON_H_
#define GEPC_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gap/shmoys_tardos.h"
#include "gepc/solver.h"

namespace gepc {
namespace bench {

/// Shared command-line knobs for the paper-reproduction harness binaries.
///   --scale=<0..1>   shrink city presets (users/events) proportionally
///   --trials=<n>     random atomic operations per IEP measurement
///   --quick          preset: scale 0.25, trials 3 (CI-friendly)
///   --csv=PREFIX     also write machine-readable CSV series to
///                    PREFIX_<series>.csv (supported by the figure benches)
///   --json=FILE      write a flat JSON object of headline numbers to FILE
///                    (CI perf-trajectory artifact; see JsonResults)
struct BenchFlags {
  double scale = 1.0;
  int trials = 5;
  std::string csv_prefix;
  std::string json_path;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--scale=", 8) == 0) {
        flags.scale = std::atof(arg + 8);
      } else if (std::strncmp(arg, "--trials=", 9) == 0) {
        flags.trials = std::atoi(arg + 9);
      } else if (std::strncmp(arg, "--csv=", 6) == 0) {
        flags.csv_prefix = arg + 6;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        flags.json_path = arg + 7;
      } else if (std::strcmp(arg, "--quick") == 0) {
        flags.scale = 0.25;
        flags.trials = 3;
      }
    }
    if (flags.scale <= 0.0 || flags.scale > 1.0) flags.scale = 1.0;
    if (flags.trials < 1) flags.trials = 1;
    return flags;
  }
};

/// Flat {"bench":"...","results":{"key":number,...}} sink for --json=FILE.
/// Keys are bench-chosen snake_case identifiers (no escaping is applied);
/// one file per binary per run, uploaded as a CI artifact so headline
/// numbers accumulate a machine-readable trajectory across commits.
class JsonResults {
 public:
  explicit JsonResults(std::string bench) : bench_(std::move(bench)) {}

  void Add(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + key + "\":" + buffer;
  }

  /// No-op when `path` is empty (flag not given). Returns false on IO error.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\"bench\":\"%s\",\"results\":{%s}}\n", bench_.c_str(),
                 body_.c_str());
    std::fclose(out);
    return true;
  }

 private:
  std::string bench_;
  std::string body_;
};

/// Solver preset used across all benches: the GAP-based algorithm keeps its
/// exact simplex LP for small reductions and switches to the MWU engine
/// (the scalable Plotkin-Shmoys-Tardos-style path) above ~5000 candidate
/// pairs — mirroring the paper's observation that the GAP algorithm's LP is
/// the scalability bottleneck while keeping full-size cities runnable.
inline GepcOptions GapPreset(uint64_t greedy_seed = 1) {
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGapBased;
  options.gap_based.gap.engine = GapLpEngine::kAuto;
  options.gap_based.gap.auto_simplex_limit = 8000;
  options.gap_based.gap.lp.max_candidates_per_job = 20;
  options.greedy.seed = greedy_seed;  // greedy fallback
  return options;
}

inline GepcOptions GreedyPreset(uint64_t seed = 1) {
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGreedy;
  options.greedy.seed = seed;
  return options;
}

}  // namespace bench
}  // namespace gepc

#endif  // GEPC_BENCH_BENCH_COMMON_H_
