// LP-core microbench: the flat arena-backed tableau on paper-sized GAP
// relaxations (the LP the GAP-based GEPC algorithm solves per event-copy
// batch). Reports per-solve wall time for four configurations — Dantzig
// with a fresh arena per solve, Dantzig with a shared workspace, Bland,
// and steepest-edge pricing — plus the arena allocation counts that
// demonstrate the O(1)-allocations reuse contract.
//
//   ./bench_lp_core [--scale=S] [--trials=N] [--quick] [--json=FILE]
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace gepc {
namespace bench {
namespace {

/// GAP-relaxation-shaped LP, mirroring gap_lp.cc's construction: one x_ij
/// per candidate (machine, job) pair in job-major order, an equality row
/// per job (assign exactly once) and a capacity row per machine. Costs in
/// [0, 1], processing times ~ travel distances — the shapes the reduction
/// of Sec. III-A produces (machines = users, jobs = event copies).
LinearProgram MakeGapShapedLp(uint64_t seed, int machines, int jobs,
                              int candidates_per_job) {
  Rng rng(seed);
  struct Var {
    int machine;
    int job;
  };
  std::vector<Var> vars;
  std::vector<std::vector<int>> vars_of_machine(
      static_cast<size_t>(machines));
  for (int j = 0; j < jobs; ++j) {
    for (int k = 0; k < candidates_per_job; ++k) {
      const int i = static_cast<int>(rng.UniformInt(0, machines - 1));
      const int v = static_cast<int>(vars.size());
      vars.push_back(Var{i, j});
      vars_of_machine[static_cast<size_t>(i)].push_back(v);
    }
  }

  LinearProgram lp(LinearProgram::Sense::kMinimize,
                   static_cast<int>(vars.size()));
  for (size_t v = 0; v < vars.size(); ++v) {
    lp.set_objective(static_cast<int>(v), rng.UniformDouble());  // 1 - mu
  }
  int cursor = 0;
  for (int j = 0; j < jobs; ++j) {
    std::vector<std::pair<int, double>> terms;
    for (int k = 0; k < candidates_per_job; ++k) {
      terms.emplace_back(cursor++, 1.0);
    }
    lp.AddConstraint(std::move(terms), Relation::kEqual, 1.0);
  }
  for (int i = 0; i < machines; ++i) {
    if (vars_of_machine[static_cast<size_t>(i)].empty()) continue;
    std::vector<std::pair<int, double>> terms;
    for (int v : vars_of_machine[static_cast<size_t>(i)]) {
      terms.emplace_back(v, rng.UniformDouble(0.5, 6.0));  // 2 d(u_i, e_j)
    }
    // (2 + eps) B_i, generous enough that most instances are feasible.
    lp.AddConstraint(std::move(terms), Relation::kLessEqual,
                     rng.UniformDouble(8.0, 30.0));
  }
  return lp;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct RunStats {
  double total_ms = 0.0;
  int solved = 0;
  int64_t allocations = 0;
};

RunStats RunSolves(const std::vector<LinearProgram>& programs,
                   SimplexPivotRule rule, bool reuse_workspace) {
  SimplexOptions options;
  options.pivot_rule = rule;
  RunStats stats;
  LpWorkspace shared;
  for (const LinearProgram& lp : programs) {
    LpWorkspace local;
    LpWorkspace& workspace = reuse_workspace ? shared : local;
    const auto start = std::chrono::steady_clock::now();
    const auto result = SolveLp(lp, options, &workspace);
    stats.total_ms += MillisSince(start);
    if (result.ok()) ++stats.solved;
    if (!reuse_workspace) stats.allocations += workspace.allocation_count();
  }
  if (reuse_workspace) stats.allocations = shared.allocation_count();
  return stats;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int machines = 5 + static_cast<int>(60 * flags.scale);
  const int jobs = 10 + static_cast<int>(150 * flags.scale);
  const int candidates_per_job = 6;
  const int solves = flags.trials * 8;

  std::vector<LinearProgram> programs;
  programs.reserve(static_cast<size_t>(solves));
  for (int s = 0; s < solves; ++s) {
    programs.push_back(
        MakeGapShapedLp(0xBEEFu + s, machines, jobs, candidates_per_job));
  }

  std::printf("bench_lp_core: %d GAP-shaped LPs, %d machines x %d jobs, "
              "%d candidates/job (%d vars, %d rows each)\n",
              solves, machines, jobs, candidates_per_job,
              programs.front().num_vars(),
              programs.front().num_constraints());

  const RunStats dantzig_fresh = RunSolves(
      programs, SimplexPivotRule::kDantzig, /*reuse_workspace=*/false);
  const RunStats dantzig_reuse = RunSolves(
      programs, SimplexPivotRule::kDantzig, /*reuse_workspace=*/true);
  const RunStats bland = RunSolves(programs, SimplexPivotRule::kBland,
                                   /*reuse_workspace=*/true);
  const RunStats steepest = RunSolves(
      programs, SimplexPivotRule::kSteepestEdge, /*reuse_workspace=*/true);

  const auto per_solve = [&](const RunStats& stats) {
    return stats.total_ms / static_cast<double>(solves);
  };
  const double reuse_speedup = dantzig_fresh.total_ms / dantzig_reuse.total_ms;

  std::printf("%-24s %10s %10s %8s %8s\n", "config", "total_ms", "ms/solve",
              "solved", "allocs");
  const auto row = [&](const char* name, const RunStats& stats) {
    std::printf("%-24s %10.2f %10.3f %8d %8lld\n", name, stats.total_ms,
                per_solve(stats), stats.solved,
                static_cast<long long>(stats.allocations));
  };
  row("dantzig (fresh arena)", dantzig_fresh);
  row("dantzig (reused arena)", dantzig_reuse);
  row("bland (reused arena)", bland);
  row("steepest (reused arena)", steepest);
  std::printf("workspace reuse speedup: %.2fx\n", reuse_speedup);

  JsonResults json("lp_core");
  json.Add("solves", solves);
  json.Add("lp_vars", programs.front().num_vars());
  json.Add("lp_rows", programs.front().num_constraints());
  json.Add("dantzig_fresh_ms_per_solve", per_solve(dantzig_fresh));
  json.Add("dantzig_reuse_ms_per_solve", per_solve(dantzig_reuse));
  json.Add("bland_ms_per_solve", per_solve(bland));
  json.Add("steepest_ms_per_solve", per_solve(steepest));
  json.Add("reuse_speedup", reuse_speedup);
  json.Add("allocs_without_reuse",
           static_cast<double>(dantzig_fresh.allocations));
  json.Add("allocs_with_reuse",
           static_cast<double>(dantzig_reuse.allocations));
  if (!json.WriteTo(flags.json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gepc

int main(int argc, char** argv) { return gepc::bench::Main(argc, argv); }
