// The introduction's motivating comparison (Sec. I, not a numbered table in
// the paper): what happens when the minimum-participant requirement is
// ignored? For each city we compare GEPC (greedy two-step) against the GEP
// baseline of [4] (no lower bounds) and a random-assignment baseline, on
//   * nominal utility (what GEP thinks it achieves),
//   * events left below xi (events that cannot actually be held),
//   * effective utility (utility surviving the cancellation of
//     under-subscribed events).
//
// Expected shape: GEP shows the highest nominal utility but strands events
// below xi; GEPC strands (near) none.

#include <cstdio>

#include "bench/bench_common.h"
#include "benchutil/table.h"
#include "data/cities.h"
#include "gepc/baselines.h"
#include "gepc/solver.h"

namespace gepc {

int Run(const bench::BenchFlags& flags) {
  std::printf("== Motivation: minimum-participant requirements "
              "(scale %.2f) ==\n\n",
              flags.scale);
  TextTable table({"Dataset", "Planner", "Nominal utility",
                   "Events below xi", "Effective utility"});
  for (const CityPreset& city : PaperCities()) {
    auto instance = GenerateCity(city, /*seed=*/42, flags.scale);
    if (!instance.ok()) return 1;

    auto gepc = SolveGepc(*instance, bench::GreedyPreset());
    auto gep = SolveGepNoLowerBounds(*instance);
    auto single = SolveSingleAssignmentOptimal(*instance);
    auto random = SolveRandomBaseline(*instance, /*seed=*/7);
    if (!gepc.ok() || !gep.ok() || !single.ok() || !random.ok()) return 1;

    table.AddRow({city.name, "GEPC (greedy)",
                  FormatUtility(gepc->total_utility),
                  std::to_string(gepc->events_below_lower_bound),
                  FormatUtility(EffectiveUtility(*instance, gepc->plan))});
    table.AddRow({"", "GEP (no xi) [4]", FormatUtility(gep->total_utility),
                  std::to_string(gep->events_below_lower_bound),
                  FormatUtility(gep->effective_utility)});
    table.AddRow({"", "1-event/user OPT [3]",
                  FormatUtility(single->total_utility),
                  std::to_string(single->events_below_lower_bound),
                  FormatUtility(single->effective_utility)});
    table.AddRow({"", "Random", FormatUtility(random->total_utility),
                  std::to_string(random->events_below_lower_bound),
                  FormatUtility(random->effective_utility)});
  }
  table.Print();
  std::printf("\nShape check: GEP/Random leave events below xi (those events "
              "cannot be held); GEPC leaves none or almost none; the "
              "single-event-per-user optimum of [3] trails multi-event "
              "planning on utility.\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
