// Shard-maintenance bench: what dynamic rebalancing buys under churn.
//
// Both modes must expose a CORRECT partition after every applied op (the
// planning service's contract). The static baseline gets one by re-running
// the full centroidal-Voronoi partitioner from scratch (bisection seeds +
// full Lloyd) whenever an op can change the partition; the dynamic mode
// keeps the same partition current with ShardTracker's incremental
// boundary-user migration plus a periodic warm-started rebalance. The
// headline number is the maintenance throughput ratio — the acceptance gate
// expects dynamic >= 1.5x static.
//
//   ./bench_rebalance [--scale=S] [--trials=N] [--quick] [--json=FILE]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "iep/planner.h"
#include "service/torture.h"
#include "shard/partition.h"
#include "shard/rebalance.h"
#include "shard/voronoi.h"
#include "spatial/reachability.h"

namespace gepc {
namespace bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ModeStats {
  double maintenance_ms = 0.0;  // partition upkeep only (not planner Apply)
  int ops_applied = 0;
  uint64_t migrations = 0;
  uint64_t full_partitions = 0;  // from-scratch partitioner runs
  uint64_t rebalances = 0;
  double final_skew = 0.0;
};

/// Replays `ops` through a fresh planner, keeping a correct partition after
/// every applied op. `dynamic_mode` selects incremental migration + warm
/// rebalance vs a cold full partition per op.
ModeStats Replay(const Instance& instance, const Plan& plan,
                 const std::vector<AtomicOp>& ops, int num_shards,
                 bool dynamic_mode, int rebalance_every) {
  ModeStats stats;
  auto planner = IncrementalPlanner::Create(instance, plan);
  if (!planner.ok()) return stats;

  ShardTracker tracker(planner->instance(), num_shards);
  ShardPartition static_partition = tracker.partition();

  for (const AtomicOp& op : ops) {
    if (!planner->Apply(op).ok()) continue;
    ++stats.ops_applied;
    const auto start = std::chrono::steady_clock::now();
    if (dynamic_mode) {
      if (!tracker.ApplyMigration(planner->instance(), op).ok()) continue;
      if (rebalance_every > 0 && stats.ops_applied % rebalance_every == 0) {
        auto report = tracker.Rebalance(planner->instance());
        if (report.ok()) ++stats.rebalances;
      }
    } else {
      // No incremental path: the only way to a current partition is the
      // full partitioner (cold — bisection seeds, full Lloyd).
      const ReachabilityFilter filter(planner->instance());
      static_partition = PartitionInstanceVoronoi(planner->instance(),
                                                  filter, num_shards);
      ++stats.full_partitions;
    }
    stats.maintenance_ms += MillisSince(start);
  }
  if (dynamic_mode) {
    stats.migrations = tracker.stats().migrations;
    stats.full_partitions = tracker.stats().full_rebuilds;
    stats.final_skew = ShardTracker::StructuralSkew(tracker.partition());
  } else {
    stats.final_skew = ShardTracker::StructuralSkew(static_partition);
  }
  return stats;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int users = 200 + static_cast<int>(1800 * flags.scale);
  const int events = 30 + static_cast<int>(170 * flags.scale);
  const int ops_count = 60 * flags.trials;
  const int num_shards = 4;
  const int rebalance_every = 25;

  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = 42;
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 instance.status().message().c_str());
    return 1;
  }
  auto solved = SolveGepc(*instance, GreedyPreset());
  if (!solved.ok()) {
    std::fprintf(stderr, "solve: %s\n", solved.status().message().c_str());
    return 1;
  }

  // One shared trace (generated against a throwaway planner — generation
  // advances it), replayed identically in both modes.
  std::vector<AtomicOp> ops;
  {
    auto scratch = IncrementalPlanner::Create(*instance, solved->plan);
    if (!scratch.ok()) return 1;
    ops = GenerateTortureOps(&*scratch, ops_count, /*seed=*/7);
  }

  std::printf("bench_rebalance: %d users, %d events, %d shards, %zu ops\n",
              users, events, num_shards, ops.size());

  const ModeStats dynamic_stats =
      Replay(*instance, solved->plan, ops, num_shards,
             /*dynamic_mode=*/true, rebalance_every);
  const ModeStats static_stats =
      Replay(*instance, solved->plan, ops, num_shards,
             /*dynamic_mode=*/false, rebalance_every);

  const auto throughput = [](const ModeStats& stats) {
    return stats.maintenance_ms > 0.0
               ? 1000.0 * stats.ops_applied / stats.maintenance_ms
               : 0.0;
  };
  const double dynamic_tput = throughput(dynamic_stats);
  const double static_tput = throughput(static_stats);
  const double speedup =
      static_tput > 0.0 ? dynamic_tput / static_tput : 0.0;

  std::printf("%-28s %12s %12s %10s %8s\n", "mode", "maint_ms", "ops/sec",
              "rebuilds", "skew");
  std::printf("%-28s %12.2f %12.0f %10llu %8.3f\n", "static (full per op)",
              static_stats.maintenance_ms, static_tput,
              static_cast<unsigned long long>(static_stats.full_partitions),
              static_stats.final_skew);
  std::printf("%-28s %12.2f %12.0f %10llu %8.3f\n",
              "dynamic (migrate+rebalance)", dynamic_stats.maintenance_ms,
              dynamic_tput,
              static_cast<unsigned long long>(dynamic_stats.full_partitions),
              dynamic_stats.final_skew);
  std::printf("dynamic stats: %llu migrations, %llu rebalances\n",
              static_cast<unsigned long long>(dynamic_stats.migrations),
              static_cast<unsigned long long>(dynamic_stats.rebalances));
  std::printf("maintenance speedup: %.2fx dynamic over static\n", speedup);

  JsonResults json("rebalance");
  json.Add("users", users);
  json.Add("events", events);
  json.Add("shards", num_shards);
  json.Add("ops_applied", dynamic_stats.ops_applied);
  json.Add("static_maintenance_ms", static_stats.maintenance_ms);
  json.Add("dynamic_maintenance_ms", dynamic_stats.maintenance_ms);
  json.Add("static_ops_per_sec", static_tput);
  json.Add("dynamic_ops_per_sec", dynamic_tput);
  json.Add("dynamic_over_static_speedup", speedup);
  json.Add("dynamic_migrations",
           static_cast<double>(dynamic_stats.migrations));
  json.Add("dynamic_rebalances",
           static_cast<double>(dynamic_stats.rebalances));
  json.Add("dynamic_final_skew", dynamic_stats.final_skew);
  json.Add("static_final_skew", static_stats.final_skew);
  if (!json.WriteTo(flags.json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gepc

int main(int argc, char** argv) { return gepc::bench::Main(argc, argv); }
