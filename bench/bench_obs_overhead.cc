// Observability-layer overhead bench: quantifies the src/obs cost model.
// Three measurements:
//
//   1. raw ns/call of the primitives: Counter::Increment (never gated),
//      Histogram::Observe with observability on, and Histogram::Observe +
//      ScopedTimerMs with observability off (one relaxed atomic load, no
//      clock reads) — the "~0 overhead when idle" contract;
//   2. journaled PlanningService apply throughput with the full metric set
//      recording vs. obs::SetEnabled(false) — the end-to-end regression an
//      operator pays for live latency histograms. Acceptance bar: < 2%;
//   3. the same comparison through SolveSharded, covering the solver-phase
//      timers (menu build, LP, flow, partition/solve/merge).
//
// Run with --json=FILE to emit the headline numbers for the CI perf
// trajectory (see docs/observability.md).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "obs/metrics.h"
#include "service/planning_service.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace {

double CounterNsPerCall(int iterations) {
  obs::Counter counter;
  Timer timer;
  for (int i = 0; i < iterations; ++i) counter.Increment();
  const double ns = timer.ElapsedMillis() * 1e6 / iterations;
  // Defeat dead-code elimination: the final value feeds a volatile sink.
  volatile uint64_t sink = counter.value();
  (void)sink;
  return ns;
}

double ObserveNsPerCall(int iterations) {
  obs::Histogram histogram(obs::Histogram::DefaultLatencyBucketsMs());
  Timer timer;
  for (int i = 0; i < iterations; ++i) {
    histogram.Observe(0.25 + static_cast<double>(i % 7));
  }
  const double ns = timer.ElapsedMillis() * 1e6 / iterations;
  volatile uint64_t sink = histogram.count();
  (void)sink;
  return ns;
}

double ScopedTimerNsPerCall(int iterations) {
  obs::Histogram histogram(obs::Histogram::DefaultLatencyBucketsMs());
  Timer timer;
  for (int i = 0; i < iterations; ++i) {
    obs::ScopedTimerMs scoped(&histogram);
  }
  const double ns = timer.ElapsedMillis() * 1e6 / iterations;
  volatile uint64_t sink = histogram.count();
  (void)sink;
  return ns;
}

double ServiceOpsPerSec(const Instance& instance, const Plan& plan,
                        int total_ops, const std::string& journal_path) {
  std::remove(journal_path.c_str());
  ServiceOptions options;
  options.journal_path = journal_path;
  auto service = PlanningService::Create(instance, plan, options);
  if (!service.ok()) return 0.0;
  Rng rng(17);
  Timer timer;
  for (int i = 0; i < total_ops; ++i) {
    const UserId user =
        static_cast<UserId>(rng.UniformUint64(instance.num_users()));
    (*service)->Apply(
        AtomicOp::BudgetChange(user, rng.UniformDouble(20.0, 160.0)));
  }
  const double seconds = timer.ElapsedMillis() / 1000.0;
  (*service)->Shutdown();
  std::remove(journal_path.c_str());
  return seconds > 0.0 ? total_ops / seconds : 0.0;
}

double ShardedSolveMs(const Instance& instance) {
  ShardedGepcOptions options;
  options.shards = 4;
  options.threads = 2;
  Timer timer;
  auto result = SolveSharded(instance, options);
  if (!result.ok()) return -1.0;
  return timer.ElapsedMillis();
}

}  // namespace
}  // namespace gepc

int main(int argc, char** argv) {
  using namespace gepc;
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  bench::JsonResults results("obs_overhead");
  const int prim_iters = static_cast<int>(2e7 * flags.scale) + 1000;
  const int service_ops = static_cast<int>(20000 * flags.scale) + 500;

  std::printf("observability-layer overhead (scale=%.2f)\n\n", flags.scale);

  // --- 1. raw primitive cost ----------------------------------------------
  obs::SetEnabled(true);
  const double counter_ns = CounterNsPerCall(prim_iters);
  const double observe_on_ns = ObserveNsPerCall(prim_iters);
  const double timer_on_ns = ScopedTimerNsPerCall(prim_iters / 4);
  obs::SetEnabled(false);
  const double observe_off_ns = ObserveNsPerCall(prim_iters);
  const double timer_off_ns = ScopedTimerNsPerCall(prim_iters);
  obs::SetEnabled(true);

  std::printf("%-38s %10.2f ns/call\n", "Counter::Increment", counter_ns);
  std::printf("%-38s %10.2f ns/call\n", "Histogram::Observe, obs on",
              observe_on_ns);
  std::printf("%-38s %10.2f ns/call\n", "ScopedTimerMs, obs on", timer_on_ns);
  std::printf("%-38s %10.2f ns/call\n", "Histogram::Observe, obs off",
              observe_off_ns);
  std::printf("%-38s %10.2f ns/call\n\n", "ScopedTimerMs, obs off",
              timer_off_ns);
  results.Add("counter_ns", counter_ns);
  results.Add("observe_on_ns", observe_on_ns);
  results.Add("observe_off_ns", observe_off_ns);
  results.Add("scoped_timer_on_ns", timer_on_ns);
  results.Add("scoped_timer_off_ns", timer_off_ns);

  // --- 2. end-to-end service throughput -----------------------------------
  GeneratorConfig config;
  config.num_users = static_cast<int>(400 * flags.scale) + 50;
  config.num_events = static_cast<int>(24 * flags.scale) + 6;
  config.seed = 11;
  auto instance = GenerateInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  auto solved = SolveGepc(*instance);
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status().ToString().c_str());
    return 1;
  }
  const std::string journal = "/tmp/bench_obs_overhead.gops";

  obs::SetEnabled(false);
  const double ops_off =
      ServiceOpsPerSec(*instance, solved->plan, service_ops, journal);
  obs::SetEnabled(true);
  const double ops_on =
      ServiceOpsPerSec(*instance, solved->plan, service_ops, journal);

  std::printf("%-38s %10.0f ops/s\n", "service apply, obs off", ops_off);
  std::printf("%-38s %10.0f ops/s\n", "service apply, obs on", ops_on);
  results.Add("service_ops_per_sec_off", ops_off);
  results.Add("service_ops_per_sec_on", ops_on);
  if (ops_off > 0.0 && ops_on > 0.0) {
    const double delta_pct = 100.0 * (ops_on - ops_off) / ops_off;
    std::printf("%-38s %+9.2f %%  (bar: > -2%%)\n\n", "throughput delta",
                delta_pct);
    results.Add("service_delta_pct", delta_pct);
  }

  // --- 3. sharded solve ----------------------------------------------------
  obs::SetEnabled(false);
  const double solve_off_ms = ShardedSolveMs(*instance);
  obs::SetEnabled(true);
  const double solve_on_ms = ShardedSolveMs(*instance);
  std::printf("%-38s %10.2f ms\n", "SolveSharded, obs off", solve_off_ms);
  std::printf("%-38s %10.2f ms\n", "SolveSharded, obs on", solve_on_ms);
  results.Add("sharded_solve_off_ms", solve_off_ms);
  results.Add("sharded_solve_on_ms", solve_on_ms);

  if (!results.WriteTo(flags.json_path)) return 1;
  return 0;
}
