// Reproduces Table VII: "Results of eta-De on real datasets" — average
// utility of the incremental eta-decrease repair (Algorithm 3) vs re-running
// the greedy (Re-Greedy) and GAP-based (Re-GAP) planners from scratch, plus
// the incremental step's time and memory, on the four city datasets.

#include "bench/iep_bench_common.h"

int main(int argc, char** argv) {
  const auto flags = gepc::bench::BenchFlags::Parse(argc, argv);
  return gepc::bench::RunIepTable("Table VII: eta-De on real datasets",
                                  "eta-De", gepc::bench::MakeEtaDecrease,
                                  flags);
}
