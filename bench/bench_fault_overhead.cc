// Fault-layer overhead bench: quantifies the "zero overhead when disabled"
// contract of src/fault. Three measurements:
//
//   1. raw ns/call of fault::Inject with nothing armed (one relaxed atomic
//      load), with an *unrelated* point armed (registry lock taken), and
//      with the point armed but outside its window (skip=inf);
//   2. journaled PlanningService apply throughput with the registry empty
//      vs. an unrelated point armed — the end-to-end regression an operator
//      would see from merely linking the fault layer;
//   3. the same solve through SolveSharded, covering the shard.solve /
//      shard.slow instrumentation.
//
// The acceptance bar of the PR that introduced the layer: < 2% service
// throughput regression with faults disabled.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/generator.h"
#include "fault/fault.h"
#include "gepc/solver.h"
#include "service/planning_service.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace {

double InjectNsPerCall(int iterations) {
  Timer timer;
  // volatile sink so the loop cannot be optimised away.
  volatile bool sink = false;
  for (int i = 0; i < iterations; ++i) {
    sink = fault::Inject("bench.overhead.point").ok();
  }
  (void)sink;
  return timer.ElapsedMillis() * 1e6 / iterations;
}

double ServiceOpsPerSec(const Instance& instance, const Plan& plan,
                        int total_ops, const std::string& journal_path) {
  std::remove(journal_path.c_str());
  ServiceOptions options;
  options.journal_path = journal_path;
  auto service = PlanningService::Create(instance, plan, options);
  if (!service.ok()) return 0.0;
  Rng rng(17);
  Timer timer;
  for (int i = 0; i < total_ops; ++i) {
    const UserId user =
        static_cast<UserId>(rng.UniformUint64(instance.num_users()));
    (*service)->Apply(
        AtomicOp::BudgetChange(user, rng.UniformDouble(20.0, 160.0)));
  }
  const double seconds = timer.ElapsedMillis() / 1000.0;
  (*service)->Shutdown();
  std::remove(journal_path.c_str());
  return seconds > 0.0 ? total_ops / seconds : 0.0;
}

double ShardedSolveMs(const Instance& instance) {
  ShardedGepcOptions options;
  options.shards = 4;
  options.threads = 2;
  Timer timer;
  auto result = SolveSharded(instance, options);
  if (!result.ok()) return -1.0;
  return timer.ElapsedMillis();
}

}  // namespace
}  // namespace gepc

int main(int argc, char** argv) {
  using namespace gepc;
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  const int inject_iters = static_cast<int>(2e7 * flags.scale) + 1000;
  const int service_ops = static_cast<int>(20000 * flags.scale) + 500;

  std::printf("fault-layer overhead (scale=%.2f)\n\n", flags.scale);

  // --- 1. raw injection-site cost -----------------------------------------
  fault::Registry::Global().Reset();
  const double disabled_ns = InjectNsPerCall(inject_iters);

  fault::FaultSpec unrelated;
  fault::Registry::Global().Arm("bench.unrelated.point", unrelated);
  const double enabled_other_ns = InjectNsPerCall(inject_iters);

  fault::FaultSpec dormant;
  dormant.skip = UINT64_MAX;  // armed, but the window never opens
  fault::Registry::Global().Arm("bench.overhead.point", dormant);
  const double armed_dormant_ns = InjectNsPerCall(inject_iters / 4);
  fault::Registry::Global().Reset();

  std::printf("%-38s %10.2f ns/call\n", "Inject, registry empty",
              disabled_ns);
  std::printf("%-38s %10.2f ns/call\n", "Inject, unrelated point armed",
              enabled_other_ns);
  std::printf("%-38s %10.2f ns/call\n\n", "Inject, armed but dormant",
              armed_dormant_ns);

  // --- 2. end-to-end service throughput -----------------------------------
  GeneratorConfig config;
  config.num_users = static_cast<int>(400 * flags.scale) + 50;
  config.num_events = static_cast<int>(24 * flags.scale) + 6;
  config.seed = 11;
  auto instance = GenerateInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  auto solved = SolveGepc(*instance);
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status().ToString().c_str());
    return 1;
  }
  const std::string journal = "/tmp/bench_fault_overhead.gops";

  fault::Registry::Global().Reset();
  const double ops_disabled =
      ServiceOpsPerSec(*instance, solved->plan, service_ops, journal);
  fault::Registry::Global().Arm("bench.unrelated.point", unrelated);
  const double ops_enabled =
      ServiceOpsPerSec(*instance, solved->plan, service_ops, journal);
  fault::Registry::Global().Reset();

  std::printf("%-38s %10.0f ops/s\n", "service apply, faults disabled",
              ops_disabled);
  std::printf("%-38s %10.0f ops/s\n", "service apply, unrelated armed",
              ops_enabled);
  if (ops_disabled > 0.0 && ops_enabled > 0.0) {
    std::printf("%-38s %+9.2f %%\n\n", "throughput delta",
                100.0 * (ops_enabled - ops_disabled) / ops_disabled);
  }

  // --- 3. sharded solve ----------------------------------------------------
  fault::Registry::Global().Reset();
  const double solve_disabled_ms = ShardedSolveMs(*instance);
  fault::Registry::Global().Arm("bench.unrelated.point", unrelated);
  const double solve_enabled_ms = ShardedSolveMs(*instance);
  fault::Registry::Global().Reset();
  std::printf("%-38s %10.2f ms\n", "SolveSharded, faults disabled",
              solve_disabled_ms);
  std::printf("%-38s %10.2f ms\n", "SolveSharded, unrelated armed",
              solve_enabled_ms);
  return 0;
}
