// Recovery-path bench: cold-boot cost of the planning service after a
// crash, full journal replay vs checkpoint + tail. Builds a generated
// op workload (trials * 2000 ops, 10k at the default trials=5), journals
// it, then times RecoverServiceState for a spectrum of checkpoint
// freshness levels: no checkpoint at all (full replay), and a checkpoint
// covering all but 10% / 1% of the ops with the journal compacted through
// it. The shape to expect: recovery time tracks the TAIL length, not the
// history length, and the compacted journal's size is bounded by
// ops-since-last-checkpoint — the bounded-time crash-recovery claim.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/table.h"
#include "ckpt/checkpoint.h"
#include "common/timer.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "iep/planner.h"
#include "service/journal.h"
#include "service/recovery.h"
#include "service/torture.h"

namespace gepc {
namespace {

namespace fs = std::filesystem;

struct Mode {
  const char* label;
  const char* key;      // JSON key prefix
  double tail_fraction; // ops NOT covered by the checkpoint (1.0 = all)
};

int Run(const bench::BenchFlags& flags) {
  bench::JsonResults results("recovery");
  const int total_ops = flags.trials * 2000;
  const std::string workdir = "/tmp/gepc_bench_recovery";
  std::error_code ec;
  fs::remove_all(workdir, ec);
  fs::create_directories(workdir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s\n", workdir.c_str());
    return 1;
  }

  GeneratorConfig config;
  config.num_users = std::max(20, static_cast<int>(200 * flags.scale));
  config.num_events = std::max(8, static_cast<int>(50 * flags.scale));
  config.seed = 42;
  auto instance = GenerateInstance(config);
  if (!instance.ok()) return 1;
  auto solved = SolveGepc(*instance, bench::GreedyPreset());
  if (!solved.ok()) return 1;
  const Plan base_plan = solved->plan;

  std::printf("== Crash recovery: full replay vs checkpoint + tail "
              "(%d users, %d events, %d ops) ==\n\n",
              config.num_users, config.num_events, total_ops);

  // Reference run: journal every op once; remember where each mode's
  // checkpoint version lands so its state can be captured in passing.
  const std::vector<Mode> modes = {
      {"full replay", "full_replay", 1.0},
      {"ckpt + 10% tail", "ckpt_tail_10pct", 0.10},
      {"ckpt + 1% tail", "ckpt_tail_1pct", 0.01},
  };
  std::vector<uint64_t> cut_versions;  // 0 = no checkpoint for that mode
  for (const Mode& mode : modes) {
    cut_versions.push_back(mode.tail_fraction >= 1.0
                               ? 0
                               : static_cast<uint64_t>(
                                     total_ops * (1.0 - mode.tail_fraction)));
  }

  auto planner = IncrementalPlanner::Create(*instance, base_plan);
  if (!planner.ok()) return 1;
  const std::vector<AtomicOp> ops =
      GenerateTortureOps(&*planner, total_ops, /*seed=*/7);

  const std::string journal_path = workdir + "/reference.gops";
  auto journal = Journal::Open(journal_path);
  if (!journal.ok()) return 1;
  auto replay_planner = IncrementalPlanner::Create(*instance, base_plan);
  if (!replay_planner.ok()) return 1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!journal->Append(ops[i]).ok()) return 1;
    replay_planner->Apply(ops[i]);
    const uint64_t version = i + 1;
    for (size_t m = 0; m < modes.size(); ++m) {
      if (cut_versions[m] != version) continue;
      const std::string dir = workdir + "/ckpt_" + modes[m].key;
      fs::create_directories(dir, ec);
      auto written = WriteCheckpoint(dir, replay_planner->instance(),
                                     replay_planner->plan(), version);
      if (!written.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     written.status().ToString().c_str());
        return 1;
      }
    }
  }
  const int64_t full_journal_bytes = journal->bytes_written();

  TextTable table({"Mode", "Ckpt version", "Tail ops", "Journal KB",
                   "Recover ms", "Speedup"});
  double full_replay_ms = 0.0;
  for (size_t m = 0; m < modes.size(); ++m) {
    const Mode& mode = modes[m];
    const uint64_t cut = cut_versions[m];
    std::string mode_journal = journal_path;
    std::string ckpt_dir;
    if (cut > 0) {
      // Each mode recovers from its own compacted copy of the journal.
      mode_journal = workdir + "/" + mode.key + ".gops";
      fs::copy_file(journal_path, mode_journal,
                    fs::copy_options::overwrite_existing, ec);
      if (ec) return 1;
      auto copy = Journal::Open(mode_journal);
      if (!copy.ok()) return 1;
      if (!copy->Compact(cut).ok()) return 1;
      ckpt_dir = workdir + "/ckpt_" + mode.key;
    }
    std::error_code size_ec;
    const int64_t journal_bytes = cut > 0
                                      ? static_cast<int64_t>(fs::file_size(
                                            mode_journal, size_ec))
                                      : full_journal_bytes;

    // Best of three: recovery is deterministic, the repeats just shake
    // out filesystem-cache noise.
    double best_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Timer timer;
      auto recovered =
          RecoverServiceState(*instance, base_plan, mode_journal, ckpt_dir);
      const double ms = timer.ElapsedMillis();
      if (!recovered.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     recovered.status().ToString().c_str());
        return 1;
      }
      if (recovered->version != static_cast<uint64_t>(total_ops)) {
        std::fprintf(stderr,
                     "error: %s recovered version %llu, expected %d\n",
                     mode.label,
                     static_cast<unsigned long long>(recovered->version),
                     total_ops);
        return 1;
      }
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (cut == 0) full_replay_ms = best_ms;
    const double speedup = best_ms > 0.0 ? full_replay_ms / best_ms : 0.0;

    char cut_str[32], tail_str[32], kb_str[32], ms_str[32], speed_str[32];
    std::snprintf(cut_str, sizeof(cut_str), "%llu",
                  static_cast<unsigned long long>(cut));
    std::snprintf(tail_str, sizeof(tail_str), "%llu",
                  static_cast<unsigned long long>(total_ops - cut));
    std::snprintf(kb_str, sizeof(kb_str), "%.1f",
                  static_cast<double>(journal_bytes) / 1e3);
    std::snprintf(ms_str, sizeof(ms_str), "%.2f", best_ms);
    std::snprintf(speed_str, sizeof(speed_str), "%.1fx", speedup);
    table.AddRow({mode.label, cut == 0 ? "-" : cut_str, tail_str, kb_str,
                  ms_str, cut == 0 ? "1.0x" : speed_str});

    results.Add(std::string(mode.key) + "_recover_ms", best_ms);
    results.Add(std::string(mode.key) + "_journal_bytes",
                static_cast<double>(journal_bytes));
  }
  results.Add("total_ops", total_ops);
  table.Print();
  if (!results.WriteTo(flags.json_path)) return 1;
  std::printf("\nShape check: recovery time is linear in the journal TAIL "
              "(the ops past the checkpoint), and the compacted journal's "
              "size is bounded by ops-since-last-checkpoint — history "
              "length stops mattering once a checkpoint exists.\n");
  return 0;
}

}  // namespace
}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
