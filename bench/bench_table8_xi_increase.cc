// Reproduces Table VIII: "Results of xi-In on real datasets" — average
// utility of the incremental xi-increase repair (Algorithm 4) vs the
// Re-Greedy / Re-GAP baselines, plus time and memory, on the four cities.

#include "bench/iep_bench_common.h"

int main(int argc, char** argv) {
  const auto flags = gepc::bench::BenchFlags::Parse(argc, argv);
  return gepc::bench::RunIepTable("Table VIII: xi-In on real datasets",
                                  "xi-In", gepc::bench::MakeXiIncrease,
                                  flags);
}
