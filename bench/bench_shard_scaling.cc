// Sharded-engine scaling bench: one large spatially-local instance solved
// sequentially (the plain greedy GEPC solver) and through the sharded
// partition/solve/merge engine at increasing thread counts. For each run we
// report wall time, speedup over the sequential baseline, the utility ratio
// sharded/sequential, and whether the merged plan passes the hard
// constraints (1-3).
//
// Acceptance shape (ISSUE): at 8 threads the sharded engine is >= 3x faster
// than the sequential solve while retaining >= 99% of its utility. The
// speedup has two sources: the budget-reachability prefilter shrinks every
// user's candidate set before menus are built, and each shard sorts and
// scans only its own slice (the greedy solver's priority queues are
// super-linear in instance size). Thread-level parallelism stacks on top on
// multi-core hosts; determinism is guaranteed regardless (per-shard RNG
// streams + slot-indexed results), which ThreadCountNeverChangesTheResult
// and the thread sweep below both exercise.
//
// Default: 50k users x 200 events with budgets drawn from 4-12% of the city
// diagonal (spatial locality is what makes sharding effective; the
// generator's default 35-110% budgets make nearly every user boundary).
// --scale shrinks proportionally; --quick runs a CI-sized instance.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/csv.h"
#include "benchutil/measure.h"
#include "benchutil/table.h"
#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "shard/sharded_solver.h"

namespace gepc {

int Run(const bench::BenchFlags& flags) {
  const int num_users = std::max(500, static_cast<int>(50000 * flags.scale));
  const int num_events = std::max(20, static_cast<int>(200 * flags.scale));
  std::printf("== Sharded engine scaling: %d users x %d events ==\n\n",
              num_users, num_events);

  GeneratorConfig config;
  config.num_users = num_users;
  config.num_events = num_events;
  config.mean_xi = 2;
  // Capacity ~2x the per-event user load: the paper's real datasets run
  // with several-fold slack (eta 50 at ~7-9 users/event), and a load
  // factor of exactly 1.0 makes utility hostage to assignment order for
  // any solver, sequential included.
  config.mean_eta = std::max(8, 2 * num_users / num_events);
  config.seed = 4242;
  config.budget_min_fraction = 0.04;
  config.budget_max_fraction = 0.12;
  auto instance = GenerateInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  Result<GepcResult> sequential = Status::Internal("unset");
  const Measurement baseline = RunMeasured(
      [&] { sequential = SolveGepc(*instance, bench::GreedyPreset()); });
  if (!sequential.ok()) {
    std::fprintf(stderr, "sequential solve failed: %s\n",
                 sequential.status().ToString().c_str());
    return 1;
  }
  std::printf("sequential greedy: %s, utility %s\n\n",
              FormatSeconds(baseline.seconds).c_str(),
              FormatUtility(sequential->total_utility).c_str());

  TextTable table({"Threads", "Shards", "Time (s)", "Speedup", "Utility",
                   "Ratio", "Boundary", "Feasible"});
  CsvWriter csv({"threads", "shards", "seconds", "speedup", "utility",
                 "utility_ratio", "boundary_users", "feasible"});
  bool accepted = true;
  for (int threads : {1, 2, 4, 8}) {
    ShardedGepcOptions options;
    options.threads = threads;
    options.shards = 8;
    options.gepc = bench::GreedyPreset();
    ShardedGepcStats stats;
    Result<GepcResult> sharded = Status::Internal("unset");
    const Measurement run = RunMeasured(
        [&] { sharded = SolveSharded(*instance, options, &stats); });
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharded solve (%d threads) failed: %s\n",
                   threads, sharded.status().ToString().c_str());
      return 1;
    }
    ValidationOptions validation;
    validation.check_lower_bounds = false;  // xi is best-effort by contract
    const bool feasible =
        ValidatePlan(*instance, sharded->plan, validation).ok();
    const double speedup =
        run.seconds > 0.0 ? baseline.seconds / run.seconds : 0.0;
    const double ratio = sequential->total_utility > 0.0
                             ? sharded->total_utility /
                                   sequential->total_utility
                             : 1.0;
    table.AddRow({std::to_string(threads), std::to_string(options.shards),
                  FormatSeconds(run.seconds),
                  std::to_string(speedup).substr(0, 5) + "x",
                  FormatUtility(sharded->total_utility),
                  std::to_string(ratio).substr(0, 6),
                  std::to_string(stats.boundary_users),
                  feasible ? "yes" : "NO"});
    csv.AddRow({std::to_string(threads), std::to_string(options.shards),
                std::to_string(run.seconds), std::to_string(speedup),
                std::to_string(sharded->total_utility),
                std::to_string(ratio), std::to_string(stats.boundary_users),
                feasible ? "1" : "0"});
    if (threads == 8 && (speedup < 3.0 || ratio < 0.99 || !feasible)) {
      accepted = false;
    }
  }
  table.Print();
  std::printf("\nAcceptance (8 threads): speedup >= 3x, utility ratio >= "
              "0.99, merged plan feasible -> %s\n",
              accepted ? "PASS" : "FAIL");
  if (!flags.csv_prefix.empty()) {
    const Status written =
        csv.WriteToFile(flags.csv_prefix + "_shard_scaling.csv");
    if (!written.ok()) {
      std::fprintf(stderr, "csv: %s\n", written.ToString().c_str());
    }
  }
  return accepted ? 0 : 1;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
