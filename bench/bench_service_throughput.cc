// Service-layer bench: sustained throughput of the PlanningService apply
// loop. For each city, pumps `trials * 1000` random atomic operations
// through the bounded queue from two producer threads while one reader
// thread polls snapshots, and reports ops/sec, apply-latency percentiles
// (from the service's own counters), queue high-water and journal growth —
// the numbers an operator of gepc_serve would watch. Run with and without
// a journal to see the durability cost.

#include <atomic>
#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/table.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/cities.h"
#include "gepc/solver.h"
#include "service/planning_service.h"

namespace gepc {
namespace {

AtomicOp DrawOp(int num_users, int num_events, Rng* rng) {
  const int user = static_cast<int>(rng->UniformUint64(num_users));
  const int event = static_cast<int>(rng->UniformUint64(num_events));
  switch (rng->UniformUint64(4)) {
    case 0:
      return AtomicOp::BudgetChange(user, rng->UniformDouble(20.0, 160.0));
    case 1:
      return AtomicOp::UtilityChange(user, event,
                                     rng->UniformDouble(0.0, 1.0));
    case 2:
      return AtomicOp::UpperBoundChange(
          event, 6 + static_cast<int>(rng->UniformUint64(6)));
    default:
      return AtomicOp::LowerBoundChange(
          event, static_cast<int>(rng->UniformUint64(3)));
  }
}

struct RunRow {
  double ops_per_sec = 0.0;
  ServiceStats stats;
  bool ok = false;
};

RunRow RunService(const Instance& instance, const Plan& plan, int total_ops,
                  const std::string& journal_path) {
  RunRow row;
  ServiceOptions options;
  options.journal_path = journal_path;
  options.queue_capacity = 256;
  if (!journal_path.empty()) std::remove(journal_path.c_str());
  auto service = PlanningService::Create(instance, plan, options);
  if (!service.ok()) return row;
  PlanningService& svc = **service;

  std::atomic<bool> done{false};
  std::thread reader([&svc, &done] {
    uint64_t version_floor = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = svc.snapshot();
      if (snap->version > version_floor) version_floor = snap->version;
      std::this_thread::yield();
    }
  });

  const int num_users = instance.num_users();
  const int num_events = instance.num_events();
  Timer timer;
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&svc, p, total_ops, num_users, num_events] {
      Rng rng(77 + static_cast<uint64_t>(p));
      for (int i = 0; i < total_ops / 2; ++i) {
        svc.Submit(DrawOp(num_users, num_events, &rng));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  svc.Drain();
  const double seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  reader.join();

  row.stats = svc.Stats();
  svc.Shutdown();
  row.ops_per_sec = seconds > 0.0
                        ? static_cast<double>(row.stats.ops_applied +
                                              row.stats.ops_rejected) /
                              seconds
                        : 0.0;
  row.ok = true;
  return row;
}

/// CityPreset names become JSON keys ("NYC" -> "nyc").
std::string KeySlug(const std::string& name) {
  std::string slug;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      slug += '_';
    }
  }
  return slug;
}

int Run(const bench::BenchFlags& flags) {
  bench::JsonResults results("service_throughput");
  const int total_ops = flags.trials * 1000;
  std::printf("== PlanningService apply-loop throughput "
              "(scale %.2f, %d ops, 2 producers + 1 reader) ==\n\n",
              flags.scale, total_ops);
  TextTable table({"Dataset", "Journal", "ops/s", "p50 ms", "p99 ms",
                   "max ms", "HW", "Journal MB"});

  for (const CityPreset& city : PaperCities()) {
    auto instance = GenerateCity(city, /*seed=*/42, flags.scale);
    if (!instance.ok()) return 1;
    auto initial = SolveGepc(*instance, bench::GreedyPreset());
    if (!initial.ok()) return 1;

    for (int journaled = 0; journaled < 2; ++journaled) {
      const std::string journal_path =
          journaled ? "/tmp/gepc_bench_service.gops" : "";
      const RunRow row =
          RunService(*instance, initial->plan, total_ops, journal_path);
      if (!row.ok) return 1;
      char ops_str[32], p50_str[32], p99_str[32], max_str[32], hw_str[32],
          mb_str[32];
      std::snprintf(ops_str, sizeof(ops_str), "%.0f", row.ops_per_sec);
      std::snprintf(p50_str, sizeof(p50_str), "%.4f",
                    row.stats.apply_ms_p50);
      std::snprintf(p99_str, sizeof(p99_str), "%.4f",
                    row.stats.apply_ms_p99);
      std::snprintf(max_str, sizeof(max_str), "%.3f", row.stats.apply_ms_max);
      std::snprintf(hw_str, sizeof(hw_str), "%zu",
                    static_cast<size_t>(row.stats.queue_high_water));
      std::snprintf(mb_str, sizeof(mb_str), "%.2f",
                    static_cast<double>(row.stats.journal_bytes) / 1e6);
      table.AddRow({journaled == 0 ? city.name : "",
                    journaled ? "yes" : "no", ops_str, p50_str, p99_str,
                    max_str, hw_str, journaled ? mb_str : "-"});
      const std::string key =
          KeySlug(city.name) + (journaled ? "_journaled" : "_memory");
      results.Add(key + "_ops_per_sec", row.ops_per_sec);
      results.Add(key + "_apply_ms_p99", row.stats.apply_ms_p99);
    }
  }
  table.Print();
  if (!results.WriteTo(flags.json_path)) return 1;
  std::printf("\nShape check: journaling costs one formatted write + flush "
              "per op; the queue high-water shows how far the producers ran "
              "ahead of the single apply thread.\n");
  return 0;
}

}  // namespace
}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
