// Ablation studies for the design choices DESIGN.md calls out:
//   1. Two-step framework: xi-GEPC alone vs xi-GEPC + top-up (Sec. III's
//      step 2 contribution to total utility).
//   2. GAP LP engine: exact simplex vs MWU approximation (utility and time).
//   3. Greedy user-order sensitivity (Sec. III-B): utility spread across
//      random visiting orders.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "gepc/regret_greedy.h"
#include "gepc/topup.h"
#include "benchutil/measure.h"
#include "benchutil/table.h"
#include "data/cities.h"
#include "gepc/solver.h"

namespace gepc {

int Run(const bench::BenchFlags& flags) {
  std::printf("== Ablation studies (scale %.2f) ==\n\n", flags.scale);
  auto city = FindCity("Auckland");
  if (!city.ok()) return 1;
  auto instance = GenerateCity(*city, /*seed=*/42, flags.scale);
  if (!instance.ok()) return 1;

  // --- 1. Top-up step contribution -------------------------------------
  {
    TextTable table({"Config", "Utility", "Assignments"});
    for (bool topup : {false, true}) {
      GepcOptions options = bench::GreedyPreset();
      options.run_topup = topup;
      auto result = SolveGepc(*instance, options);
      if (!result.ok()) return 1;
      table.AddRow({topup ? "xi-GEPC + top-up (full framework)"
                          : "xi-GEPC only (step 1)",
                    FormatUtility(result->total_utility),
                    std::to_string(result->plan.TotalAssignments())});
    }
    std::printf("-- Two-step framework: effect of the top-up step --\n");
    table.Print();
    std::printf("\n");
  }

  // --- 2. GAP LP engine: simplex vs MWU ---------------------------------
  {
    TextTable table({"LP engine", "Utility", "Time (s)"});
    for (GapLpEngine engine : {GapLpEngine::kSimplex, GapLpEngine::kMwu}) {
      GepcOptions options = bench::GapPreset();
      options.gap_based.gap.engine = engine;
      Result<GepcResult> result = Status::Internal("unset");
      const Measurement run =
          RunMeasured([&] { result = SolveGepc(*instance, options); });
      if (!result.ok()) return 1;
      table.AddRow({engine == GapLpEngine::kSimplex ? "exact simplex"
                                                    : "MWU (PST-style)",
                    FormatUtility(result->total_utility),
                    FormatSeconds(run.seconds)});
    }
    std::printf("-- GAP-based algorithm: LP relaxation engine --\n");
    table.Print();
    std::printf("\n");
  }

  // --- 3. xi-GEPC heuristic face-off: Algorithm 2 vs regret insertion ---
  {
    const CopyMap copies(*instance);
    TextTable table({"xi-GEPC heuristic", "Utility (full framework)",
                     "Time (s)"});
    {
      Result<GepcResult> greedy = Status::Internal("unset");
      const Measurement run = RunMeasured(
          [&] { greedy = SolveGepc(*instance, bench::GreedyPreset()); });
      if (!greedy.ok()) return 1;
      table.AddRow({"Algorithm 2 (random order)",
                    FormatUtility(greedy->total_utility),
                    FormatSeconds(run.seconds)});
    }
    {
      double utility = 0.0;
      const Measurement run = RunMeasured([&] {
        auto regret = SolveXiGepcRegret(*instance, copies);
        if (!regret.ok()) return;
        Plan plan = CollapseToPlan(*instance, copies, regret->copy_plan);
        TopUpPlan(*instance, &plan);
        utility = plan.TotalUtility(*instance);
      });
      table.AddRow({"Regret insertion (deterministic)",
                    FormatUtility(utility), FormatSeconds(run.seconds)});
    }
    std::printf("-- xi-GEPC heuristic: visiting-order-free regret variant --\n");
    table.Print();
    std::printf("\n");
  }

  // --- 4. Local-search refinement (extension) ----------------------------
  {
    TextTable table({"Config", "Utility", "Time (s)"});
    for (bool refine : {false, true}) {
      GepcOptions options = bench::GreedyPreset();
      options.refine_with_local_search = refine;
      Result<GepcResult> result = Status::Internal("unset");
      const Measurement run =
          RunMeasured([&] { result = SolveGepc(*instance, options); });
      if (!result.ok()) return 1;
      table.AddRow({refine ? "greedy + local search" : "greedy",
                    FormatUtility(result->total_utility),
                    FormatSeconds(run.seconds)});
    }
    std::printf("-- Local-search refinement (ADD/REPLACE/TRANSFER) --\n");
    table.Print();
    std::printf("\n");
  }

  // --- 5. Greedy user-order sensitivity ---------------------------------
  {
    std::vector<double> utilities;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      auto result = SolveGepc(*instance, bench::GreedyPreset(seed));
      if (!result.ok()) return 1;
      utilities.push_back(result->total_utility);
    }
    const auto [min_it, max_it] =
        std::minmax_element(utilities.begin(), utilities.end());
    double mean = 0.0;
    for (double u : utilities) mean += u;
    mean /= static_cast<double>(utilities.size());
    TextTable table({"Seeds", "Min utility", "Mean utility", "Max utility",
                     "Spread (%)"});
    char spread[32];
    std::snprintf(spread, sizeof(spread), "%.2f",
                  100.0 * (*max_it - *min_it) / mean);
    table.AddRow({"10", FormatUtility(*min_it), FormatUtility(mean),
                  FormatUtility(*max_it), spread});
    std::printf("-- Greedy algorithm: user visiting-order sensitivity "
                "(Sec. III-B) --\n");
    table.Print();
  }
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
