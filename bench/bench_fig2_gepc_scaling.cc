// Reproduces Figure 2 (a-d): GEPC scalability on the "cut out" datasets of
// Table V. Series (a)/(c): |E| = 50 fixed, |U| in {200, 500, 1000, 5000};
// series (b)/(d): |U| = 5000 fixed, |E| in {20, 50, 100, 200, 500}.
// For each point we report total utility (Fig 2a/2b) and time cost in
// seconds (Fig 2c/2d) for the GAP-based and greedy algorithms.
//
// Expected shape: both utilities grow with |U| and |E|; GAP slightly above
// Greedy on utility; GAP time ~100x Greedy time.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/csv.h"
#include "benchutil/measure.h"
#include "benchutil/table.h"
#include "common/rng.h"
#include "data/cities.h"
#include "data/generator.h"
#include "gepc/solver.h"

namespace gepc {

int RunSeries(const char* title, const Instance& base,
              const std::vector<std::pair<int, int>>& points,
              const std::string& csv_path) {
  std::printf("-- %s --\n", title);
  TextTable table({"|U|", "|E|", "GAP Utility", "Greedy Utility",
                   "GAP Time (s)", "Greedy Time (s)"});
  CsvWriter csv({"users", "events", "gap_utility", "greedy_utility",
                 "gap_seconds", "greedy_seconds"});
  Rng rng(7);
  for (const auto& [num_users, num_events] : points) {
    const Instance cut = CutOut(base, num_users, num_events, &rng);
    Result<GepcResult> gap = Status::Internal("unset");
    const Measurement gap_run =
        RunMeasured([&] { gap = SolveGepc(cut, bench::GapPreset()); });
    Result<GepcResult> greedy = Status::Internal("unset");
    const Measurement greedy_run =
        RunMeasured([&] { greedy = SolveGepc(cut, bench::GreedyPreset()); });
    if (!gap.ok() || !greedy.ok()) {
      std::fprintf(stderr, "point (%d, %d) failed: gap=%s greedy=%s\n",
                   num_users, num_events, gap.status().ToString().c_str(),
                   greedy.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(cut.num_users()),
                  std::to_string(cut.num_events()),
                  FormatUtility(gap->total_utility),
                  FormatUtility(greedy->total_utility),
                  FormatSeconds(gap_run.seconds),
                  FormatSeconds(greedy_run.seconds)});
    csv.AddRow({std::to_string(cut.num_users()),
                std::to_string(cut.num_events()),
                std::to_string(gap->total_utility),
                std::to_string(greedy->total_utility),
                std::to_string(gap_run.seconds),
                std::to_string(greedy_run.seconds)});
  }
  table.Print();
  std::printf("\n");
  if (!csv_path.empty()) {
    const Status written = csv.WriteToFile(csv_path);
    if (!written.ok()) {
      std::fprintf(stderr, "csv: %s\n", written.ToString().c_str());
    }
  }
  return 0;
}

int Run(const bench::BenchFlags& flags) {
  std::printf("== Figure 2: GEPC scalability (scale %.2f) ==\n\n",
              flags.scale);
  auto base = GenerateCutOutBase(/*seed=*/42);
  if (!base.ok()) {
    std::fprintf(stderr, "base generation failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }

  auto scaled = [&](int v) {
    return std::max(1, static_cast<int>(v * flags.scale));
  };

  std::vector<std::pair<int, int>> vary_users;
  for (int u : {200, 500, 1000, 5000}) {
    vary_users.emplace_back(scaled(u), scaled(50));
  }
  if (RunSeries("Fig 2(a)/(c): |E| = 50, varying |U|", *base, vary_users,
                flags.csv_prefix.empty() ? ""
                                         : flags.csv_prefix + "_fig2_users.csv")) {
    return 1;
  }

  std::vector<std::pair<int, int>> vary_events;
  for (int e : {20, 50, 100, 200, 500}) {
    vary_events.emplace_back(scaled(5000), scaled(e));
  }
  if (RunSeries("Fig 2(b)/(d): |U| = 5000, varying |E|", *base, vary_events,
                flags.csv_prefix.empty()
                    ? ""
                    : flags.csv_prefix + "_fig2_events.csv")) {
    return 1;
  }

  std::printf("Shape check: utility rises with |U| and |E|; GAP >= Greedy "
              "utility; GAP time >> Greedy time (paper Fig. 2).\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
