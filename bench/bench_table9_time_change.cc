// Reproduces Table IX: "Results of ts-tt on real datasets" — average
// utility of the incremental holding-time repair (Algorithm 5) vs the
// Re-Greedy / Re-GAP baselines, plus time and memory, on the four cities.

#include "bench/iep_bench_common.h"

int main(int argc, char** argv) {
  const auto flags = gepc::bench::BenchFlags::Parse(argc, argv);
  return gepc::bench::RunIepTable("Table IX: ts-tt on real datasets",
                                  "ts-tt", gepc::bench::MakeTimeChange,
                                  flags);
}
