// Reproduces Figure 3 (a, b): memory cost of the GEPC algorithms on the
// "cut out" datasets — (a) |E| = 50 with varying |U|, (b) |U| = 5000 with
// varying |E|. Peak heap growth is measured by the byte-exact allocation
// hooks (gepc_memhooks), matching the paper's use of system memory monitors.
//
// Expected shape: memory grows with |U| and |E|; GAP a little above Greedy.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/measure.h"
#include "benchutil/table.h"
#include "common/rng.h"
#include "data/cities.h"
#include "data/generator.h"
#include "gepc/solver.h"

namespace gepc {

int RunSeries(const char* title, const Instance& base,
              const std::vector<std::pair<int, int>>& points) {
  std::printf("-- %s --\n", title);
  TextTable table({"|U|", "|E|", "GAP Mem (MB)", "Greedy Mem (MB)"});
  Rng rng(11);
  for (const auto& [num_users, num_events] : points) {
    const Instance cut = CutOut(base, num_users, num_events, &rng);
    Result<GepcResult> gap = Status::Internal("unset");
    const Measurement gap_run =
        RunMeasured([&] { gap = SolveGepc(cut, bench::GapPreset()); });
    Result<GepcResult> greedy = Status::Internal("unset");
    const Measurement greedy_run =
        RunMeasured([&] { greedy = SolveGepc(cut, bench::GreedyPreset()); });
    if (!gap.ok() || !greedy.ok()) {
      std::fprintf(stderr, "point (%d, %d) failed\n", num_users, num_events);
      return 1;
    }
    table.AddRow({std::to_string(cut.num_users()),
                  std::to_string(cut.num_events()),
                  FormatMegabytes(gap_run.peak_bytes),
                  FormatMegabytes(greedy_run.peak_bytes)});
  }
  table.Print();
  std::printf("\n");
  return 0;
}

int Run(const bench::BenchFlags& flags) {
  std::printf("== Figure 3: GEPC memory cost (scale %.2f) ==\n\n",
              flags.scale);
  auto base = GenerateCutOutBase(/*seed=*/42);
  if (!base.ok()) {
    std::fprintf(stderr, "base generation failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  auto scaled = [&](int v) {
    return std::max(1, static_cast<int>(v * flags.scale));
  };

  std::vector<std::pair<int, int>> vary_users;
  for (int u : {200, 500, 1000, 5000}) {
    vary_users.emplace_back(scaled(u), scaled(50));
  }
  if (RunSeries("Fig 3(a): |E| = 50, varying |U|", *base, vary_users)) {
    return 1;
  }

  std::vector<std::pair<int, int>> vary_events;
  for (int e : {20, 50, 100, 200, 500}) {
    vary_events.emplace_back(scaled(5000), scaled(e));
  }
  if (RunSeries("Fig 3(b): |U| = 5000, varying |E|", *base, vary_events)) {
    return 1;
  }
  std::printf("Shape check: memory rises with |U| and |E|; GAP above Greedy "
              "(paper Fig. 3).\n");
  return 0;
}

}  // namespace gepc

int main(int argc, char** argv) {
  return gepc::Run(gepc::bench::BenchFlags::Parse(argc, argv));
}
