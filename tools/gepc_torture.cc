// gepc_torture — crash-recovery torture harness for the planning service.
//
//   gepc_torture [--users N] [--events M] [--ops K] [--seed S]
//                [--byte-level] [--no-service-recover]
//                [--checkpoint-every N] [--workdir DIR]
//                [--failover] [--offset-stride N]
//
// Generates a seeded city and op stream, records a reference run through
// the GOPS1 journal, then simulates a crash at every chosen journal offset
// (every byte with --byte-level, otherwise every record boundary +/- 1),
// recovers via ReplayJournal / PlanningService::Recover, and verifies the
// recovered (instance, plan, snapshot version) is byte-identical to the
// reference. With --checkpoint-every N the checkpoint variant also runs:
// GCKP1 checkpoints are published every N ops, the newest checkpoint and
// the compacted journal are each truncated at every chosen offset, and
// recovery must still reconstruct the reference state with zero loss of
// committed operations.
//
// --failover switches to the replication torture (docs/replication.md):
// for every chosen journal offset k (every committed op with the default
// stride 1), a fresh primary + replication source is booted, a follower
// bootstraps from a shipped checkpoint and tails k rows, the primary is
// killed, the follower promotes, and the promoted state must serialize
// byte-identically to the reference state after k ops — then accept one
// more write at sequence k + 1. --offset-stride thins the sweep for CI.
//
// Exit 0 when every recovery matches, 1 on divergence, 64 on usage
// errors. See docs/fault-injection.md.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/logging.h"
#include "repl/failover.h"
#include "service/torture.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gepc_torture [--users N] [--events M] [--ops K] [--seed S]\n"
      "                    [--byte-level] [--no-service-recover]\n"
      "                    [--checkpoint-every N] [--workdir DIR]\n"
      "                    [--failover] [--offset-stride N]\n"
      "Simulates a crash at every journal truncation point and verifies\n"
      "recovery reproduces the reference state byte-for-byte. With\n"
      "--checkpoint-every N, also tortures the GCKP1 checkpoint file and\n"
      "the compacted journal at every offset. With --failover, kills a\n"
      "replicating primary at every journal offset instead and verifies\n"
      "the promoted follower matches the reference byte-for-byte.\n");
  return 64;
}

bool ParsePositiveInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0 || value > 1000000) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Thousands of recoveries: the per-recovery Info lines are pure noise.
  gepc::SetLogLevel(gepc::LogLevel::kWarning);
  gepc::TortureOptions options;
  bool failover = false;
  int offset_stride = 1;
  std::string workdir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--byte-level") {
      options.byte_level = true;
    } else if (arg == "--failover") {
      failover = true;
    } else if (arg == "--offset-stride") {
      const char* value = next();
      if (value == nullptr || !ParsePositiveInt(value, &offset_stride)) {
        return Usage();
      }
    } else if (arg == "--no-service-recover") {
      options.service_recover = false;
    } else if (arg == "--users") {
      const char* value = next();
      if (value == nullptr || !ParsePositiveInt(value, &options.users)) {
        return Usage();
      }
    } else if (arg == "--events") {
      const char* value = next();
      if (value == nullptr || !ParsePositiveInt(value, &options.events)) {
        return Usage();
      }
    } else if (arg == "--ops") {
      const char* value = next();
      if (value == nullptr || !ParsePositiveInt(value, &options.ops)) {
        return Usage();
      }
    } else if (arg == "--checkpoint-every") {
      const char* value = next();
      if (value == nullptr ||
          !ParsePositiveInt(value, &options.checkpoint_every)) {
        return Usage();
      }
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return Usage();
      char* end = nullptr;
      options.seed = std::strtoull(value, &end, 10);
      if (end == nullptr || *end != '\0') return Usage();
    } else if (arg == "--workdir") {
      const char* value = next();
      if (value == nullptr) return Usage();
      workdir = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }

  std::error_code ec;
  if (workdir.empty()) {
    workdir = (std::filesystem::temp_directory_path(ec) /
               ("gepc_torture." + std::to_string(options.seed)))
                  .string();
    std::filesystem::create_directories(workdir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create workdir %s: %s\n", workdir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  options.workdir = workdir;

  if (failover) {
    // Killing the primary at every offset provokes the follower's normal
    // disconnect/reconnect warnings by design; only real errors matter.
    gepc::SetLogLevel(gepc::LogLevel::kError);
    gepc::repl::FailoverTortureOptions failover_options;
    failover_options.users = options.users;
    failover_options.events = options.events;
    failover_options.ops = options.ops;
    failover_options.seed = options.seed;
    if (options.checkpoint_every > 0) {
      failover_options.checkpoint_every = options.checkpoint_every;
    }
    failover_options.offset_stride = offset_stride;
    failover_options.workdir = workdir;
    auto report = gepc::repl::RunFailoverTorture(failover_options);
    if (!report.ok()) {
      std::fprintf(stderr, "failover torture harness error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("ops in stream        %llu\n",
                static_cast<unsigned long long>(report->ops_total));
    std::printf("offsets exercised    %d\n", report->offsets_exercised);
    std::printf("promotions           %d\n", report->promotions);
    std::printf("ckpt bootstraps      %d\n", report->checkpoint_bootstraps);
    std::printf("state mismatches     %d\n", report->state_mismatches);
    std::printf("resumed write fails  %d\n", report->resumed_write_failures);
    if (!report->passed) {
      std::printf("FAILED: %s\n", report->failure.c_str());
      return 1;
    }
    std::printf(
        "PASSED: every promoted follower matched the reference "
        "byte-identically\n");
    return 0;
  }

  // The checkpoint variant deliberately provokes a "checkpoint unusable"
  // warning at every truncation offset; only real errors are worth seeing.
  if (options.checkpoint_every > 0) {
    gepc::SetLogLevel(gepc::LogLevel::kError);
  }
  auto report = gepc::RunCrashRecoveryTorture(options);
  if (!report.ok()) {
    std::fprintf(stderr, "torture harness error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("ops journaled      %llu\n",
              static_cast<unsigned long long>(report->ops_journaled));
  std::printf("journal bytes      %lld\n",
              static_cast<long long>(report->journal_bytes));
  std::printf("truncation points  %d\n", report->truncation_points);
  std::printf("torn recoveries    %d\n", report->torn_recoveries);
  std::printf("service recoveries %d\n", report->service_recoveries);
  if (options.checkpoint_every > 0) {
    std::printf("checkpoints        %llu\n",
                static_cast<unsigned long long>(report->checkpoints_published));
    std::printf("ckpt truncations   %d\n",
                report->checkpoint_truncation_points);
    std::printf("rotated truncations %d\n",
                report->rotated_truncation_points);
    std::printf("ckpt fallbacks     %d\n", report->checkpoint_fallbacks);
  }
  if (!report->passed) {
    std::printf("FAILED: %s\n", report->failure.c_str());
    return 1;
  }
  std::printf("PASSED: every crash point recovered byte-identically\n");
  return 0;
}
